#!/usr/bin/env python3
"""Translating PG-Triggers to Neo4j APOC and Memgraph (Section 5).

Prints the syntax-directed translations of the paper's triggers and then
executes them against the APOC and Memgraph emulators, showing the three
routes produce the same alerts on the same update stream.

Run with::

    python examples/translation_tour.py
"""

from repro.compat import (
    ApocEmulator,
    MemgraphEmulator,
    render_table1,
    translate_to_apoc,
    translate_to_memgraph,
)
from repro.datasets import mutation_discovery_stream, new_critical_mutation, replay, who_designation_change
from repro.triggers import GraphSession, parse_trigger


def main() -> None:
    print("The paper's Table 1 (reactive support across systems):\n")
    print(render_table1())

    trigger_text = new_critical_mutation()
    definition = parse_trigger(trigger_text)

    print("\n--- PG-Trigger (Figure 1 syntax) ---------------------------------")
    print(definition.to_pg_trigger())

    apoc = translate_to_apoc(definition)
    print("\n--- APOC translation (Figure 2 scheme) ---------------------------")
    print(apoc.call_text)

    memgraph = translate_to_memgraph(definition)
    print("\n--- Memgraph translation (Figure 3 scheme) -----------------------")
    print(memgraph.ddl)

    # Execute the same workload on the three routes.
    workload = mutation_discovery_stream(count=20, critical_fraction=0.4)

    session = GraphSession()
    session.create_trigger(trigger_text)
    session.create_trigger(who_designation_change())
    replay(session, workload)

    apoc_db = ApocEmulator()
    apoc_db.run(apoc.call_text)
    apoc_db.run(translate_to_apoc(parse_trigger(who_designation_change())).call_text)
    for statement in workload:
        apoc_db.run(statement.query, statement.parameters)

    memgraph_db = MemgraphEmulator()
    memgraph_db.run(memgraph.ddl)
    memgraph_db.run(translate_to_memgraph(parse_trigger(who_designation_change())).ddl)
    for statement in workload:
        memgraph_db.run(statement.query, statement.parameters)

    print("\n--- Alerts produced on the same workload --------------------------")
    print(f"  PG-Trigger engine : {len(session.alerts())}")
    print(f"  APOC emulation    : {apoc_db.graph.count_nodes_with_label('Alert')}")
    print(f"  Memgraph emulation: {memgraph_db.graph.count_nodes_with_label('Alert')}")
    print("\nNote: cascading triggers would diverge here — APOC and Memgraph block")
    print("trigger cascades, which is one of the gaps the PG-Trigger proposal closes.")


if __name__ == "__main__":
    main()
