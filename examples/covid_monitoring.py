#!/usr/bin/env python3
"""The paper's running example (Section 6): reactive COVID-19 monitoring.

Builds the CoV2K-style knowledge graph, installs the Section 6.2 triggers,
replays streams of mutations, lineage assignments, WHO designation changes
and ICU admissions, and reports the alerts the triggers raise.

Run with::

    python examples/covid_monitoring.py
"""

from repro.datasets import (
    designation_change_stream,
    generate_cov2k,
    Cov2kProfile,
    hospital_setup,
    icu_admission_stream,
    icu_patient_increase,
    icu_patients_over_threshold,
    lineage_assignment_stream,
    mutation_discovery_stream,
    new_critical_lineage,
    new_critical_mutation,
    replay,
    who_designation_change,
)
from repro.graph import describe
from repro.schema import validate_graph
from repro.triggers import GraphSession


def main() -> None:
    # 1. A schema-conforming CoV2K population as the starting knowledge graph.
    dataset = generate_cov2k(Cov2kProfile(patients=60, sequences=40, mutations=20))
    print(describe(dataset.graph))
    violations = validate_graph(dataset.graph, dataset.schema)
    print(f"schema violations: {len(violations)}\n")

    session = GraphSession(graph=dataset.graph, schema=dataset.schema)
    replay(session, hospital_setup(hospitals=2, icu_beds=6))

    # 2. The Section 6.2 triggers (thresholds scaled to this small population).
    session.create_trigger(new_critical_mutation())
    session.create_trigger(new_critical_lineage())
    session.create_trigger(who_designation_change())
    session.create_trigger(icu_patients_over_threshold(threshold=8))
    session.create_trigger(icu_patient_increase(fraction=0.25))

    report = session.analyse_termination()
    print(f"termination analysis: {report}\n")

    # 3. Replay the event streams the paper's scenario describes.
    replay(session, mutation_discovery_stream(count=25, critical_fraction=0.3))
    replay(session, lineage_assignment_stream(sequences=15, critical_every=4))
    replay(session, designation_change_stream(changes=5))
    replay(session, icu_admission_stream(admissions=12, batch_size=3))

    # 4. What did the reactive layer produce?
    print("Alerts raised:")
    for alert in session.alerts():
        print("  ", alert.get("desc"), "|", {k: v for k, v in alert.items() if k not in ("desc", "time")})

    print("\nPer-trigger execution summary:")
    for name, stats in session.engine.firing_summary().items():
        print(f"  {name}: executed={stats['executed']} suppressed={stats['suppressed']}")


if __name__ == "__main__":
    main()
