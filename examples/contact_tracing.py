#!/usr/bin/env python3
"""Contact tracing with path queries: k-hop exposure rings and a path trigger.

Builds a synthetic contact network around a handful of infected index
cases, then uses the path-query subsystem to answer the questions a
tracing team actually asks:

* *who is within k hops of an infected person?* — variable-length
  expansion ``-[:CONTACT*1..k]-``;
* *what is the shortest transmission chain between two people?* —
  ``shortestPath``;
* *flag new exposures reactively* — a PG-Trigger whose condition walks
  the contact graph when a new CONTACT relationship is created;
* *accelerate org-chart style containment queries* — a reachability
  index over the (forest-shaped) REPORTS_TO hierarchy.

Run with::

    python examples/contact_tracing.py
"""

from __future__ import annotations

import random

from repro.cypher import execute, explain
from repro.graph import PropertyGraph, describe
from repro.triggers import GraphSession

PEOPLE = 60
CONTACTS = 90
INDEX_CASES = 3
SEED = 7


def build_contact_network() -> PropertyGraph:
    """A random contact network with a few infected index cases."""
    rng = random.Random(SEED)
    graph = PropertyGraph(name="contact-tracing")
    people = [
        graph.create_node(["Person"], {"name": f"person-{i}", "status": "healthy"})
        for i in range(PEOPLE)
    ]
    for case in rng.sample(people, INDEX_CASES):
        graph.set_node_property(case.id, "status", "infected")
    seen = set()
    while len(seen) < CONTACTS:
        a, b = rng.sample(people, 2)
        if (a.id, b.id) in seen:
            continue
        seen.add((a.id, b.id))
        graph.create_relationship("CONTACT", a.id, b.id, {"day": rng.randint(1, 14)})
    # a small management hierarchy for the workplace-containment query:
    # person-0 leads, everyone else reports up a forest
    for i in range(1, PEOPLE):
        graph.create_relationship("REPORTS_TO", people[(i - 1) // 3].id, people[i].id)
    return graph


def exposure_rings(graph: PropertyGraph) -> None:
    print("== k-hop exposure rings around infected people ==")
    for k in (1, 2, 3):
        result = execute(
            graph,
            f"MATCH (i:Person {{status: 'infected'}})-[:CONTACT*1..{k}]-(n:Person) "
            "WHERE n.status = 'healthy' "
            "RETURN count(DISTINCT n) AS exposed",
        )
        exposed = list(result)[0]["exposed"]
        print(f"  within {k} hop(s): {exposed} healthy people exposed")
    print()


def transmission_chain(graph: PropertyGraph) -> None:
    print("== shortest transmission chains between index cases ==")
    result = execute(
        graph,
        "MATCH (a:Person {status: 'infected'}), (b:Person {status: 'infected'}) "
        "WHERE a.name < b.name "
        "MATCH p = shortestPath((a)-[:CONTACT*..6]-(b)) "
        "RETURN a.name AS src, b.name AS dst, length(p) AS hops",
    )
    rows = list(result)
    if not rows:
        print("  (no index cases connected within 6 hops)")
    for row in rows:
        print(f"  {row['src']} .. {row['dst']}: {row['hops']} hop(s)")
    print()


def install_exposure_trigger(session: GraphSession) -> None:
    """Flag anyone who comes within 2 hops of an infected person."""
    session.create_trigger(
        "CREATE TRIGGER FlagExposure "
        "AFTER CREATE ON 'CONTACT' FOR EACH RELATIONSHIP "
        "BEGIN "
        "MATCH (i:Person {status: 'infected'})-[:CONTACT*1..2]-(n:Person) "
        "WHERE n.status = 'healthy' "
        "SET n.status = 'exposed' "
        "END"
    )


def reactive_tracing(graph: PropertyGraph) -> None:
    print("== reactive tracing: path-predicate trigger on new contacts ==")
    session = GraphSession(graph=graph)
    install_exposure_trigger(session)
    infected = execute(graph, "MATCH (i:Person {status: 'infected'}) RETURN id(i) AS id")
    healthy = execute(graph, "MATCH (n:Person {status: 'healthy'}) RETURN id(n) AS id LIMIT 5")
    index_id = list(infected)[0]["id"]
    for row in healthy:
        session.run(
            "MATCH (a), (b) WHERE id(a) = $a AND id(b) = $b CREATE (a)-[:CONTACT {day: 15}]->(b)",
            parameters={"a": index_id, "b": row["id"]},
        )
    flagged = execute(graph, "MATCH (n:Person {status: 'exposed'}) RETURN count(n) AS n")
    print(f"  new contacts created: 5, people auto-flagged exposed: {list(flagged)[0]['n']}")
    print()


def containment_hierarchy(graph: PropertyGraph) -> None:
    print("== workplace containment via the reachability accelerator ==")
    query = (
        "MATCH (boss:Person {name: 'person-0'})-[:REPORTS_TO*]->(r:Person) "
        "RETURN count(r) AS reports"
    )
    print("  before index:", explain(query, graph).split(" -> ")[-1])
    graph.create_reachability_index("REPORTS_TO")
    print("  after index: ", explain(query, graph).split(" -> ")[-1])
    reports = list(execute(graph, query))[0]["reports"]
    print(f"  people under person-0 in the hierarchy: {reports}")
    print()


def main() -> None:
    graph = build_contact_network()
    print(describe(graph))
    print()
    exposure_rings(graph)
    transmission_chain(graph)
    containment_hierarchy(graph)
    reactive_tracing(graph)


if __name__ == "__main__":
    main()
