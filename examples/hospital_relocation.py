#!/usr/bin/env python3
"""Cascading triggers with side effects: the ICU relocation scenario (Section 6.2.3).

Shows the two relocation strategies of the paper — the fixed Sacco→Meyer
transfer (set granularity) and the move-to-nearest-hospital rule (item
granularity) — plus the termination analysis that distinguishes the safe
variants from the potentially non-terminating one.

Run with::

    python examples/hospital_relocation.py
"""

from repro.datasets import icu_patient_move, move_to_near_hospital
from repro.triggers import GraphSession, analyse_termination, parse_trigger


def build_hospitals(session: GraphSession) -> None:
    session.run("CREATE (:Region {name: 'Lombardy'})")
    session.run("CREATE (:Region {name: 'Tuscany'})")
    session.run(
        "MATCH (r:Region {name: 'Lombardy'}) "
        "CREATE (:Hospital {name: 'Sacco', icuBeds: 2})-[:LocatedIn]->(r), "
        "(:Hospital {name: 'Niguarda', icuBeds: 3})-[:LocatedIn]->(r)"
    )
    session.run(
        "MATCH (r:Region {name: 'Tuscany'}) "
        "CREATE (:Hospital {name: 'Meyer', icuBeds: 4})-[:LocatedIn]->(r)"
    )
    session.run(
        "MATCH (a:Hospital {name: 'Sacco'}), (b:Hospital {name: 'Niguarda'}), "
        "(c:Hospital {name: 'Meyer'}) "
        "CREATE (a)-[:ConnectedTo {distance: 8}]->(b), (a)-[:ConnectedTo {distance: 280}]->(c), "
        "(b)-[:ConnectedTo {distance: 275}]->(c)"
    )


def admit(session: GraphSession, hospital: str, count: int, prefix: str) -> None:
    for index in range(count):
        session.run(
            "MATCH (h:Hospital {name: $hospital}) "
            "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: $ssn})-[:TreatedAt]->(h)",
            {"hospital": hospital, "ssn": f"{prefix}{index}"},
        )


def occupancy(session: GraphSession) -> str:
    result = session.run(
        "MATCH (p:IcuPatient)-[:TreatedAt]->(h:Hospital) "
        "RETURN h.name AS hospital, count(p) AS patients ORDER BY hospital"
    )
    return result.to_table()


def main() -> None:
    # --- Strategy 1: fixed transfer Sacco -> Meyer (FOR ALL NODES) ----------
    session = GraphSession()
    build_hospitals(session)
    session.create_trigger(icu_patient_move(source="Sacco", destination="Meyer"))
    admit(session, "Sacco", 4, prefix="A")
    print("After the fixed Sacco->Meyer relocation trigger:")
    print(occupancy(session))

    # --- Strategy 2: move to the nearest connected hospital (FOR EACH NODE) --
    session = GraphSession()
    build_hospitals(session)
    session.create_trigger(move_to_near_hospital(region="Lombardy"))
    admit(session, "Sacco", 5, prefix="B")
    print("\nAfter the move-to-nearest-hospital trigger:")
    print(occupancy(session))

    # --- Termination analysis ------------------------------------------------
    print("\nTermination analysis (the paper's Section 6.2.3 discussion):")
    safe = analyse_termination([parse_trigger(icu_patient_move())])
    print(f"  IcuPatientMove alone: {safe}")
    risky_text = """
        CREATE TRIGGER RelocateOnArrival
        AFTER CREATE ON 'TreatedAt'
        FOR EACH RELATIONSHIP
        BEGIN
          MATCH (p:IcuPatient)-[c:TreatedAt]->(h:Hospital)-[:ConnectedTo]-(hc:Hospital)
          DELETE c
          CREATE (p)-[:TreatedAt]->(hc)
        END
    """
    risky = analyse_termination([parse_trigger(risky_text)])
    print(f"  unconditional relocation on TreatedAt: {risky}")


if __name__ == "__main__":
    main()
