#!/usr/bin/env python3
"""Quickstart: the GraphDatabase driver API, a PG-Trigger, streaming results.

Run with::

    python examples/quickstart.py
"""

import repro


def main() -> None:
    # 1. Connect.  `repro.connect()` is the one-liner onto the process-wide
    #    default database; a named catalog works the same way:
    #        db = repro.GraphDatabase(); session = db.graph("covid")
    session = repro.connect("covid")

    # 2. Build a tiny graph with plain openCypher.
    session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 2})")
    session.run("CREATE (:Hospital {name: 'Meyer', icuBeds: 5})")

    # 3. Install a PG-Trigger (the Figure 1 syntax): every new ICU patient
    #    at a full hospital raises an alert.
    session.create_trigger("""
        CREATE TRIGGER IcuCapacityWatch
        AFTER CREATE ON 'IcuPatient'
        FOR EACH NODE
        WHEN
          MATCH (NEW)-[:TreatedAt]->(h:Hospital)
          MATCH (p:IcuPatient)-[:TreatedAt]->(h)
          WITH h, count(DISTINCT p) AS occupancy
          WHERE occupancy > h.icuBeds
        BEGIN
          CREATE (:Alert {desc: 'ICU capacity exceeded', hospital: h.name})
        END
    """)

    # 4. Admit patients; the trigger reacts at each statement boundary.
    for index in range(4):
        session.run(
            "MATCH (h:Hospital {name: 'Sacco'}) "
            "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: $ssn})-[:TreatedAt]->(h)",
            {"ssn": f"P{index}"},
        )

    # 5. Read results.  `run` returns a lazily-consumed Result: iterating
    #    pulls records straight out of the execution pipeline, so LIMIT /
    #    single() stop the matching work early.
    print("Alerts:")
    for alert in session.alerts():
        print("  ", alert)

    first = session.run(
        "MATCH (p:IcuPatient) RETURN p.ssn AS ssn ORDER BY ssn LIMIT 1"
    ).single("ssn")
    print("\nFirst ICU patient:", first)

    result = session.run(
        "MATCH (p:IcuPatient)-[:TreatedAt]->(h:Hospital) "
        "RETURN h.name AS hospital, count(p) AS patients ORDER BY hospital"
    )
    print("\nICU occupancy:")
    print(result.to_table())

    # 6. consume() discards any remaining records and returns the summary:
    #    write counters, the planner's access-path description, timings.
    summary = session.run("MATCH (a:Alert) RETURN a LIMIT 1").consume()
    print("\nSummary of the last query:")
    print("   plan:", summary.plan)
    print("   counters:", summary.counters.as_dict())

    print("\nTrigger firing log:")
    for line in session.firing_log():
        print("  ", line)


if __name__ == "__main__":
    main()
