#!/usr/bin/env python3
"""Quickstart: a property graph, a PG-Trigger, and a few updates.

Run with::

    python examples/quickstart.py
"""

from repro.triggers import GraphSession


def main() -> None:
    session = GraphSession()

    # 1. Build a tiny graph with plain openCypher.
    session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 2})")
    session.run("CREATE (:Hospital {name: 'Meyer', icuBeds: 5})")

    # 2. Install a PG-Trigger (the Figure 1 syntax): every new ICU patient
    #    at a full hospital raises an alert.
    session.create_trigger("""
        CREATE TRIGGER IcuCapacityWatch
        AFTER CREATE ON 'IcuPatient'
        FOR EACH NODE
        WHEN
          MATCH (NEW)-[:TreatedAt]->(h:Hospital)
          MATCH (p:IcuPatient)-[:TreatedAt]->(h)
          WITH h, count(DISTINCT p) AS occupancy
          WHERE occupancy > h.icuBeds
        BEGIN
          CREATE (:Alert {desc: 'ICU capacity exceeded', hospital: h.name})
        END
    """)

    # 3. Admit patients; the trigger reacts at each statement boundary.
    for index in range(4):
        session.run(
            "MATCH (h:Hospital {name: 'Sacco'}) "
            "CREATE (:Patient:HospitalizedPatient:IcuPatient {ssn: $ssn})-[:TreatedAt]->(h)",
            {"ssn": f"P{index}"},
        )

    # 4. Inspect results: alerts created by the trigger, plus a regular query.
    print("Alerts:")
    for alert in session.alerts():
        print("  ", alert)

    result = session.run(
        "MATCH (p:IcuPatient)-[:TreatedAt]->(h:Hospital) "
        "RETURN h.name AS hospital, count(p) AS patients ORDER BY hospital"
    )
    print("\nICU occupancy:")
    print(result.to_table())

    print("\nTrigger firing log:")
    for line in session.firing_log():
        print("  ", line)


if __name__ == "__main__":
    main()
