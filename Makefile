# Developer / CI entry points.  Everything runs from the repository root.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-storage test-concurrency test-paths test-optimizer test-triggers lint bench bench-smoke explain-demo optimizer-demo serve

## Run the full tier-1 suite (unit + integration + benchmark assertions).
test:
	$(PYTHON) -m pytest -x -q

## The durability suite alone: WAL/codec/recovery units, the crash-injection
## matrix and the property-based differential tests.
test-storage:
	$(PYTHON) -m pytest tests/storage -q

## The concurrency suite alone: the lock-manager units, the multi-threaded
## stress tests (lost updates, torn reads, triggers under contention) and the
## asyncio server tests (incl. 50 concurrent clients + graceful shutdown).
test-concurrency:
	$(PYTHON) -m pytest tests/tx tests/integration/test_concurrency_stress.py tests/server -q

## The path-query suite alone: var-length expansion, shortestPath and the
## reachability accelerator units plus the property-based differential
## tests (naive == iterative == accelerated) and translator passthrough.
test-paths:
	$(PYTHON) -m pytest tests/cypher/test_paths.py tests/cypher/test_path_properties.py tests/compat/test_path_passthrough.py -q

## The optimizer suite alone: composite indexes, histogram estimates,
## index-backed ORDER BY, connected hash joins and narrow-hop routing,
## plus the property-based histogram-maintenance and join-ordering tests.
test-optimizer:
	$(PYTHON) -m pytest tests/cypher/test_optimizer_v2.py tests/graph/test_histogram_properties.py tests/cypher/test_planner.py tests/test_join_ordering_properties.py -q

## The trigger suite alone: engine/registry/session units, the batched
## two-way differential and the incremental three-way differential
## (sequential == batched == incremental, incl. mid-stream DDL and
## trigger install/drop, with Hypothesis randomized streams).
test-triggers:
	$(PYTHON) -m pytest tests/triggers -q

## Static checks (requires ruff: `pip install ruff`; CI installs it).
lint:
	ruff check src tests benchmarks

## Run the complete benchmark suite with timing output.
bench:
	$(PYTHON) -m pytest benchmarks -q

## The benchmark smoke subset used by CI: the two trigger hot paths, the
## planner/plan-cache experiment, the streaming-vs-eager P6 comparison, the
## batched-vs-per-activation P7 trigger comparison, the P8 physical
## operator comparisons (range seek / hash join / top-k), the P9
## durability throughput/recovery experiment, the P10 concurrent-HTTP
## throughput experiment (qps at 1/2/4/8 clients through the server), the
## P11 path-query experiment (reachability accelerator vs DFS) and the
## P12 optimizer-torture experiment (q-error + plan-regret regression gate
## against benchmarks/optimizer_baseline.json; the scored workload lands
## in BENCH_optimizer_qerror.json) and the P13 incremental-trigger
## firehose experiment (≥5x deltas/sec gate against
## benchmarks/triggers_baseline.json; the result table lands in
## BENCH_triggers_firehose.json).  Timings are dumped to
## BENCH_smoke.json (all three JSON files are uploaded as CI artifacts).
bench-smoke:
	$(PYTHON) -m pytest \
		benchmarks/test_perf_trigger_overhead.py \
		benchmarks/test_section63_apoc_worked_translations.py \
		benchmarks/test_perf_plan_cache.py \
		benchmarks/test_perf_streaming.py \
		benchmarks/test_perf_batched_triggers.py \
		benchmarks/test_perf_physical_operators.py \
		benchmarks/test_perf_durability.py \
		benchmarks/test_perf_concurrency.py \
		benchmarks/test_perf_paths.py \
		benchmarks/test_perf_optimizer.py \
		benchmarks/test_perf_incremental_triggers.py \
		-q --benchmark-columns=min,mean,rounds \
		--benchmark-json=BENCH_smoke.json

## Print the P5 experiment (EXPLAIN output + plan-cache statistics).
explain-demo:
	$(PYTHON) -c "from repro.bench import perf_plan_cache; print(perf_plan_cache().to_text())"

## Print the P6 experiment (streaming vs eager MATCH … LIMIT latency).
streaming-demo:
	$(PYTHON) -c "from repro.bench import perf_streaming_limit; print(perf_streaming_limit().to_text())"

## Print the P7 experiment (batched vs per-activation trigger evaluation).
batched-triggers-demo:
	$(PYTHON) -c "from repro.bench import perf_batched_triggers; print(perf_batched_triggers().to_text())"

## Print the P8 experiment (range seek / hash join / top-k vs baselines).
physical-operators-demo:
	$(PYTHON) -c "from repro.bench import perf_physical_operators; print(perf_physical_operators().to_text())"

## Print the P9 experiment (in-memory vs fsync vs group-commit throughput).
durability-demo:
	$(PYTHON) -c "from repro.bench import perf_durability; print(perf_durability().to_text())"

## Print the P10 experiment (HTTP qps at 1/2/4/8 concurrent clients).
concurrency-demo:
	$(PYTHON) -c "from repro.bench import perf_concurrency; print(perf_concurrency().to_text())"

## Print the P11 experiment (reachability accelerator vs DFS, shortestPath).
paths-demo:
	$(PYTHON) -c "from repro.bench import perf_paths; print(perf_paths().to_text())"

## Print the P12 experiment (optimizer torture: per-kind q-error and plan
## regret, histogram vs one-third heuristic, narrow-hop routing counters).
optimizer-demo:
	$(PYTHON) -c "from repro.bench import perf_optimizer; print(perf_optimizer().to_text())"

## Print the P13 experiment (incremental trigger views vs batched:
## sustained deltas/sec over a firehose delta stream).
incremental-triggers-demo:
	$(PYTHON) -c "from repro.bench import perf_incremental_triggers; print(perf_incremental_triggers().to_text())"

## Run the contact-tracing path-query walkthrough (k-hop exposure rings,
## shortest transmission chains, a path-predicate trigger).
contact-tracing-demo:
	$(PYTHON) examples/contact_tracing.py

## Start the asyncio HTTP/JSON server on port 7688 (in-memory graphs; pass
## SERVE_ARGS='--path data --port 7688' etc. for durable storage).
serve:
	$(PYTHON) -m repro.server $(SERVE_ARGS)
