"""Setuptools shim.

The canonical project metadata lives in pyproject.toml; this file exists so
that the package can be installed editable in offline environments whose
setuptools/pip combination lacks the `wheel` package required by the PEP 517
editable build path.
"""

from setuptools import setup

setup()
