"""repro — an executable reproduction of *PG-Triggers: Triggers for
Property Graphs* (SIGMOD-Companion 2024).

The top-level package re-exports the most commonly used entry points; the
subpackages are:

* :mod:`repro.graph` — in-memory property graph store;
* :mod:`repro.tx` — transactions, undo log, commit hooks;
* :mod:`repro.cypher` — openCypher-subset query engine;
* :mod:`repro.schema` — PG-Schema / PG-Keys;
* :mod:`repro.triggers` — the PG-Trigger language and execution engine;
* :mod:`repro.compat` — APOC / Memgraph emulation and translators;
* :mod:`repro.datasets` — CoV2K-style data and synthetic workloads;
* :mod:`repro.bench` — experiment harness regenerating the paper artifacts.
"""

from .graph import Node, PropertyGraph, Relationship

__version__ = "1.0.0"

__all__ = ["Node", "PropertyGraph", "Relationship", "__version__"]
