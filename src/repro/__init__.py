"""repro — an executable reproduction of *PG-Triggers: Triggers for
Property Graphs* (SIGMOD-Companion 2024).

The top-level package re-exports the most commonly used entry points; the
subpackages are:

* :mod:`repro.graph` — in-memory property graph store;
* :mod:`repro.tx` — transactions, undo log, commit hooks;
* :mod:`repro.cypher` — openCypher-subset query engine;
* :mod:`repro.schema` — PG-Schema / PG-Keys;
* :mod:`repro.triggers` — the PG-Trigger language and execution engine;
* :mod:`repro.compat` — APOC / Memgraph emulation and translators;
* :mod:`repro.datasets` — CoV2K-style data and synthetic workloads;
* :mod:`repro.bench` — experiment harness regenerating the paper artifacts.

The driver-style public API lives at the top level::

    import repro

    session = repro.connect()            # default database, "default" graph
    session.run("CREATE (:Hospital {name: 'Sacco'})")
    for record in session.run("MATCH (h:Hospital) RETURN h.name AS name"):
        print(record["name"])            # records stream lazily

    db = repro.GraphDatabase()           # an explicit catalog of named graphs
    covid = db.graph("covid")
"""

from .cypher.result import QueryStatistics, Result, ResultConsumedError, ResultSummary
from .database import (
    DEFAULT_GRAPH_NAME,
    GraphDatabase,
    connect,
    default_database,
    reset_default_database,
)
from .graph import Node, PropertyGraph, Relationship
from .paths import Path
from .triggers.session import GraphSession
from .tx.errors import LockTimeoutError
from .tx.locks import LockManager

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_GRAPH_NAME",
    "GraphDatabase",
    "GraphSession",
    "LockManager",
    "LockTimeoutError",
    "Node",
    "Path",
    "PropertyGraph",
    "QueryStatistics",
    "Relationship",
    "Result",
    "ResultConsumedError",
    "ResultSummary",
    "connect",
    "default_database",
    "reset_default_database",
    "__version__",
]
