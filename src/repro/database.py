"""The driver-style entry point: :class:`GraphDatabase` and :func:`connect`.

A :class:`GraphDatabase` owns a catalog of *named graphs*, each backed by
one long-lived :class:`~repro.triggers.session.GraphSession` (so a graph's
installed triggers, transaction manager and firing log live with the
graph, not with whoever happens to reference it).  The facade mirrors the
ergonomics of a Neo4j driver::

    import repro

    db = repro.GraphDatabase()
    covid = db.graph("covid")                   # created on first use
    covid.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
    with db.graph("covid").run("MATCH (h:Hospital) RETURN h.name AS name") as _:
        ...

    for record in covid.run("MATCH (h:Hospital) RETURN h.name AS name"):
        print(record["name"])                   # records stream lazily

    summary = covid.run("MATCH (h) RETURN h LIMIT 1").consume()
    print(summary.counters.as_dict(), summary.plan)

A process-wide default database makes the one-liner work::

    session = repro.connect()                   # default db, "default" graph
    session = repro.connect("covid")            # default db, named graph
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import Callable, Iterator, Optional

from .graph.store import PropertyGraph
from .schema.schema import PGSchema
from .triggers.session import GraphSession

#: Name used when callers do not pick one.
DEFAULT_GRAPH_NAME = "default"


class GraphDatabase:
    """A catalog of named property graphs, each served by a `GraphSession`.

    Sessions are minted lazily and cached per graph name: every call to
    :meth:`graph` (or :meth:`session`) with the same name returns the same
    session, so triggers installed through it are visible to all users of
    that catalog entry.
    """

    def __init__(
        self,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = 16,
        batched_triggers: bool = True,
    ) -> None:
        self._clock = clock
        self._max_cascade_depth = max_cascade_depth
        self._batched_triggers = batched_triggers
        self._sessions: dict[str, GraphSession] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def create_graph(
        self,
        name: str,
        graph: PropertyGraph | None = None,
        schema: PGSchema | None = None,
    ) -> GraphSession:
        """Register a new named graph; error if ``name`` already exists.

        ``graph`` lets callers adopt an existing :class:`PropertyGraph`
        (e.g. a loaded dataset); by default a fresh empty graph is created.
        """
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"graph {name!r} already exists")
            session = GraphSession(
                graph=graph,
                schema=schema,
                clock=self._clock,
                max_cascade_depth=self._max_cascade_depth,
                batched_triggers=self._batched_triggers,
            )
            self._sessions[name] = session
            return session

    def drop_graph(self, name: str) -> None:
        """Remove a named graph (and its session) from the catalog."""
        with self._lock:
            if name not in self._sessions:
                raise KeyError(f"no graph named {name!r}")
            del self._sessions[name]

    def list_graphs(self) -> list[str]:
        """The catalog's graph names, in creation order."""
        with self._lock:
            return list(self._sessions)

    def has_graph(self, name: str) -> bool:
        """True when ``name`` is in the catalog."""
        with self._lock:
            return name in self._sessions

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_graph(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[str]:
        return iter(self.list_graphs())

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def graph(self, name: str = DEFAULT_GRAPH_NAME) -> GraphSession:
        """The session bound to graph ``name``, creating the graph on demand."""
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self.create_graph(name)
            return session

    def session(self, graph: str = DEFAULT_GRAPH_NAME) -> GraphSession:
        """Driver-style alias for :meth:`graph`."""
        return self.graph(graph)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphDatabase(graphs={self.list_graphs()!r})"


# ---------------------------------------------------------------------------
# the process-wide default database
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default_database: Optional[GraphDatabase] = None


def default_database() -> GraphDatabase:
    """The process-wide :class:`GraphDatabase` (created on first use)."""
    global _default_database
    with _default_lock:
        if _default_database is None:
            _default_database = GraphDatabase()
        return _default_database


def connect(graph: str = DEFAULT_GRAPH_NAME) -> GraphSession:
    """One-liner entry point: a session on the default database.

    ``repro.connect()`` gives the ``"default"`` graph;
    ``repro.connect("covid")`` a named one (created on demand).
    """
    return default_database().graph(graph)


def reset_default_database() -> None:
    """Drop the process-wide default database (tests and REPL hygiene)."""
    global _default_database
    with _default_lock:
        _default_database = None
