"""The driver-style entry point: :class:`GraphDatabase` and :func:`connect`.

A :class:`GraphDatabase` owns a catalog of *named graphs*, each backed by
one long-lived :class:`~repro.triggers.session.GraphSession` (so a graph's
installed triggers, transaction manager and firing log live with the
graph, not with whoever happens to reference it).  The facade mirrors the
ergonomics of a Neo4j driver::

    import repro

    db = repro.GraphDatabase()
    covid = db.graph("covid")                   # created on first use
    covid.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
    with db.graph("covid").run("MATCH (h:Hospital) RETURN h.name AS name") as _:
        ...

    for record in covid.run("MATCH (h:Hospital) RETURN h.name AS name"):
        print(record["name"])                   # records stream lazily

    summary = covid.run("MATCH (h) RETURN h LIMIT 1").consume()
    print(summary.counters.as_dict(), summary.plan)

A process-wide default database makes the one-liner work::

    session = repro.connect()                   # default db, "default" graph
    session = repro.connect("covid")            # default db, named graph
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import os
import re
import threading
from typing import Callable, Iterator, Optional

from .graph.store import PropertyGraph
from .schema.schema import PGSchema
from .storage import StorageIO
from .triggers.session import GraphSession
from .tx.locks import LockManager

#: Name used when callers do not pick one.
DEFAULT_GRAPH_NAME = "default"

#: Durable graph names become directory names, so keep them filesystem-safe.
_DURABLE_NAME = re.compile(r"^[A-Za-z0-9._-]+$")


class GraphDatabase:
    """A catalog of named property graphs, each served by a `GraphSession`.

    Sessions are minted lazily and cached per graph name: every call to
    :meth:`graph` (or :meth:`session`) with the same name returns the same
    session, so triggers installed through it are visible to all users of
    that catalog entry.
    """

    def __init__(
        self,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = 16,
        batched_triggers: bool = True,
        incremental_triggers: bool = True,
        path: str | None = None,
        storage_io: StorageIO | None = None,
        group_commit_size: int = 1,
        checkpoint_every: int | None = None,
        thread_safe: bool = False,
        lock_timeout: float | None = None,
    ) -> None:
        self._clock = clock
        self._max_cascade_depth = max_cascade_depth
        self._batched_triggers = batched_triggers
        self._incremental_triggers = incremental_triggers
        self._path = os.fspath(path) if path is not None else None
        self._storage_io = storage_io
        self._group_commit_size = group_commit_size
        self._checkpoint_every = checkpoint_every
        self._sessions: dict[str, GraphSession] = {}
        self._lock = threading.RLock()
        # One lock manager per database: all sessions share it, keyed by
        # graph name, so cross-graph operations (drop, server shutdown) can
        # coordinate with per-graph readers and writers.
        self._lock_timeout = lock_timeout
        self.lock_manager: LockManager | None = (
            LockManager(default_timeout=lock_timeout) if thread_safe else None
        )

    @property
    def durable(self) -> bool:
        """True when graphs persist under the database directory."""
        return self._path is not None

    @property
    def thread_safe(self) -> bool:
        """True when sessions serialise access through the shared lock manager."""
        return self.lock_manager is not None

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def create_graph(
        self,
        name: str,
        graph: PropertyGraph | None = None,
        schema: PGSchema | None = None,
    ) -> GraphSession:
        """Register a new named graph; error if ``name`` already exists.

        ``graph`` lets callers adopt an existing :class:`PropertyGraph`
        (e.g. a loaded dataset); by default a fresh empty graph is created.
        """
        with self._lock:
            if name in self._sessions:
                raise ValueError(f"graph {name!r} already exists")
            if self._path is not None:
                if graph is not None:
                    raise ValueError(
                        "a durable database recovers each graph from its own "
                        "directory; cannot adopt an in-memory graph"
                    )
                session = GraphSession(
                    schema=schema,
                    clock=self._clock,
                    max_cascade_depth=self._max_cascade_depth,
                    batched_triggers=self._batched_triggers,
                    incremental_triggers=self._incremental_triggers,
                    path=self._graph_directory(name),
                    storage_io=self._storage_io,
                    group_commit_size=self._group_commit_size,
                    checkpoint_every=self._checkpoint_every,
                    lock_manager=self.lock_manager,
                    lock_timeout=self._lock_timeout,
                    lock_name=name,
                )
            else:
                session = GraphSession(
                    graph=graph,
                    schema=schema,
                    clock=self._clock,
                    max_cascade_depth=self._max_cascade_depth,
                    batched_triggers=self._batched_triggers,
                    incremental_triggers=self._incremental_triggers,
                    lock_manager=self.lock_manager,
                    lock_timeout=self._lock_timeout,
                    lock_name=name,
                )
            self._sessions[name] = session
            return session

    def drop_graph(self, name: str) -> None:
        """Remove a named graph (and its session) from the catalog.

        For a durable database the graph's persisted files are deleted as
        well, so the name no longer resurrects on the next access.

        In thread-safe mode the drop takes the graph's exclusive write lock
        first, so in-flight queries finish before the session is closed
        (flushing any pending group-commit records) and the files vanish.
        """
        with self._lock:
            session = self._sessions.pop(name, None)
            if session is None and name not in self._persisted_graphs():
                raise KeyError(f"no graph named {name!r}")
            drop_guard = (
                self.lock_manager.write(name, timeout=self._lock_timeout)
                if self.lock_manager is not None
                else contextlib.nullcontext()
            )
            with drop_guard:
                if session is not None:
                    session.close()
                if self._path is not None:
                    self._delete_persisted(name)

    def list_graphs(self) -> list[str]:
        """The catalog's graph names: open sessions first, then any
        persisted-but-unopened graphs a durable database finds on disk."""
        with self._lock:
            names = list(self._sessions)
            names.extend(n for n in self._persisted_graphs() if n not in self._sessions)
            return names

    def has_graph(self, name: str) -> bool:
        """True when ``name`` is in the catalog (open or persisted)."""
        with self._lock:
            return name in self._sessions or name in self._persisted_graphs()

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_graph(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __iter__(self) -> Iterator[str]:
        return iter(self.list_graphs())

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def graph(self, name: str = DEFAULT_GRAPH_NAME) -> GraphSession:
        """The session bound to graph ``name``, creating the graph on demand."""
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self.create_graph(name)
            return session

    def session(self, graph: str = DEFAULT_GRAPH_NAME) -> GraphSession:
        """Driver-style alias for :meth:`graph`."""
        return self.graph(graph)

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Checkpoint every open session of a durable database."""
        with self._lock:
            for session in self._sessions.values():
                if session.durable:
                    session.checkpoint()

    def close(self) -> None:
        """Flush and close every open session (no-op when in-memory)."""
        with self._lock:
            for session in self._sessions.values():
                session.close()

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _graph_directory(self, name: str) -> str:
        if not _DURABLE_NAME.match(name):
            raise ValueError(
                f"durable graph name {name!r} must match {_DURABLE_NAME.pattern}"
                " (it becomes a directory name)"
            )
        return os.path.join(self._path, name)

    def _discovery_io(self) -> StorageIO:
        if self._storage_io is not None:
            return self._storage_io
        from .storage import FileIO

        return FileIO()

    def _persisted_graphs(self) -> list[str]:
        """Graph names with on-disk state under the database directory."""
        if self._path is None:
            return []
        io = self._discovery_io()
        if not io.exists(self._path):
            return []
        from .storage.store import SNAPSHOT_NAME, WAL_NAME

        names = []
        for entry in io.listdir(self._path):
            directory = os.path.join(self._path, entry)
            if io.exists(os.path.join(directory, WAL_NAME)) or io.exists(
                os.path.join(directory, SNAPSHOT_NAME)
            ):
                names.append(entry)
        return names

    def _delete_persisted(self, name: str) -> None:
        from .storage.store import SNAPSHOT_NAME, SNAPSHOT_TMP_NAME, WAL_NAME

        io = self._discovery_io()
        directory = os.path.join(self._path, name)
        for filename in (WAL_NAME, SNAPSHOT_NAME, SNAPSHOT_TMP_NAME):
            io.remove(os.path.join(directory, filename))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphDatabase(graphs={self.list_graphs()!r})"


# ---------------------------------------------------------------------------
# the process-wide default database
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default_database: Optional[GraphDatabase] = None


def default_database() -> GraphDatabase:
    """The process-wide :class:`GraphDatabase` (created on first use)."""
    global _default_database
    with _default_lock:
        if _default_database is None:
            _default_database = GraphDatabase()
        return _default_database


def connect(graph: str = DEFAULT_GRAPH_NAME) -> GraphSession:
    """One-liner entry point: a session on the default database.

    ``repro.connect()`` gives the ``"default"`` graph;
    ``repro.connect("covid")`` a named one (created on demand).
    """
    return default_database().graph(graph)


def reset_default_database() -> None:
    """Drop the process-wide default database (tests and REPL hygiene)."""
    global _default_database
    with _default_lock:
        _default_database = None
