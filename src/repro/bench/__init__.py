"""Benchmark harness: experiment functions regenerating every paper artifact."""

from .experiments import (
    ALL_EXPERIMENTS,
    figure1_grammar,
    figure2_apoc_translation,
    figure3_memgraph_translation,
    figure45_cov2k_schema,
    perf_cascading,
    perf_compat_routes,
    perf_granularity_action_time,
    perf_plan_cache,
    perf_trigger_overhead,
    section62_trigger_suite,
    section63_apoc_worked_translations,
    table1_feature_matrix,
    table2_apoc_metadata,
    table3_transition_variables,
    table4_memgraph_variables,
)
from .harness import ExperimentResult, run_experiments, timed

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "figure1_grammar",
    "figure2_apoc_translation",
    "figure3_memgraph_translation",
    "figure45_cov2k_schema",
    "perf_cascading",
    "perf_compat_routes",
    "perf_granularity_action_time",
    "perf_plan_cache",
    "perf_trigger_overhead",
    "run_experiments",
    "section62_trigger_suite",
    "section63_apoc_worked_translations",
    "table1_feature_matrix",
    "table2_apoc_metadata",
    "table3_transition_variables",
    "table4_memgraph_variables",
    "timed",
]
