"""Run all experiments and print their tables: ``python -m repro.bench [ids…]``."""

from __future__ import annotations

import sys

from .experiments import ALL_EXPERIMENTS
from .harness import timed


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments (all of them when no ids are given)."""
    argv = sys.argv[1:] if argv is None else argv
    requested = argv or list(ALL_EXPERIMENTS)
    unknown = [key for key in requested if key not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for key in requested:
        result = timed(ALL_EXPERIMENTS[key])
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
