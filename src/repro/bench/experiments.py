"""One function per paper artifact (table/figure) plus added performance experiments.

Paper artifacts (qualitative — the paper has no performance evaluation):

* :func:`table1_feature_matrix`  — Table 1
* :func:`figure1_grammar`        — Figure 1 (grammar round-trip)
* :func:`figure2_apoc_translation` — Figure 2 (PG-Trigger → APOC, all event kinds)
* :func:`table2_apoc_metadata`   — Table 2 (APOC transition metadata)
* :func:`table3_transition_variables` — Table 3 (OLD/NEW construction)
* :func:`figure3_memgraph_translation` — Figure 3 (PG-Trigger → Memgraph)
* :func:`table4_memgraph_variables` — Table 4 (Memgraph predefined variables)
* :func:`figure45_cov2k_schema`  — Figures 4–5 (CoV2K schema + validation)
* :func:`section62_trigger_suite` — Section 6.2 (the six triggers, end to end)
* :func:`section63_apoc_worked_translations` — Section 6.3 (translated triggers
  behave like the native engine, up to APOC's documented limitations)

Added performance experiments (labelled P1–P4 in DESIGN.md / EXPERIMENTS.md):

* :func:`perf_trigger_overhead`  — cost per statement vs number of installed triggers
* :func:`perf_cascading`         — cascade depth sweep + termination analysis verdicts
* :func:`perf_granularity_action_time` — FOR EACH vs FOR ALL × action times
* :func:`perf_compat_routes`     — native engine vs APOC route vs Memgraph route
* :func:`perf_plan_cache`        — index-aware planning and the global plan cache
* :func:`perf_streaming_limit`   — streaming vs eager MATCH … LIMIT latency
* :func:`perf_batched_triggers`  — batched vs per-activation trigger evaluation
* :func:`perf_physical_operators` — range seek / hash join / top-k vs baselines
* :func:`perf_durability`        — in-memory vs WAL fsync vs group-commit throughput
* :func:`perf_concurrency`       — HTTP throughput at N concurrent clients (reads vs writes)
* :func:`perf_paths`             — reachability accelerator vs DFS expansion + shortestPath
* :func:`perf_optimizer`         — optimizer torture: q-error distribution + plan regret
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import Callable

from ..compat.apoc import ApocEmulator, transition_parameters, TABLE2_ROWS
from ..cypher.executor import QueryExecutor
from ..cypher.planner import PLAN_CACHE
from ..compat.apoc_translator import translate_to_apoc
from ..compat.comparison import table1_rows
from ..compat.memgraph import MemgraphEmulator, predefined_variables, TABLE4_ROWS
from ..compat.memgraph_translator import translate_to_memgraph
from ..datasets.cov2k import Cov2kProfile, generate_cov2k
from ..datasets.paper_triggers import (
    icu_patient_increase,
    icu_patient_move,
    icu_patients_over_threshold,
    move_to_near_hospital,
    new_critical_lineage,
    new_critical_mutation,
    who_designation_change,
)
from ..datasets.workloads import (
    designation_change_stream,
    hospital_setup,
    icu_admission_stream,
    lineage_assignment_stream,
    mutation_discovery_stream,
    replay,
)
from ..graph.store import PropertyGraph
from ..schema.validation import validate_graph
from ..triggers.ast import ActionTime, EventType, ItemKind, TriggerDefinition
from ..triggers.engine import TriggerEngine
from ..triggers.events import compute_activations
from ..triggers.parser import parse_trigger
from ..triggers.registry import TriggerRegistry
from ..triggers.session import GraphSession
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .harness import ExperimentResult

_CLOCK = lambda: _dt.datetime(2021, 3, 14, 12, 0, 0)  # noqa: E731 - deterministic clock


# ---------------------------------------------------------------------------
# T1
# ---------------------------------------------------------------------------


def table1_feature_matrix() -> ExperimentResult:
    """Regenerate Table 1 (reactive support across graph databases)."""
    result = ExperimentResult("T1", "Table 1 — reactive support in graph databases")
    for row in table1_rows():
        result.add_row(**row)
    graph_trigger_systems = [r["System"] for r in result.rows if r["Tr-G"] == "✓"]
    result.note(f"native graph triggers only in: {', '.join(graph_trigger_systems)}")
    return result


# ---------------------------------------------------------------------------
# F1
# ---------------------------------------------------------------------------


def figure1_grammar() -> ExperimentResult:
    """Round-trip the paper's triggers through the Figure 1 grammar."""
    result = ExperimentResult("F1", "Figure 1 — PG-Trigger grammar round-trip")
    sources = {
        "NewCriticalMutation": new_critical_mutation(),
        "NewCriticalLineage": new_critical_lineage(),
        "WhoDesignationChange": who_designation_change(),
        "IcuPatientsOverThreshold": icu_patients_over_threshold(),
        "IcuPatientIncrease": icu_patient_increase(),
        "IcuPatientMove": icu_patient_move(),
        "MoveToNearHospital": move_to_near_hospital(),
    }
    for name, text in sources.items():
        definition = parse_trigger(text)
        reparsed = parse_trigger(definition.to_pg_trigger())
        result.add_row(
            trigger=name,
            time=definition.time.value,
            event=definition.event.value,
            target=definition.target,
            granularity=definition.granularity.value,
            item=definition.item.value,
            has_condition=definition.condition is not None,
            round_trip_stable=(
                reparsed.event == definition.event
                and reparsed.granularity == definition.granularity
                and reparsed.target == definition.target
            ),
        )
    return result


# ---------------------------------------------------------------------------
# F2 / F3 — translations
# ---------------------------------------------------------------------------


def _event_kind_triggers() -> list[TriggerDefinition]:
    """One minimal trigger per supported event kind."""
    kinds = [
        ("CreateNode", EventType.CREATE, ItemKind.NODE, None),
        ("DeleteNode", EventType.DELETE, ItemKind.NODE, None),
        ("CreateRel", EventType.CREATE, ItemKind.RELATIONSHIP, None),
        ("DeleteRel", EventType.DELETE, ItemKind.RELATIONSHIP, None),
        ("SetNodeProp", EventType.SET, ItemKind.NODE, "value"),
        ("RemoveNodeProp", EventType.REMOVE, ItemKind.NODE, "value"),
        ("SetRelProp", EventType.SET, ItemKind.RELATIONSHIP, "value"),
        ("RemoveRelProp", EventType.REMOVE, ItemKind.RELATIONSHIP, "value"),
        ("SetLabelOnNode", EventType.SET, ItemKind.NODE, None),
        ("RemoveLabelOnNode", EventType.REMOVE, ItemKind.NODE, None),
    ]
    definitions = []
    for name, event, item, prop in kinds:
        definitions.append(
            TriggerDefinition(
                name=name,
                time=ActionTime.AFTER,
                event=event,
                label="Target" if item == ItemKind.NODE else "RelType",
                property=prop,
                item=item,
                statement="CREATE (:Alert {source: '" + name + "'})",
            )
        )
    return definitions


def figure2_apoc_translation() -> ExperimentResult:
    """Figure 2 — translate all ten event kinds (plus the worked example) to APOC."""
    result = ExperimentResult("F2", "Figure 2 — syntax-directed translation to APOC triggers")
    example = translate_to_apoc(parse_trigger(new_critical_mutation()))
    result.add_row(
        trigger="NewCriticalMutation",
        event="CREATE NODE",
        unwind_parameter=example.parameter,
        phase=example.phase,
        uses_do_when="apoc.do.when" in example.call_text,
    )
    for definition in _event_kind_triggers():
        translation = translate_to_apoc(definition)
        result.add_row(
            trigger=definition.name,
            event=f"{definition.event.value} {definition.item.value}"
            + (f".{definition.property}" if definition.property else ""),
            unwind_parameter=translation.parameter,
            phase=translation.phase,
            uses_do_when="apoc.do.when" in translation.call_text,
        )
    result.note("all translations target the afterAsync phase, as advised in Section 5.1")
    return result


def figure3_memgraph_translation() -> ExperimentResult:
    """Figure 3 — translate the same event kinds to Memgraph triggers."""
    result = ExperimentResult("F3", "Figure 3 — syntax-directed translation to Memgraph triggers")
    example = translate_to_memgraph(parse_trigger(new_critical_mutation()))
    result.add_row(
        trigger="NewCriticalMutation",
        event="CREATE NODE",
        source_variable=example.source_variable,
        on_clause=example.on_clause,
        phase=example.phase,
        uses_case="CASE WHEN" in example.ddl,
    )
    for definition in _event_kind_triggers():
        translation = translate_to_memgraph(definition)
        result.add_row(
            trigger=definition.name,
            event=f"{definition.event.value} {definition.item.value}"
            + (f".{definition.property}" if definition.property else ""),
            source_variable=translation.source_variable,
            on_clause=translation.on_clause,
            phase=translation.phase,
            uses_case="CASE WHEN" in translation.ddl,
        )
    return result


# ---------------------------------------------------------------------------
# T2 / T3 / T4 — transition metadata
# ---------------------------------------------------------------------------


def _representative_transaction(graph: PropertyGraph) -> Transaction:
    """A transaction touching every change kind of Tables 2/4."""
    tx = Transaction(graph)
    lineage = tx.create_node(["Lineage"], {"name": "B.1.617.2", "whoDesignation": "Indian"})
    sequence = tx.create_node(["Sequence"], {"accession": "EPI_ISL_1"})
    doomed = tx.create_node(["Sequence"], {"accession": "EPI_ISL_2"})
    rel = tx.create_relationship("BelongsTo", sequence.id, lineage.id, {"since": 2020})
    doomed_rel = tx.create_relationship("BelongsTo", doomed.id, lineage.id)
    tx.set_node_property(lineage.id, "whoDesignation", "Delta")
    tx.add_label(lineage.id, "VariantOfConcern")
    tx.remove_label(lineage.id, "VariantOfConcern")
    tx.set_relationship_property(rel.id, "since", 2021)
    tx.remove_relationship_property(rel.id, "since")
    tx.remove_node_property(lineage.id, "whoDesignation")
    tx.delete_relationship(doomed_rel.id)
    tx.delete_node(doomed.id)
    return tx


def table2_apoc_metadata() -> ExperimentResult:
    """Table 2 — the APOC transition metadata, populated from a real delta."""
    result = ExperimentResult("T2", "Table 2 — APOC trigger transition metadata")
    tx = _representative_transaction(PropertyGraph())
    parameters = transition_parameters(tx.statement_delta)
    sizes = {
        "createdNodes": len(parameters["createdNodes"]),
        "createdRels": len(parameters["createdRelationships"]),
        "deletedNodes": len(parameters["deletedNodes"]),
        "deletedRels": len(parameters["deletedRelationships"]),
        "assignedLabels": sum(len(v) for v in parameters["assignedLabels"].values()),
        "removedLabels": sum(len(v) for v in parameters["removedLabels"].values()),
        "assignedNodeProperties": sum(
            len(v) for v in parameters["assignedNodeProperties"].values()
        ),
        "assignedRelProperties": sum(
            len(v) for v in parameters["assignedRelProperties"].values()
        ),
        "removedNodeProperties": sum(
            len(v) for v in parameters["removedNodeProperties"].values()
        ),
        "removedRelProperties": sum(
            len(v) for v in parameters["removedRelProperties"].values()
        ),
    }
    for name, description in TABLE2_ROWS:
        result.add_row(statement=name, description=description, entries_in_sample=sizes[name])
    return result


def table3_transition_variables() -> ExperimentResult:
    """Table 3 — which transition variables each event kind provides."""
    result = ExperimentResult("T3", "Table 3 — OLD/NEW transition variables per event")
    graph = PropertyGraph()
    tx = _representative_transaction(graph)
    delta = tx.statement_delta
    cases = [
        ("Nodes Create", EventType.CREATE, ItemKind.NODE, "Sequence", None),
        ("Nodes Delete", EventType.DELETE, ItemKind.NODE, "Sequence", None),
        ("Relationships Create", EventType.CREATE, ItemKind.RELATIONSHIP, "BelongsTo", None),
        ("Relationships Delete", EventType.DELETE, ItemKind.RELATIONSHIP, "BelongsTo", None),
        ("Labels Set", EventType.SET, ItemKind.NODE, "Lineage", None),
        ("Labels Remove", EventType.REMOVE, ItemKind.NODE, "Lineage", None),
        ("Node Properties Set", EventType.SET, ItemKind.NODE, "Lineage", "whoDesignation"),
        ("Node Properties Remove", EventType.REMOVE, ItemKind.NODE, "Lineage", "whoDesignation"),
        ("Rel Properties Set", EventType.SET, ItemKind.RELATIONSHIP, "BelongsTo", "since"),
        ("Rel Properties Remove", EventType.REMOVE, ItemKind.RELATIONSHIP, "BelongsTo", "since"),
    ]
    for label_text, event, item, target, prop in cases:
        trigger = TriggerDefinition(
            name=f"probe_{label_text.replace(' ', '_')}",
            time=ActionTime.AFTER,
            event=event,
            label=target,
            property=prop,
            item=item,
            statement="CREATE (:Alert)",
        )
        activations = compute_activations(trigger, delta)
        result.add_row(
            event=label_text,
            activations=len(activations),
            old_available=any(a.old is not None for a in activations),
            new_available=any(a.new is not None for a in activations),
        )
    return result


def table4_memgraph_variables() -> ExperimentResult:
    """Table 4 — the Memgraph predefined variables, populated from a real delta."""
    result = ExperimentResult("T4", "Table 4 — Memgraph predefined trigger variables")
    tx = _representative_transaction(PropertyGraph())
    variables = predefined_variables(tx.statement_delta)
    for name, description in TABLE4_ROWS:
        result.add_row(
            variable=name, description=description, entries_in_sample=len(variables[name])
        )
    return result


# ---------------------------------------------------------------------------
# F4/F5 — CoV2K schema
# ---------------------------------------------------------------------------


def figure45_cov2k_schema() -> ExperimentResult:
    """Figures 4–5 — the CoV2K PG-Schema and a conforming synthetic population."""
    result = ExperimentResult("F45", "Figures 4-5 — CoV2K PG-Schema and population")
    dataset = generate_cov2k(Cov2kProfile(patients=80, sequences=60, mutations=25))
    schema = dataset.schema
    for node_type in schema.node_types():
        result.add_row(
            kind="node type",
            name=node_type.label,
            supertype=(schema.node_type(node_type.supertype).label if node_type.supertype else "-"),
            properties=len(schema.effective_properties(node_type.label)),
            instances=dataset.graph.count_nodes_with_label(node_type.label),
        )
    for edge_type in schema.edge_types():
        result.add_row(
            kind="edge type",
            name=edge_type.label,
            supertype="-",
            properties=len(edge_type.properties),
            instances=dataset.graph.count_relationships_with_type(edge_type.label),
        )
    violations = validate_graph(dataset.graph, schema)
    result.note(f"schema violations in generated population: {len(violations)}")
    result.note(f"keys: {[str(k) for k in schema.keys()]}")
    return result


# ---------------------------------------------------------------------------
# S62 — the running example end to end
# ---------------------------------------------------------------------------


def section62_trigger_suite(scale: float = 1.0) -> ExperimentResult:
    """Section 6.2 — install the paper's triggers and replay the COVID workloads."""
    result = ExperimentResult("S62", "Section 6.2 — the COVID-19 trigger suite in action")
    session = GraphSession(clock=_CLOCK)
    replay(session, hospital_setup(hospitals=3, icu_beds=8))
    session.create_trigger(new_critical_mutation())
    session.create_trigger(new_critical_lineage())
    session.create_trigger(who_designation_change())
    session.create_trigger(icu_patients_over_threshold(threshold=10))
    session.create_trigger(icu_patient_increase(fraction=0.25))
    session.create_trigger(icu_patient_move())

    replay(session, mutation_discovery_stream(count=int(30 * scale), critical_fraction=0.3))
    replay(session, lineage_assignment_stream(sequences=int(20 * scale), critical_every=4))
    replay(session, designation_change_stream(changes=int(6 * scale)))
    replay(session, icu_admission_stream(admissions=int(12 * scale), batch_size=3))

    alerts = session.alerts()
    summary = session.engine.firing_summary()
    for name in session.registry.names():
        stats = summary.get(name, {"executed": 0, "suppressed": 0, "max_depth": 0})
        result.add_row(
            trigger=name,
            executed=stats["executed"],
            suppressed=stats["suppressed"],
            max_cascade_depth=stats["max_depth"],
        )
    result.note(f"total alerts produced: {len(alerts)}")
    result.note(f"termination analysis: {session.analyse_termination()}")
    return result


# ---------------------------------------------------------------------------
# S63 — worked APOC translations vs the native engine
# ---------------------------------------------------------------------------


def section63_apoc_worked_translations() -> ExperimentResult:
    """Section 6.3 — the translated triggers reproduce the native engine's alerts."""
    result = ExperimentResult(
        "S63", "Section 6.3 — worked APOC translations vs the PG-Trigger engine"
    )
    cases = {
        "NewCriticalMutation": new_critical_mutation(),
        "WhoDesignationChange": who_designation_change(),
        "IcuPatientsOverThreshold": icu_patients_over_threshold(threshold=3),
    }
    workload = (
        hospital_setup(hospitals=2, icu_beds=10)
        + mutation_discovery_stream(count=15, critical_fraction=0.4)
        + designation_change_stream(changes=4)
        + icu_admission_stream(admissions=6, batch_size=1)
    )
    for name, text in cases.items():
        session = GraphSession(clock=_CLOCK)
        session.create_trigger(text)
        replay(session, workload)
        native_alerts = len(session.alerts())

        emulator = ApocEmulator(clock=_CLOCK)
        emulator.run(translate_to_apoc(parse_trigger(text)).call_text)
        for statement in workload:
            emulator.run(statement.query, statement.parameters)
        apoc_alerts = emulator.graph.count_nodes_with_label("Alert")

        memgraph = MemgraphEmulator(clock=_CLOCK)
        memgraph.run(translate_to_memgraph(parse_trigger(text)).ddl)
        for statement in workload:
            memgraph.run(statement.query, statement.parameters)
        memgraph_alerts = memgraph.graph.count_nodes_with_label("Alert")

        result.add_row(
            trigger=name,
            native_alerts=native_alerts,
            apoc_alerts=apoc_alerts,
            memgraph_alerts=memgraph_alerts,
            equivalent=(native_alerts == apoc_alerts == memgraph_alerts),
        )
    result.note(
        "set-granularity triggers may differ on duplicate alerts because APOC/Memgraph "
        "cannot distinguish FOR EACH from FOR ALL (Section 5.1); MERGE collapses them"
    )
    return result


# ---------------------------------------------------------------------------
# P1–P4 — added performance experiments
# ---------------------------------------------------------------------------


def perf_trigger_overhead(trigger_counts=(0, 1, 4, 16, 64), statements: int = 150) -> ExperimentResult:
    """P1 — per-statement overhead as a function of installed (non-matching + matching) triggers."""
    result = ExperimentResult("P1", "P1 — trigger matching overhead vs installed triggers")
    for count in trigger_counts:
        session = GraphSession(clock=_CLOCK)
        for index in range(count):
            # half the triggers target the created label, half target others
            label = "Entity" if index % 2 == 0 else f"Other{index}"
            session.create_trigger(
                f"CREATE TRIGGER T{index} AFTER CREATE ON '{label}' FOR EACH NODE "
                f"WHEN NEW.value > 1000000 BEGIN CREATE (:Never) END"
            )
        started = time.perf_counter()
        for index in range(statements):
            session.run("CREATE (:Entity {value: $v})", {"v": index})
        elapsed = time.perf_counter() - started
        result.add_row(
            installed_triggers=count,
            statements=statements,
            total_seconds=elapsed,
            mean_ms_per_statement=1000 * elapsed / statements,
        )
    result.note("conditions are never satisfied, so the cost measured is matching + condition evaluation")
    return result


def perf_cascading(depths=(1, 2, 4, 8, 12)) -> ExperimentResult:
    """P2 — cascading chains of increasing length, with the static analysis verdict."""
    result = ExperimentResult("P2", "P2 — cascading depth: runtime cost and termination analysis")
    for depth in depths:
        session = GraphSession(clock=_CLOCK, max_cascade_depth=depth + 2)
        for level in range(depth):
            session.create_trigger(
                f"CREATE TRIGGER Chain{level} AFTER CREATE ON 'Level{level}' FOR EACH NODE "
                f"BEGIN CREATE (:Level{level + 1} {{step: {level + 1}}}) END"
            )
        report = session.analyse_termination()
        started = time.perf_counter()
        session.run("CREATE (:Level0 {step: 0})")
        elapsed = time.perf_counter() - started
        fired = sum(1 for f in session.engine.firings if f.executed)
        result.add_row(
            chain_length=depth,
            triggers_fired=fired,
            max_depth_reached=max((f.depth for f in session.engine.firings), default=0),
            seconds=elapsed,
            termination_guaranteed=report.guaranteed_termination,
        )
    return result


def perf_granularity_action_time(batch_sizes=(1, 10, 50), admissions: int = 50) -> ExperimentResult:
    """P3 — FOR EACH vs FOR ALL and AFTER vs ONCOMMIT vs DETACHED."""
    result = ExperimentResult("P3", "P3 — granularity and action time comparison")
    configurations = [
        ("FOR EACH / AFTER", "AFTER", "EACH"),
        ("FOR ALL / AFTER", "AFTER", "ALL"),
        ("FOR EACH / ONCOMMIT", "ONCOMMIT", "EACH"),
        ("FOR EACH / DETACHED", "DETACHED", "EACH"),
    ]
    for batch in batch_sizes:
        for label, time_word, granularity in configurations:
            session = GraphSession(clock=_CLOCK)
            replay(session, hospital_setup(hospitals=2, icu_beds=1000))
            item = "NODE" if granularity == "EACH" else "NODES"
            session.create_trigger(
                f"CREATE TRIGGER Audit {time_word} CREATE ON 'IcuPatient' FOR {granularity} {item} "
                "BEGIN CREATE (:AuditEntry) END"
            )
            stream = icu_admission_stream(admissions=admissions, batch_size=batch)
            started = time.perf_counter()
            replay(session, stream)
            elapsed = time.perf_counter() - started
            result.add_row(
                batch_size=batch,
                configuration=label,
                statements=len(stream),
                audit_entries=session.graph.count_nodes_with_label("AuditEntry"),
                seconds=elapsed,
            )
    result.note("FOR ALL executes once per statement, FOR EACH once per admitted patient")
    return result


def perf_compat_routes(admissions: int = 40) -> ExperimentResult:
    """P4 — the same trigger and workload through the three execution routes."""
    result = ExperimentResult("P4", "P4 — native PG-Trigger engine vs APOC vs Memgraph routes")
    trigger_text = new_critical_mutation()
    workload = mutation_discovery_stream(count=admissions, critical_fraction=0.4)

    session = GraphSession(clock=_CLOCK)
    session.create_trigger(trigger_text)
    started = time.perf_counter()
    replay(session, workload)
    native_seconds = time.perf_counter() - started
    result.add_row(
        route="PG-Trigger engine",
        alerts=len(session.alerts()),
        seconds=native_seconds,
        cascading_supported=True,
    )

    emulator = ApocEmulator(clock=_CLOCK)
    emulator.run(translate_to_apoc(parse_trigger(trigger_text)).call_text)
    started = time.perf_counter()
    for statement in workload:
        emulator.run(statement.query, statement.parameters)
    result.add_row(
        route="APOC emulation (afterAsync)",
        alerts=emulator.graph.count_nodes_with_label("Alert"),
        seconds=time.perf_counter() - started,
        cascading_supported=False,
    )

    memgraph = MemgraphEmulator(clock=_CLOCK)
    memgraph.run(translate_to_memgraph(parse_trigger(trigger_text)).ddl)
    started = time.perf_counter()
    for statement in workload:
        memgraph.run(statement.query, statement.parameters)
    result.add_row(
        route="Memgraph emulation (after commit)",
        alerts=memgraph.graph.count_nodes_with_label("Alert"),
        seconds=time.perf_counter() - started,
        cascading_supported=False,
    )
    return result


def perf_plan_cache(nodes: int = 2000, queries: int = 200) -> ExperimentResult:
    """P5 — the planner's index access path and the shared parse+plan cache.

    Runs the same parameterised point lookup with and without a property
    index; the EXPLAIN output shows the chosen access path flipping from a
    label scan to a ``PropertyIndex`` lookup, and the cache statistics show
    that re-executions hit the plan cache instead of re-parsing.
    """
    result = ExperimentResult("P5", "P5 — index-aware planning and plan-cache behaviour")
    graph = PropertyGraph()
    for index in range(nodes):
        graph.create_node(["Patient"], {"mrn": index, "severity": index % 5})
    query = "MATCH (p:Patient) WHERE p.mrn = $mrn RETURN p.severity AS severity"

    def run_queries() -> float:
        executor = QueryExecutor(graph)
        started = time.perf_counter()
        for index in range(queries):
            executor.execute(query, parameters={"mrn": index % nodes})
        return time.perf_counter() - started

    probe = QueryExecutor(graph)
    before_stats = PLAN_CACHE.stats.snapshot()
    scan_seconds = run_queries()
    scan_plan = probe.plan_description(query)
    graph.create_property_index("Patient", "mrn")
    index_seconds = run_queries()
    index_plan = probe.plan_description(query)
    after_stats = PLAN_CACHE.stats.snapshot()

    result.add_row(
        route="label scan (no index)",
        queries=queries,
        seconds=scan_seconds,
        mean_us_per_query=1_000_000 * scan_seconds / queries,
        plan=scan_plan,
    )
    result.add_row(
        route="property index",
        queries=queries,
        seconds=index_seconds,
        mean_us_per_query=1_000_000 * index_seconds / queries,
        plan=index_plan,
    )
    plan_hits = after_stats["plan_hits"] - before_stats["plan_hits"]
    parse_misses = after_stats["parse_misses"] - before_stats["parse_misses"]
    result.note(f"plan cache hits during the run: {plan_hits}; query parses: {parse_misses}")
    result.note("index DDL bumps the graph's index epoch, re-planning the cached query")
    return result


def perf_streaming_limit(
    nodes: int = 50_000, limit: int = 10, repeats: int = 5
) -> ExperimentResult:
    """P6 — ``MATCH … LIMIT k`` latency: streaming pipeline vs eager baseline.

    Builds a synthetic graph of ``nodes`` people (half matching the
    predicate) and runs the same point query through two executors: the
    streaming pipeline (pulls rows lazily, so LIMIT stops the scan after a
    handful of candidates) and the ``eager=True`` baseline that
    materialises every clause fully — the pre-pipeline behaviour, which
    scanned all ``nodes`` before slicing off ``limit`` rows.
    """
    result = ExperimentResult(
        "P6", "P6 — streaming vs eager MATCH … LIMIT over a synthetic graph"
    )
    graph = PropertyGraph()
    for index in range(nodes):
        graph.create_node(["Person"], {"seq": index, "flag": index % 2})
    query = f"MATCH (p:Person) WHERE p.flag = 1 RETURN p.seq AS seq LIMIT {limit}"

    def best_of(eager: bool) -> tuple[float, list[dict]]:
        timings = []
        rows: list[dict] = []
        for _ in range(repeats):
            executor = QueryExecutor(graph, eager=eager)
            started = time.perf_counter()
            _, records = executor.stream(query)
            rows = list(records)
            timings.append(time.perf_counter() - started)
        return min(timings), rows

    eager_seconds, eager_rows = best_of(eager=True)
    stream_seconds, stream_rows = best_of(eager=False)
    assert stream_rows == eager_rows, "streaming and eager rows must agree"
    speedup = eager_seconds / stream_seconds if stream_seconds else float("inf")

    result.add_row(
        route="eager (materialise every clause)",
        nodes=nodes,
        limit=limit,
        best_ms=1000 * eager_seconds,
        rows=len(eager_rows),
    )
    result.add_row(
        route="streaming pipeline",
        nodes=nodes,
        limit=limit,
        best_ms=1000 * stream_seconds,
        rows=len(stream_rows),
    )
    result.note(f"speedup (eager / streaming): {speedup:.1f}x")
    result.note("both executions returned identical rows")
    return result


def perf_batched_triggers(
    nodes: int = 50_000, gate_triggers: int = 2, configs: int = 96
) -> ExperimentResult:
    """P7 — batched vs per-activation trigger evaluation over a 50k-node delta.

    One statement creates ``nodes`` Reading nodes, producing a delta with
    ``nodes`` activations for each installed FOR EACH trigger:

    * ``gate_triggers`` config-gated triggers whose condition matches a
      feature-flag node out of a ``configs``-node Config catalog (the flag
      is disabled, so they never fire) — the condition is activation-
      invariant, so the batched engine matches it once per delta while the
      per-activation engine re-scans the catalog ``nodes`` times;
    * one Escalate trigger whose condition correlates with ``NEW`` against
      the catalog's threshold entry, firing for the five highest readings
      (creating Spike nodes);
    * one Cascade trigger reacting to the produced Spikes — so the run
      also exercises a cascade seeded from inside the batch.

    The timed section is exactly the engine's processing of that delta,
    through two engines differing only in ``batched_conditions``.  Both
    routes must produce identical Spike/Audit populations; the batched
    route must be ≥5x faster.
    """
    result = ExperimentResult(
        "P7", "P7 — batched vs per-activation trigger condition evaluation"
    )
    outcomes: dict[str, tuple[int, int]] = {}
    timings: dict[str, float] = {}
    for route, batched in (("per-activation", False), ("batched", True)):
        graph = PropertyGraph()
        manager = TransactionManager(graph)
        registry = TriggerRegistry()
        # The incremental tier is disabled on both routes: P7 isolates the
        # batched-vs-sequential comparison (P13 grades the incremental tier).
        engine = TriggerEngine(
            graph,
            registry,
            manager,
            clock=_CLOCK,
            batched_conditions=batched,
            incremental_conditions=False,
        )
        # A config catalog: one threshold entry, one (disabled) flag per
        # gate trigger, and filler entries that make the catalog scan cost
        # visible — the invariant work batching hoists out of the loop.
        graph.create_node(["Config"], {"name": "threshold", "cutoff": nodes - 5})
        for index in range(gate_triggers):
            graph.create_node(["Config"], {"name": f"gate{index}", "enabled": False})
        for index in range(configs):
            graph.create_node(["Config"], {"name": f"entry{index}", "payload": index})
        for index in range(gate_triggers):
            registry.install(
                f"CREATE TRIGGER Gate{index} AFTER CREATE ON 'Reading' FOR EACH NODE "
                f"WHEN MATCH (c:Config {{name: 'gate{index}', enabled: true}}) "
                "BEGIN CREATE (:NeverFired) END"
            )
        registry.install(
            "CREATE TRIGGER Escalate AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (c:Config {name: 'threshold'}) WHERE NEW.value > c.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END"
        )
        registry.install(
            "CREATE TRIGGER CascadeAudit AFTER CREATE ON 'Spike' FOR EACH NODE "
            "BEGIN CREATE (:Audit {value: NEW.value}) END"
        )
        tx = manager.begin()
        for index in range(nodes):
            tx.create_node(["Reading"], {"value": index + 1})
        delta = tx.end_statement()
        started = time.perf_counter()
        engine.run_statement_triggers(tx, delta)
        elapsed = time.perf_counter() - started
        manager.commit(tx)

        spikes = graph.count_nodes_with_label("Spike")
        audits = graph.count_nodes_with_label("Audit")
        outcomes[route] = (spikes, audits)
        timings[route] = elapsed
        evaluations = nodes * (gate_triggers + 1)
        result.add_row(
            route=route,
            nodes=nodes,
            triggers=gate_triggers + 2,
            seconds=elapsed,
            mean_us_per_evaluation=1_000_000 * elapsed / evaluations,
            spikes=spikes,
            audits=audits,
            batched_activations=engine.batch_stats["batched_activations"],
        )
    assert outcomes["per-activation"] == outcomes["batched"], (
        "batched evaluation changed trigger results"
    )
    speedup = timings["per-activation"] / timings["batched"] if timings["batched"] else float("inf")
    result.note(f"speedup (per-activation / batched): {speedup:.1f}x")
    result.note("both routes produced identical Spike and Audit populations")
    return result


def perf_physical_operators(
    nodes: int = 50_000, join_side: int = 400, limit: int = 10, repeats: int = 3
) -> ExperimentResult:
    """P8 — the physical operator layer over a 50k-node graph.

    Three head-to-head comparisons, each between a physical operator and
    the plan the engine was previously forced into:

    * **range seek vs label scan** — ``MATCH (n:Item) WHERE n.v >= lo AND
      n.v < hi`` through the ordered index (``IndexRangeSeek``) vs the
      same query before ``create_range_index`` (full label scan);
    * **hash join vs nested loop** — a disconnected pattern pair joined by
      a WHERE equality: the planner's ``HashJoin`` (default executor) vs
      the nested-loop cartesian (``join_ordering=False`` baseline);
    * **top-k vs full sort** — ``ORDER BY … LIMIT k`` through the
      streaming ``TopK`` heap vs the eager full-sort baseline.

    Every comparison asserts identical rows; the range-seek and hash-join
    routes must be ≥5x faster (the top-k ratio is reported — its win is
    bounded by per-row projection cost, which both routes pay).
    """
    result = ExperimentResult("P8", "P8 — physical operators: range seek, hash join, top-k")
    graph = PropertyGraph()
    for index in range(nodes):
        graph.create_node(["Item"], {"v": index})
    for index in range(join_side):
        graph.create_node(["L"], {"k": index % (join_side // 4), "i": index})
        graph.create_node(["R"], {"k": index % (join_side // 4), "i": index})

    def best_of(run) -> tuple[float, list[dict]]:
        timings, rows = [], []
        for _ in range(repeats):
            started = time.perf_counter()
            rows = run()
            timings.append(time.perf_counter() - started)
        return min(timings), rows

    def timed_query(query: str, **executor_kwargs):
        return best_of(lambda: QueryExecutor(graph, **executor_kwargs).execute(query).rows)

    # -- range seek vs label scan ---------------------------------------
    lo, hi = nodes // 2, nodes // 2 + 20
    range_query = f"MATCH (n:Item) WHERE n.v >= {lo} AND n.v < {hi} RETURN n.v AS v"
    scan_seconds, scan_rows = timed_query(range_query)
    graph.create_range_index("Item", "v")
    seek_seconds, seek_rows = timed_query(range_query)
    assert seek_rows == scan_rows and len(seek_rows) == 20
    range_speedup = scan_seconds / seek_seconds if seek_seconds else float("inf")
    probe = QueryExecutor(graph)
    assert "IndexRangeSeek" in probe.plan_description(range_query)
    result.add_row(route="label scan (no ordered index)", comparison="range predicate",
                   best_ms=1000 * scan_seconds, rows=len(scan_rows))
    result.add_row(route="IndexRangeSeek (ordered index)", comparison="range predicate",
                   best_ms=1000 * seek_seconds, rows=len(seek_rows))

    # -- hash join vs nested-loop cartesian -----------------------------
    join_query = (
        "MATCH (a:L), (b:R) WHERE a.k = b.k RETURN a.i AS ai, b.i AS bi"
    )
    nested_seconds, nested_rows = timed_query(join_query, join_ordering=False)
    hash_seconds, hash_rows = timed_query(join_query)
    assert sorted((r["ai"], r["bi"]) for r in hash_rows) == sorted(
        (r["ai"], r["bi"]) for r in nested_rows
    )
    join_speedup = nested_seconds / hash_seconds if hash_seconds else float("inf")
    assert "HashJoin" in probe.plan_description(join_query)
    result.add_row(route="nested loop (join_ordering=False)", comparison="disconnected join",
                   best_ms=1000 * nested_seconds, rows=len(nested_rows))
    result.add_row(route="HashJoin", comparison="disconnected join",
                   best_ms=1000 * hash_seconds, rows=len(hash_rows))

    # -- streaming top-k vs eager full sort -----------------------------
    topk_query = f"MATCH (n:Item) RETURN n.v AS v ORDER BY v DESC LIMIT {limit}"
    sort_seconds, sort_rows = timed_query(topk_query, eager=True)
    topk_seconds, topk_rows = timed_query(topk_query)
    assert topk_rows == sort_rows and len(topk_rows) == limit
    topk_speedup = sort_seconds / topk_seconds if topk_seconds else float("inf")
    assert "TopK" in probe.plan_description(topk_query)
    result.add_row(route="eager full sort", comparison="ORDER BY + LIMIT",
                   best_ms=1000 * sort_seconds, rows=len(sort_rows))
    result.add_row(route="streaming TopK", comparison="ORDER BY + LIMIT",
                   best_ms=1000 * topk_seconds, rows=len(topk_rows))

    assert range_speedup >= 5.0, f"range seek speedup only {range_speedup:.1f}x"
    assert join_speedup >= 5.0, f"hash join speedup only {join_speedup:.1f}x"
    result.note(f"range seek speedup (scan / seek): {range_speedup:.1f}x")
    result.note(f"hash join speedup (nested loop / hash): {join_speedup:.1f}x")
    result.note(f"top-k speedup (full sort / heap): {topk_speedup:.1f}x")
    result.note("every comparison returned identical rows")
    return result


# ---------------------------------------------------------------------------
# P9 — durability cost and recovery fidelity
# ---------------------------------------------------------------------------


def perf_durability(commits: int = 200, group_commit_size: int = 16) -> ExperimentResult:
    """P9 — commit throughput: in-memory vs fsync-per-commit vs group commit.

    The same single-statement write workload runs through three sessions:

    * **in-memory** — no durability layer at all (the pre-PR engine);
    * **durable, fsync-per-commit** — one WAL record + fsync per commit
      (``group_commit_size=1``, the default policy);
    * **durable, group commit** — fsync every ``group_commit_size``
      commits, trading a bounded window of acknowledged-but-unsynced
      commits for throughput.

    Throughput ratios are *reported*, not asserted — on tmpfs or with
    aggressive write caching an fsync can be nearly free, so the only
    hard assertions are correctness ones: both durable routes must
    recover, after close + reopen, a graph identical to the in-memory
    survivor's.
    """
    import shutil
    import tempfile

    from ..graph.serialization import fingerprint

    result = ExperimentResult("P9", "P9 — durability: WAL fsync policies vs in-memory commits")

    def workload(session: GraphSession) -> float:
        started = time.perf_counter()
        for index in range(commits):
            session.run(f"CREATE (:Item {{seq: {index}}})")
        return time.perf_counter() - started

    memory_session = GraphSession(clock=_CLOCK)
    memory_seconds = workload(memory_session)
    reference = fingerprint(memory_session.graph)
    result.add_row(route="in-memory", commits=commits,
                   seconds=round(memory_seconds, 4),
                   commits_per_sec=round(commits / memory_seconds))

    throughput = {"in-memory": commits / memory_seconds}
    for route, group in (("durable fsync-per-commit", 1),
                         ("durable group-commit", group_commit_size)):
        directory = tempfile.mkdtemp(prefix="repro-p9-")
        try:
            session = GraphSession(path=directory, clock=_CLOCK, group_commit_size=group)
            seconds = workload(session)
            survivor = fingerprint(session.graph)
            session.close()
            recovered = GraphSession(path=directory, clock=_CLOCK)
            assert fingerprint(recovered.graph) == survivor == reference, (
                f"{route}: recovered state diverged from the survivor"
            )
            recovered.close()
            throughput[route] = commits / seconds
            result.add_row(route=route, commits=commits,
                           seconds=round(seconds, 4),
                           commits_per_sec=round(commits / seconds))
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    fsync_cost = throughput["in-memory"] / throughput["durable fsync-per-commit"]
    group_gain = (throughput["durable group-commit"]
                  / throughput["durable fsync-per-commit"])
    result.note(f"fsync-per-commit slowdown vs in-memory: {fsync_cost:.1f}x")
    result.note(
        f"group commit (size {group_commit_size}) vs fsync-per-commit: "
        f"{group_gain:.1f}x throughput"
    )
    result.note("both durable routes recovered a graph identical to the in-memory survivor")
    return result


def perf_concurrency(
    client_counts=(1, 2, 4, 8),
    requests_per_client: int = 40,
    write_requests_per_client: int = 10,
) -> ExperimentResult:
    """P10 — HTTP throughput at N concurrent clients, triggers firing.

    A thread-safe database behind the asyncio server, one audit trigger
    installed.  Keep-alive clients issue requests in lockstep-free loops:

    * **reads** are snapshot reads — they share the graph's read lock, so
      aggregate throughput *scales* with client count: one client is
      bound by the request round-trip (client → event loop → executor
      thread → back), while N clients keep the pipeline full;
    * **writes** serialise on the exclusive write lock (every one fires
      the trigger), so their aggregate throughput stays roughly flat —
      reported here as the contrast case.

    The accompanying benchmark asserts the read-scaling acceptance bar
    (≥2x aggregate throughput from 1 to 8 clients) whenever the host
    exposes ≥2 CPUs.  On a single-CPU host every byte of client and
    server work serialises on one core, so aggregate scaling beyond the
    idle fraction of the round-trip is physically impossible; the
    experiment still runs, reports the measured factor and the CPU
    count, and the benchmark falls back to a no-collapse bound.
    """
    import http.client
    import json as _json
    import threading

    from ..database import GraphDatabase
    from ..server import run_in_thread

    result = ExperimentResult(
        "P10", "P10 — concurrent HTTP throughput: snapshot reads vs locked writes"
    )
    database = GraphDatabase(thread_safe=True)
    session = database.graph("bench")
    session.create_trigger("""
        CREATE TRIGGER AuditEvents
        AFTER CREATE ON 'Event'
        FOR EACH NODE
        BEGIN
          CREATE (:Audit {source: NEW.source})
        END
    """)
    with session.transaction():
        for index in range(100):
            session.run("CREATE (:Person {seq: $s})", {"s": index})
    # Indexed point lookup: the read itself is microseconds, so a single
    # client's throughput is bound by the request round-trip and the
    # scaling headroom from pipelining is visible.
    session.graph.create_property_index("Person", "seq")
    handle = run_in_thread(database)

    read_body = _json.dumps({
        "graph": "bench",
        "query": "MATCH (p:Person {seq: 42}) RETURN p.seq AS seq",
    }).encode()
    write_body = _json.dumps({
        "graph": "bench",
        "query": "CREATE (:Event {source: 'bench'})",
    }).encode()

    def throughput(clients: int, body: bytes, count: int) -> float:
        """Aggregate requests/sec for ``clients`` keep-alive clients."""
        start = threading.Barrier(clients + 1)
        failures: list[str] = []

        def worker() -> None:
            connection = http.client.HTTPConnection(handle.host, handle.port, timeout=60)
            try:
                start.wait()
                for _ in range(count):
                    connection.request(
                        "POST", "/run", body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    data = response.read()
                    if response.status != 200:
                        failures.append(data.decode(errors="replace"))
                        return
            finally:
                connection.close()

        threads = [threading.Thread(target=worker) for _ in range(clients)]
        for thread in threads:
            thread.start()
        start.wait()
        begun = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begun
        assert not failures, f"request failed: {failures[0]}"
        return clients * count / elapsed

    def warm_up() -> None:
        """Fill the plan cache and spin up executor threads before timing."""
        connection = http.client.HTTPConnection(handle.host, handle.port, timeout=60)
        for body in (read_body, write_body):
            for _ in range(3):
                connection.request(
                    "POST", "/run", body=body,
                    headers={"Content-Type": "application/json"},
                )
                connection.getresponse().read()
        connection.close()

    try:
        warm_up()
        read_qps: dict[int, float] = {}
        for clients in client_counts:
            read_qps[clients] = throughput(clients, read_body, requests_per_client)
            result.add_row(mode="read", clients=clients,
                           requests=clients * requests_per_client,
                           qps=round(read_qps[clients]))
        write_qps: dict[int, float] = {}
        for clients in client_counts:
            write_qps[clients] = throughput(clients, write_body, write_requests_per_client)
            result.add_row(mode="write", clients=clients,
                           requests=clients * write_requests_per_client,
                           qps=round(write_qps[clients]))
    finally:
        handle.stop()

    import os

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    low, high = min(client_counts), max(client_counts)
    read_scaling = read_qps[high] / read_qps[low]
    write_scaling = write_qps[high] / write_qps[low]
    result.note(
        f"snapshot reads: {read_scaling:.1f}x aggregate throughput from "
        f"{low} to {high} concurrent clients ({cpus} CPU(s) available)"
    )
    result.note(
        f"writes (trigger firing, exclusive lock): {write_scaling:.1f}x from "
        f"{low} to {high} clients — serialisation keeps this flat"
    )
    events = session.run("MATCH (e:Event) RETURN count(*) AS c").single()
    audits = session.run("MATCH (a:Audit) RETURN count(*) AS c").single()
    assert events == audits, "trigger audit count diverged from event count"
    result.note(f"every one of the {events} concurrent writes fired its audit trigger")
    return result


# ---------------------------------------------------------------------------
# P11 — path queries: reachability accelerator and shortestPath
# ---------------------------------------------------------------------------


def perf_paths(nodes: int = 50_000, branching: int = 3, repeats: int = 3) -> ExperimentResult:
    """P11 — path queries over a 50k-node containment hierarchy.

    The graph is a complete ``branching``-ary PART_OF tree (depth ~9 at
    50k nodes) with a property index on ``pid`` so start/target lookup
    never dominates the traversal being measured.  Three comparisons:

    * **bound-pair reachability** — ``(root)-[:PART_OF*]->(leaf)`` with
      both endpoints bound: the DFS route enumerates the whole subtree
      under the root before the target filter applies, while the
      reachability index answers with one O(1) interval-containment
      probe.  This is the accelerator's headline win and must be ≥5x.
    * **unbound subtree enumeration** — ``(root)-[:PART_OF*]->(x)``:
      both routes touch every descendant, so the interval scan's win is
      bounded (no per-path trail bookkeeping); the ratio is reported.
    * **shortestPath latency** — bidirectional BFS vs the naive
      enumerator (``naive_paths=True``) on the same bound pair; the
      backward frontier is the parent chain, so the fast route explores
      ~depth nodes instead of every rel-unique walk.

    Every comparison asserts identical rows.
    """
    result = ExperimentResult("P11", "P11 — path queries: reachability accelerator, shortestPath")
    graph = PropertyGraph()
    created = [graph.create_node(["Part"], {"pid": 0})]
    while len(created) < nodes:
        index = len(created)
        parent = created[(index - 1) // branching]
        node = graph.create_node(["Part"], {"pid": index})
        graph.create_relationship("PART_OF", parent.id, node.id)
        created.append(node)
    graph.create_property_index("Part", "pid")
    leaf_pid = nodes - 1
    depth = 0
    probe_index = leaf_pid
    while probe_index > 0:
        probe_index = (probe_index - 1) // branching
        depth += 1

    def best_of(run) -> tuple[float, list[dict]]:
        timings, rows = [], []
        for _ in range(repeats):
            started = time.perf_counter()
            rows = run()
            timings.append(time.perf_counter() - started)
        return min(timings), rows

    def timed_query(query: str, **executor_kwargs):
        return best_of(lambda: QueryExecutor(graph, **executor_kwargs).execute(query).rows)

    # -- bound-pair reachability: DFS vs interval probe -----------------
    bound_query = (
        f"MATCH (b:Part {{pid: {leaf_pid}}}) "
        "MATCH (a:Part {pid: 0})-[:PART_OF*]->(b) "
        "RETURN b.pid AS pid"
    )
    dfs_seconds, dfs_rows = timed_query(bound_query)
    graph.create_reachability_index("PART_OF")
    graph.reachability_index("PART_OF").ensure(graph)  # build outside the timer
    accel_seconds, accel_rows = timed_query(bound_query)
    assert accel_rows == dfs_rows and len(accel_rows) == 1
    probe = QueryExecutor(graph)
    assert "reachability" in probe.plan_description(bound_query)
    bound_speedup = dfs_seconds / accel_seconds if accel_seconds else float("inf")
    result.add_row(route="VarLengthExpand (dfs)", comparison="bound-pair reachability",
                   best_ms=1000 * dfs_seconds, rows=len(dfs_rows))
    result.add_row(route="ReachabilityIndex probe", comparison="bound-pair reachability",
                   best_ms=1000 * accel_seconds, rows=len(accel_rows))

    # -- unbound subtree enumeration: DFS vs interval scan --------------
    subtree_root = branching  # last node of depth 1: its subtree is ~1/b of the tree
    subtree_query = (
        f"MATCH (a:Part {{pid: {subtree_root}}})-[:PART_OF*]->(x) "
        "RETURN count(x) AS n"
    )
    graph.drop_reachability_index("PART_OF")
    scan_dfs_seconds, scan_dfs_rows = timed_query(subtree_query)
    graph.create_reachability_index("PART_OF")
    graph.reachability_index("PART_OF").ensure(graph)
    scan_accel_seconds, scan_accel_rows = timed_query(subtree_query)
    assert scan_accel_rows == scan_dfs_rows
    scan_ratio = scan_dfs_seconds / scan_accel_seconds if scan_accel_seconds else float("inf")
    result.add_row(route="VarLengthExpand (dfs)", comparison="subtree enumeration",
                   best_ms=1000 * scan_dfs_seconds, rows=scan_dfs_rows[0]["n"])
    result.add_row(route="ReachabilityIndex scan", comparison="subtree enumeration",
                   best_ms=1000 * scan_accel_seconds, rows=scan_accel_rows[0]["n"])

    # -- shortestPath: bidirectional BFS vs naive enumeration -----------
    shortest_query = (
        f"MATCH (b:Part {{pid: {leaf_pid}}}) "
        "MATCH p = shortestPath((a:Part {pid: 0})-[:PART_OF*..15]->(b)) "
        "RETURN length(p) AS len"
    )
    naive_seconds, naive_rows = timed_query(shortest_query, naive_paths=True)
    bfs_seconds, bfs_rows = timed_query(shortest_query)
    assert bfs_rows == naive_rows and bfs_rows == [{"len": depth}]
    assert "ShortestPath(" in probe.plan_description(shortest_query)
    shortest_speedup = naive_seconds / bfs_seconds if bfs_seconds else float("inf")
    result.add_row(route="naive enumeration", comparison="shortestPath (bound pair)",
                   best_ms=1000 * naive_seconds, rows=len(naive_rows))
    result.add_row(route="bidirectional BFS", comparison="shortestPath (bound pair)",
                   best_ms=1000 * bfs_seconds, rows=len(bfs_rows))

    assert bound_speedup >= 5.0, f"reachability speedup only {bound_speedup:.1f}x"
    result.note(f"bound-pair reachability speedup (dfs / probe): {bound_speedup:.1f}x")
    result.note(f"subtree enumeration ratio (dfs / scan): {scan_ratio:.2f}x")
    result.note(f"shortestPath speedup (naive / bidirectional): {shortest_speedup:.1f}x")
    result.note(f"tree: {nodes} nodes, branching {branching}, target depth {depth}")
    result.note("every comparison returned identical rows")
    return result


def perf_optimizer(
    seed: int = 0, cases_per_kind: int = 6, repeats: int = 2, report=None
) -> ExperimentResult:
    """P12 — optimizer torture: q-error distribution and plan regret.

    Runs the seeded randomized workload of :mod:`repro.bench.torture`
    over its skewed-distribution graph and reports, per query kind, the
    median/worst multiplicative estimation error (``est~rows`` vs rows
    actually produced) and the median plan regret (planned execution
    time vs the best enumerated baseline: clause-order joins, naive
    paths, eager).  Two satellite comparisons ride along: the equi-depth
    histogram vs the one-third range heuristic on the same skewed range
    queries, and the reachability accelerator's DFS-vs-interval routing
    counters for narrow hop windows.

    Pass a precomputed ``TortureReport`` via ``report`` to score an
    existing run (the benchmark gate times ``run_torture`` separately
    and reuses the report for the assertions here).
    """
    from .torture import run_torture

    result = ExperimentResult(
        "P12", "P12 — optimizer torture: q-error and plan regret"
    )
    if report is None:
        report = run_torture(seed=seed, cases_per_kind=cases_per_kind, repeats=repeats)
    for kind, cases in sorted(report.by_kind().items()):
        errors = sorted(case.q_error for case in cases)
        regrets = sorted(case.regret for case in cases)
        result.add_row(
            kind=kind,
            queries=len(cases),
            median_q_error=round(errors[len(errors) // 2], 2),
            worst_q_error=round(errors[-1], 2),
            median_regret=round(regrets[len(regrets) // 2], 2),
        )
    median = report.median_q_error()
    assert median <= 2.0, f"median q-error {median:.2f} exceeds 2.0"
    assert report.histogram_range_q_error < report.heuristic_range_q_error, (
        "histogram estimates did not beat the one-third heuristic"
    )
    assert report.dfs_walks > 0, "no narrow-hop query routed through DFS"
    result.note(f"median q-error over {len(report.cases)} queries: {median:.2f}")
    result.note(f"median plan regret: {report.median_regret():.2f}")
    result.note(
        "skewed range estimates, median q-error: histogram "
        f"{report.histogram_range_q_error:.2f} vs one-third heuristic "
        f"{report.heuristic_range_q_error:.2f}"
    )
    result.note(
        f"narrow-hop routing: {report.dfs_walks} DFS walks, "
        f"{report.interval_scans} interval scans"
    )
    worst = report.worst_cases(3)
    for case in worst:
        result.note(
            f"worst estimate [{case.kind}]: est~{case.estimated_rows:.1f} vs "
            f"{case.actual_rows} actual (q={case.q_error:.1f}): {case.query}"
        )
    result.note(f"seed {report.seed}, {cases_per_kind} cases/kind, best of {repeats} runs")
    return result


def perf_incremental_triggers(
    nodes: int = 50_000,
    statements: int = 250,
    catalog: int = 10_000,
    gate_triggers: int = 10,
) -> ExperimentResult:
    """P13 — incremental (delta-maintained views) vs batched evaluation.

    The firehose scenario batching cannot save: ``statements`` small
    deltas (``nodes`` created nodes in total) flowing through an
    installed set of ``gate_triggers + 2`` triggers.  Batched evaluation
    re-executes every condition query once *per delta* — for the
    config-gated triggers that is a full scan of the ``catalog``-node
    Config catalog, repeated ``statements`` times per trigger even
    though no delta ever touches the catalog.  The incremental tier
    compiles the same conditions into delta-maintained views: the
    catalog is scanned once at view build, mutations are routed by
    label (Reading creates never reach a Config memory), and the
    invariant gate products are cached between deltas, so the sustained
    cost per delta collapses to dict probes.

    The trigger set mirrors P7's shapes so both tiers are graded on the
    same semantics: ``gate_triggers`` invariant config gates (disabled
    flag — never fire), one Escalate trigger correlating ``NEW`` with
    the catalog's threshold entry (fires for the five highest
    readings), and one cascade trigger reacting to the Spikes it
    produces.  Both routes must produce identical Spike/Audit
    populations; the incremental route must sustain ≥5x the batched
    route's deltas/second.
    """
    result = ExperimentResult(
        "P13", "P13 — incremental trigger views vs batched: firehose delta streams"
    )
    per_statement = nodes // statements
    outcomes: dict[str, tuple[int, int]] = {}
    rates: dict[str, float] = {}
    for route, incremental in (("batched", False), ("incremental", True)):
        graph = PropertyGraph()
        manager = TransactionManager(graph)
        registry = TriggerRegistry()
        engine = TriggerEngine(
            graph,
            registry,
            manager,
            clock=_CLOCK,
            batched_conditions=True,
            incremental_conditions=incremental,
        )
        graph.create_node(["Config"], {"name": "threshold", "cutoff": nodes - 5})
        for index in range(gate_triggers):
            graph.create_node(["Config"], {"name": f"gate{index}", "enabled": False})
        for index in range(catalog):
            graph.create_node(["Config"], {"name": f"entry{index}", "payload": index})
        for index in range(gate_triggers):
            registry.install(
                f"CREATE TRIGGER Gate{index} AFTER CREATE ON 'Reading' FOR EACH NODE "
                f"WHEN MATCH (c:Config {{name: 'gate{index}', enabled: true}}) "
                "BEGIN CREATE (:NeverFired) END"
            )
        registry.install(
            "CREATE TRIGGER Escalate AFTER CREATE ON 'Reading' FOR EACH NODE "
            "WHEN MATCH (c:Config {name: 'threshold'}) WHERE NEW.value > c.cutoff "
            "BEGIN CREATE (:Spike {value: NEW.value}) END"
        )
        registry.install(
            "CREATE TRIGGER CascadeAudit AFTER CREATE ON 'Spike' FOR EACH NODE "
            "BEGIN CREATE (:Audit {value: NEW.value}) END"
        )
        value = 0
        elapsed = 0.0
        for _ in range(statements):
            tx = manager.begin()
            for _ in range(per_statement):
                value += 1
                tx.create_node(["Reading"], {"value": value})
            delta = tx.end_statement()
            started = time.perf_counter()
            engine.run_statement_triggers(tx, delta)
            elapsed += time.perf_counter() - started
            manager.commit(tx)

        spikes = graph.count_nodes_with_label("Spike")
        audits = graph.count_nodes_with_label("Audit")
        outcomes[route] = (spikes, audits)
        rates[route] = statements / elapsed if elapsed else float("inf")
        row = dict(
            route=route,
            statements=statements,
            nodes_per_statement=per_statement,
            triggers=gate_triggers + 2,
            catalog=catalog,
            seconds=round(elapsed, 3),
            deltas_per_sec=round(rates[route], 1),
            spikes=spikes,
            audits=audits,
        )
        if incremental:
            row["incremental_activations"] = engine.incremental_stats[
                "incremental_activations"
            ]
            views = list(engine.views.views())
            row["views"] = len(views)
            row["product_reuses"] = sum(v.stats["product_reuses"] for v in views)
        result.add_row(**row)
    assert outcomes["batched"] == outcomes["incremental"], (
        "incremental evaluation changed trigger results"
    )
    speedup = rates["incremental"] / rates["batched"]
    result.note(
        f"sustained deltas/sec: incremental {rates['incremental']:.0f} vs "
        f"batched {rates['batched']:.0f} ({speedup:.1f}x)"
    )
    result.note("both routes produced identical Spike and Audit populations")
    return result


#: Registry used by the CLI runner and EXPERIMENTS.md generation.
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "T1": table1_feature_matrix,
    "F1": figure1_grammar,
    "F2": figure2_apoc_translation,
    "T2": table2_apoc_metadata,
    "T3": table3_transition_variables,
    "F3": figure3_memgraph_translation,
    "T4": table4_memgraph_variables,
    "F45": figure45_cov2k_schema,
    "S62": section62_trigger_suite,
    "S63": section63_apoc_worked_translations,
    "P1": perf_trigger_overhead,
    "P2": perf_cascading,
    "P3": perf_granularity_action_time,
    "P4": perf_compat_routes,
    "P5": perf_plan_cache,
    "P6": perf_streaming_limit,
    "P7": perf_batched_triggers,
    "P8": perf_physical_operators,
    "P9": perf_durability,
    "P10": perf_concurrency,
    "P11": perf_paths,
    "P12": perf_optimizer,
    "P13": perf_incremental_triggers,
}
