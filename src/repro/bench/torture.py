"""Optimizer torture harness: estimate scoring and plan-regret measurement.

The optimizer's estimates (histograms, composite selectivities, WHERE
corrections) and its plan choices (join order, hash joins, ordered scans,
path routing) are all advisory — a bad one can never change results, only
performance.  That safety also means nothing *fails* when an estimate is
off by 1000x; misestimates silently rot.  This harness turns them into
measurable regressions:

* **q-error** — for every query of a seeded randomized workload, the
  plan's estimated rows are compared against the actually produced rows:
  ``q = max(est/actual, actual/est)`` (with both sides clamped to ≥1, the
  standard convention so empty results do not divide by zero).  A perfect
  estimator scores 1.0 everywhere; the *median* over the workload is the
  gated headline number.
* **plan regret** — every query is also executed under the enumerable
  baseline configurations (clause-order joins, naive path enumeration,
  the eager materialising executor) and the planned execution's best-of
  time is divided by the best alternative's: regret 1.0 means the planner
  picked (at least tied with) the best plan the executor can express,
  2.0 means it left a 2x faster plan on the table.

Both metrics come from one seeded workload over one seeded graph, so runs
are reproducible and regressions attributable.  The graph deliberately
mixes distributions the heuristics get wrong — a quadratically skewed
property where the one-third range heuristic misses by an order of
magnitude (the histogram fixes it), low-cardinality pairs where only the
composite index is selective, and a deep containment tree where narrow
hop windows reward DFS routing over interval scans.

Used by the P12 experiment (:func:`repro.bench.experiments.perf_optimizer`),
the ``benchmarks/test_perf_optimizer.py`` regression gate and ``make
optimizer-demo``.
"""

from __future__ import annotations

import random
import statistics as _statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..cypher.executor import QueryExecutor
from ..cypher.planner import PLAN_CACHE
from ..graph.statistics import CardinalityEstimator
from ..graph.store import PropertyGraph

#: Executor configurations enumerated as plan alternatives.  The planned
#: configuration must beat (or tie) these for its regret to stay at 1.0.
BASELINES: dict[str, dict[str, Any]] = {
    "clause-order": {"join_ordering": False},
    "naive-paths": {"naive_paths": True},
    "eager": {"eager": True},
}


@dataclass
class TortureCase:
    """One workload query's scored outcome."""

    kind: str
    query: str
    estimated_rows: float
    actual_rows: int
    q_error: float
    planned_ms: float
    best_baseline: str
    best_baseline_ms: float
    regret: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "query": self.query,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "q_error": self.q_error,
            "planned_ms": self.planned_ms,
            "best_baseline": self.best_baseline,
            "best_baseline_ms": self.best_baseline_ms,
            "regret": self.regret,
        }


@dataclass
class TortureReport:
    """The scored workload plus the headline aggregates the gate reads."""

    seed: int
    cases: list[TortureCase] = field(default_factory=list)
    #: Median q-error of the one-third heuristic on the same range
    #: queries the histogram answered (the satellite comparison).
    heuristic_range_q_error: float = 0.0
    histogram_range_q_error: float = 0.0
    #: Accelerator routing counters after the narrow-hop segment.
    dfs_walks: int = 0
    interval_scans: int = 0

    def median_q_error(self) -> float:
        return _statistics.median(case.q_error for case in self.cases)

    def max_q_error(self) -> float:
        return max(case.q_error for case in self.cases)

    def median_regret(self) -> float:
        return _statistics.median(case.regret for case in self.cases)

    def worst_cases(self, count: int = 5) -> list[TortureCase]:
        """The most misestimated queries — the bug-report queue."""
        return sorted(self.cases, key=lambda case: -case.q_error)[:count]

    def by_kind(self) -> dict[str, list[TortureCase]]:
        grouped: dict[str, list[TortureCase]] = {}
        for case in self.cases:
            grouped.setdefault(case.kind, []).append(case)
        return grouped

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "median_q_error": self.median_q_error(),
            "max_q_error": self.max_q_error(),
            "median_regret": self.median_regret(),
            "heuristic_range_q_error": self.heuristic_range_q_error,
            "histogram_range_q_error": self.histogram_range_q_error,
            "dfs_walks": self.dfs_walks,
            "interval_scans": self.interval_scans,
            "cases": [case.to_dict() for case in self.cases],
        }


def q_error(estimated: float, actual: float) -> float:
    """The standard multiplicative estimation error, clamped at ≥1 sides."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def build_torture_graph(seed: int = 0) -> PropertyGraph:
    """A seeded graph mixing distributions the naive heuristics get wrong.

    * ``Person`` — ``grp`` uniform over 8 values, ``tier`` uniform over 5,
      ``score`` *quadratically skewed* toward 0 (the one-third heuristic
      overestimates high ranges by ~an order of magnitude), ``uid``
      unique.  Indexes: range on ``score`` and ``uid``, equality via the
      same, composite on ``(grp, tier)``.
    * ``Item`` — ``cat`` uniform over 6 values with an equality index;
      ``Person -BOUGHT-> Item`` edges concentrate on a popular minority
      of items (skewed expansion factors).
    * ``Part`` — a 3-ary containment tree (``CHILD``) with a reachability
      index, deep enough that narrow hop windows reward DFS routing.
    """
    rng = random.Random(seed)
    graph = PropertyGraph(name=f"torture-{seed}")

    people = []
    for i in range(600):
        people.append(
            graph.create_node(
                ["Person"],
                {
                    "uid": i,
                    "grp": rng.randrange(8),
                    "tier": rng.randrange(5),
                    # Quadratic skew: ~0.81 of mass below 100, yet the
                    # value domain runs to 1000 — range heuristics that
                    # ignore the distribution misestimate badly.
                    "score": int(1000 * rng.random() ** 4),
                },
            )
        )
    items = [
        graph.create_node(["Item"], {"iid": i, "cat": rng.randrange(6)})
        for i in range(120)
    ]
    for person in people:
        for _ in range(rng.randrange(4)):
            # 80% of purchases hit the popular first 10 items.
            item = items[rng.randrange(10) if rng.random() < 0.8 else rng.randrange(120)]
            graph.create_relationship("BOUGHT", person.id, item.id)

    parts = [graph.create_node(["Part"], {"pid": 0, "depth": 0})]
    while len(parts) < 1200:
        index = len(parts)
        parent = parts[(index - 1) // 3]
        node = graph.create_node(
            ["Part"], {"pid": index, "depth": parent.properties["depth"] + 1}
        )
        graph.create_relationship("CHILD", parent.id, node.id)
        parts.append(node)

    graph.create_range_index("Person", "score")
    graph.create_range_index("Person", "uid")
    graph.create_property_index("Person", "grp")
    graph.create_composite_index("Person", ("grp", "tier"))
    graph.create_property_index("Item", "cat")
    graph.create_property_index("Part", "pid")
    graph.create_reachability_index("CHILD")
    return graph


def torture_workload(seed: int = 0, cases_per_kind: int = 6) -> list[tuple[str, str]]:
    """A seeded ``(kind, query)`` workload covering every estimator tier."""
    rng = random.Random(seed + 1)
    workload: list[tuple[str, str]] = []
    for _ in range(cases_per_kind):
        # Equality through the property index.
        grp = rng.randrange(8)
        workload.append(
            ("equality", f"MATCH (p:Person) WHERE p.grp = {grp} RETURN p.uid")
        )
        # Skewed range: the histogram tier answers, the heuristic misses.
        low = rng.randrange(100, 900)
        workload.append(
            ("range", f"MATCH (p:Person) WHERE p.score >= {low} RETURN p.uid")
        )
        # Provably empty / inverted range: the clamp tier answers.
        floor = rng.randrange(2000, 3000)
        workload.append(
            ("empty-range", f"MATCH (p:Person) WHERE p.uid > {floor} RETURN p.uid")
        )
        # Composite pair: only the combined selectivity is sharp.
        pair_grp, tier = rng.randrange(8), rng.randrange(5)
        workload.append(
            (
                "composite",
                "MATCH (p:Person) "
                f"WHERE p.grp = {pair_grp} AND p.tier = {tier} RETURN p.uid",
            )
        )
        # Non-sargable residual conjunct: the filtered-rows correction.
        residual_grp = rng.randrange(8)
        workload.append(
            (
                "residual-where",
                f"MATCH (p:Person) WHERE p.grp = {residual_grp} "
                "AND p.tier <> 0 RETURN p.uid",
            )
        )
        # Expansion joined across patterns (shared variable).
        cat = rng.randrange(6)
        workload.append(
            (
                "join",
                f"MATCH (p:Person)-[:BOUGHT]->(i:Item), (q:Person)-[:BOUGHT]->(i) "
                f"WHERE i.cat = {cat} AND p.grp = {rng.randrange(8)} "
                "RETURN count(*) AS n",
            )
        )
        # Narrow hop window over the containment tree (DFS routing).
        start = rng.randrange(1, 40)
        workload.append(
            (
                "narrow-hop",
                f"MATCH (a:Part {{pid: {start}}})-[:CHILD*1..2]->(x) "
                "RETURN count(x) AS n",
            )
        )
    return workload


def _timed_rows(
    run: Callable[[], list], repeats: int
) -> tuple[float, list]:
    timings, rows = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        rows = run()
        timings.append(time.perf_counter() - started)
    return min(timings), rows


def _plan_estimate(graph, query: str) -> Optional[float]:
    """The plan's final row estimate for a single-MATCH workload query.

    The WHERE-corrected ``filtered_rows`` when the planner computed one,
    the raw pattern estimate otherwise; multi-pattern clauses multiply a
    join step's estimate into the running product the way the join-order
    cost model does.  ``None`` when the query has no planned pattern.
    """
    _, plan = PLAN_CACHE.get(query, graph)
    plans = plan.pattern_plans()
    if not plans:
        return None
    estimate = 1.0
    for pattern_plan in plans:
        rows = (
            pattern_plan.filtered_rows
            if pattern_plan.filtered_rows is not None
            else pattern_plan.estimated_rows
        )
        estimate *= max(rows, 1.0)
    return estimate


def run_torture(
    seed: int = 0, cases_per_kind: int = 6, repeats: int = 2
) -> TortureReport:
    """Score the seeded workload: q-error per query, regret vs baselines."""
    graph = build_torture_graph(seed)
    graph.reachability_index("CHILD").ensure(graph)  # build outside timers
    report = TortureReport(seed=seed)
    heuristic_errors: list[float] = []
    histogram_errors: list[float] = []
    estimator = CardinalityEstimator(graph)
    total_people = float(graph.count_nodes_with_label("Person"))

    for kind, query in torture_workload(seed, cases_per_kind):
        estimate = _plan_estimate(graph, query)
        planned_seconds, rows = _timed_rows(
            lambda: QueryExecutor(graph).execute(query).rows, repeats
        )
        # Aggregated queries return one row; score the aggregated count.
        if rows and set(rows[0]) == {"n"}:
            actual = int(rows[0]["n"])
        else:
            actual = len(rows)
        error = q_error(estimate if estimate is not None else 1.0, actual)

        best_name, best_seconds = "", float("inf")
        for name, kwargs in BASELINES.items():
            baseline_seconds, baseline_rows = _timed_rows(
                lambda: QueryExecutor(graph, **kwargs).execute(query).rows, repeats
            )
            assert sorted(map(_row_key, baseline_rows)) == sorted(
                map(_row_key, rows)
            ), f"baseline {name} disagrees on {query!r}"
            if baseline_seconds < best_seconds:
                best_name, best_seconds = name, baseline_seconds
        regret = (
            planned_seconds / best_seconds
            if planned_seconds > best_seconds and best_seconds > 0
            else 1.0
        )
        report.cases.append(
            TortureCase(
                kind=kind,
                query=query,
                estimated_rows=estimate if estimate is not None else 1.0,
                actual_rows=actual,
                q_error=error,
                planned_ms=1000 * planned_seconds,
                best_baseline=best_name,
                best_baseline_ms=1000 * best_seconds,
                regret=regret,
            )
        )
        if kind == "range":
            heuristic_errors.append(q_error(total_people / 3.0, actual))
            histogram_errors.append(error)

    report.heuristic_range_q_error = _statistics.median(heuristic_errors)
    report.histogram_range_q_error = _statistics.median(histogram_errors)
    accelerator = graph.reachability_index("CHILD")
    report.dfs_walks = accelerator.dfs_walks
    report.interval_scans = accelerator.interval_scans
    return report


def _row_key(row: dict) -> tuple:
    """A sortable, graph-entity-insensitive key for row-set comparison."""
    return tuple(sorted((name, repr(value)) for name, value in row.items()))
