"""Transactions over the property graph store.

A :class:`Transaction` applies writes to the shared
:class:`~repro.graph.store.PropertyGraph` immediately (there is a single
writer in this in-process engine), while recording:

* an *undo log* so that :meth:`rollback` restores the exact prior state;
* a *statement delta* (changes since the last statement boundary) and a
  *transaction delta* (all changes since ``begin``), which are what the
  PG-Trigger engine consumes for AFTER/BEFORE-statement and
  ONCOMMIT/DETACHED action times respectively.

Statement boundaries are explicit: the query layer calls
:meth:`end_statement` after executing each top-level statement, which
returns the statement's delta and folds it into the transaction delta.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Iterable, Mapping

from ..graph.delta import GraphDelta
from ..graph.model import Node, Relationship
from ..graph.store import PropertyGraph
from .errors import TransactionStateError
from .operations import (
    UndoLabelAddition,
    UndoLabelRemoval,
    UndoNodeCreation,
    UndoNodeDeletion,
    UndoNodePropertyChange,
    UndoRecord,
    UndoRelationshipCreation,
    UndoRelationshipDeletion,
    UndoRelationshipPropertyChange,
)

_transaction_ids = itertools.count(1)


class TransactionState(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


class Transaction:
    """A unit of work over a :class:`PropertyGraph` with undo and change capture."""

    def __init__(self, graph: PropertyGraph, metadata: Mapping[str, Any] | None = None) -> None:
        self.id = next(_transaction_ids)
        self.graph = graph
        self.state = TransactionState.ACTIVE
        #: Arbitrary metadata (e.g. ``{"source": "trigger"}``); the APOC
        #: emulation uses this to reproduce APOC's cascade-blocking check.
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._undo_log: list[UndoRecord] = []
        self._statement_delta = GraphDelta()
        self._transaction_delta = GraphDelta()

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """True while the transaction accepts writes."""
        return self.state == TransactionState.ACTIVE

    def _require_active(self) -> None:
        if not self.is_active:
            raise TransactionStateError(
                f"transaction {self.id} is {self.state.value}; no further writes allowed"
            )

    # ------------------------------------------------------------------
    # deltas and statement boundaries
    # ------------------------------------------------------------------

    @property
    def statement_delta(self) -> GraphDelta:
        """Changes applied since the last statement boundary."""
        return self._statement_delta

    @property
    def transaction_delta(self) -> GraphDelta:
        """All changes applied since the transaction began.

        Includes both finished statements and the currently open one.
        """
        return self._transaction_delta.merge(self._statement_delta)

    def end_statement(self) -> GraphDelta:
        """Close the current statement and return its delta.

        The returned delta is folded into the transaction delta; a fresh
        empty statement delta is started.
        """
        finished = self._statement_delta
        self._statement_delta = GraphDelta()
        if not finished.is_empty():
            self._transaction_delta = self._transaction_delta.merge(finished)
        return finished

    def write_count(self) -> int:
        """Number of primitive writes applied so far (undo log length)."""
        return len(self._undo_log)

    # ------------------------------------------------------------------
    # reads (pass-through to the store)
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Return the current snapshot of a node."""
        return self.graph.node(node_id)

    def relationship(self, rel_id: int) -> Relationship:
        """Return the current snapshot of a relationship."""
        return self.graph.relationship(rel_id)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> Node:
        """Create a node, recording undo and delta information."""
        self._require_active()
        node = self.graph.create_node(labels=labels, properties=properties)
        self._undo_log.append(UndoNodeCreation(node.id))
        self._statement_delta.record_node_created(node)
        return node

    def create_relationship(
        self,
        rel_type: str,
        start: int,
        end: int,
        properties: Mapping[str, Any] | None = None,
    ) -> Relationship:
        """Create a relationship, recording undo and delta information."""
        self._require_active()
        rel = self.graph.create_relationship(rel_type, start, end, properties=properties)
        self._undo_log.append(UndoRelationshipCreation(rel.id))
        self._statement_delta.record_relationship_created(rel)
        return rel

    def delete_node(self, node_id: int, detach: bool = False) -> Node:
        """Delete a node (optionally detaching its relationships first)."""
        self._require_active()
        if detach:
            for rel in self.graph.relationships_of(node_id):
                self.delete_relationship(rel.id)
        node = self.graph.delete_node(node_id, detach=False)
        self._undo_log.append(UndoNodeDeletion(node))
        self._statement_delta.record_node_deleted(node)
        return node

    def delete_relationship(self, rel_id: int) -> Relationship:
        """Delete a relationship."""
        self._require_active()
        rel = self.graph.delete_relationship(rel_id)
        self._undo_log.append(UndoRelationshipDeletion(rel))
        self._statement_delta.record_relationship_deleted(rel)
        return rel

    def add_label(self, node_id: int, label: str) -> Node:
        """Add a label to a node; returns the updated snapshot."""
        self._require_active()
        old, new = self.graph.add_label(node_id, label)
        if old is not new:
            self._undo_log.append(UndoLabelAddition(node_id, label))
            self._statement_delta.record_label_assigned(new, label)
        return new

    def remove_label(self, node_id: int, label: str) -> Node:
        """Remove a label from a node; returns the updated snapshot."""
        self._require_active()
        old, new = self.graph.remove_label(node_id, label)
        if old is not new:
            self._undo_log.append(UndoLabelRemoval(node_id, label))
            self._statement_delta.record_label_removed(old, label)
        return new

    def set_node_property(self, node_id: int, key: str, value: Any) -> Node:
        """Set (or, with ``None``, remove) a node property."""
        self._require_active()
        if value is None:
            return self.remove_node_property(node_id, key)
        old, new = self.graph.set_node_property(node_id, key, value)
        old_value = old.properties.get(key)
        self._undo_log.append(UndoNodePropertyChange(node_id, key, old_value))
        self._statement_delta.record_property_assigned(new, key, old_value, new.properties[key])
        return new

    def remove_node_property(self, node_id: int, key: str) -> Node:
        """Remove a node property (no-op when absent)."""
        self._require_active()
        old, new = self.graph.remove_node_property(node_id, key)
        if old is not new:
            old_value = old.properties.get(key)
            self._undo_log.append(UndoNodePropertyChange(node_id, key, old_value))
            self._statement_delta.record_property_removed(old, key, old_value)
        return new

    def set_relationship_property(self, rel_id: int, key: str, value: Any) -> Relationship:
        """Set (or, with ``None``, remove) a relationship property."""
        self._require_active()
        if value is None:
            return self.remove_relationship_property(rel_id, key)
        old, new = self.graph.set_relationship_property(rel_id, key, value)
        old_value = old.properties.get(key)
        self._undo_log.append(UndoRelationshipPropertyChange(rel_id, key, old_value))
        self._statement_delta.record_property_assigned(new, key, old_value, new.properties[key])
        return new

    def remove_relationship_property(self, rel_id: int, key: str) -> Relationship:
        """Remove a relationship property (no-op when absent)."""
        self._require_active()
        old, new = self.graph.remove_relationship_property(rel_id, key)
        if old is not new:
            old_value = old.properties.get(key)
            self._undo_log.append(UndoRelationshipPropertyChange(rel_id, key, old_value))
            self._statement_delta.record_property_removed(old, key, old_value)
        return new

    # ------------------------------------------------------------------
    # termination (normally driven by the TransactionManager)
    # ------------------------------------------------------------------

    def _mark_committed(self) -> None:
        self._require_active()
        self.end_statement()
        self.state = TransactionState.COMMITTED

    def _rollback_changes(self) -> None:
        self._require_active()
        for record in reversed(self._undo_log):
            record.undo(self.graph)
        self._undo_log.clear()
        self._statement_delta = GraphDelta()
        self._transaction_delta = GraphDelta()
        self.state = TransactionState.ROLLED_BACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction(id={self.id}, state={self.state.value}, writes={self.write_count()})"
