"""Exception hierarchy for the transaction substrate."""

from __future__ import annotations


class TransactionError(Exception):
    """Base class for all transaction errors."""


class TransactionStateError(TransactionError):
    """Raised when an operation is attempted in the wrong transaction state
    (e.g. writing through an already-committed transaction)."""


class LockTimeoutError(TransactionError):
    """A graph lock could not be acquired within the caller's timeout.

    Raised by the per-named-graph lock manager (:mod:`repro.tx.locks`)
    when a reader or writer waits longer than its timeout for the lock on
    one graph.  Servers surface this as a retryable condition (the engine
    state is untouched — nothing was executed)."""

    def __init__(self, graph: str, mode: str, timeout: float) -> None:
        super().__init__(
            f"could not acquire the {mode} lock on graph {graph!r} "
            f"within {timeout:.3f}s"
        )
        self.graph = graph
        self.mode = mode
        self.timeout = timeout


class TransactionAborted(TransactionError):
    """Raised when a transaction is rolled back by a trigger or constraint.

    The PG-Trigger ONCOMMIT action time may abort the surrounding
    transaction; the engine signals that by raising this exception, and the
    transaction manager undoes every buffered change before re-raising.
    """

    def __init__(self, reason: str = "transaction aborted") -> None:
        super().__init__(reason)
        self.reason = reason
