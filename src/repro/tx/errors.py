"""Exception hierarchy for the transaction substrate."""

from __future__ import annotations


class TransactionError(Exception):
    """Base class for all transaction errors."""


class TransactionStateError(TransactionError):
    """Raised when an operation is attempted in the wrong transaction state
    (e.g. writing through an already-committed transaction)."""


class TransactionAborted(TransactionError):
    """Raised when a transaction is rolled back by a trigger or constraint.

    The PG-Trigger ONCOMMIT action time may abort the surrounding
    transaction; the engine signals that by raising this exception, and the
    transaction manager undoes every buffered change before re-raising.
    """

    def __init__(self, reason: str = "transaction aborted") -> None:
        super().__init__(reason)
        self.reason = reason
