"""Undoable primitive operations.

Each write that a :class:`~repro.tx.transaction.Transaction` applies to the
underlying :class:`~repro.graph.store.PropertyGraph` is paired with an
*undo record*: a small object that knows how to restore the store to the
state it had before the write.  Rollback replays undo records in reverse
order.

Undo records restore items under their original ids, so snapshots held by
other components (e.g. trigger transition variables captured before the
rollback) remain consistent with the restored store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from ..graph.model import Node, Relationship
from ..graph.store import PropertyGraph


class UndoRecord(Protocol):
    """A reversible effect on the property graph."""

    def undo(self, graph: PropertyGraph) -> None:
        """Reverse the effect on ``graph``."""


@dataclass(frozen=True)
class UndoNodeCreation:
    """Reverses a node creation by deleting the node (detaching if needed)."""

    node_id: int

    def undo(self, graph: PropertyGraph) -> None:
        if graph.has_node(self.node_id):
            graph.delete_node(self.node_id, detach=True)


@dataclass(frozen=True)
class UndoNodeDeletion:
    """Reverses a node deletion by recreating the node snapshot."""

    node: Node

    def undo(self, graph: PropertyGraph) -> None:
        graph.create_node(
            labels=self.node.labels,
            properties=dict(self.node.properties),
            node_id=self.node.id,
        )


@dataclass(frozen=True)
class UndoRelationshipCreation:
    """Reverses a relationship creation by deleting it."""

    rel_id: int

    def undo(self, graph: PropertyGraph) -> None:
        if graph.has_relationship(self.rel_id):
            graph.delete_relationship(self.rel_id)


@dataclass(frozen=True)
class UndoRelationshipDeletion:
    """Reverses a relationship deletion by recreating the snapshot."""

    rel: Relationship

    def undo(self, graph: PropertyGraph) -> None:
        graph.create_relationship(
            rel_type=self.rel.type,
            start=self.rel.start,
            end=self.rel.end,
            properties=dict(self.rel.properties),
            rel_id=self.rel.id,
        )


@dataclass(frozen=True)
class UndoLabelAddition:
    """Reverses ``SET n:Label``."""

    node_id: int
    label: str

    def undo(self, graph: PropertyGraph) -> None:
        if graph.has_node(self.node_id):
            graph.remove_label(self.node_id, self.label)


@dataclass(frozen=True)
class UndoLabelRemoval:
    """Reverses ``REMOVE n:Label``."""

    node_id: int
    label: str

    def undo(self, graph: PropertyGraph) -> None:
        if graph.has_node(self.node_id):
            graph.add_label(self.node_id, self.label)


@dataclass(frozen=True)
class UndoNodePropertyChange:
    """Reverses a node property set/removal by restoring the old value.

    ``old_value`` of ``None`` means the property did not exist before, so
    undo removes it.
    """

    node_id: int
    key: str
    old_value: Any

    def undo(self, graph: PropertyGraph) -> None:
        if not graph.has_node(self.node_id):
            return
        if self.old_value is None:
            graph.remove_node_property(self.node_id, self.key)
        else:
            graph.set_node_property(self.node_id, self.key, self.old_value)


@dataclass(frozen=True)
class UndoRelationshipPropertyChange:
    """Reverses a relationship property set/removal."""

    rel_id: int
    key: str
    old_value: Any

    def undo(self, graph: PropertyGraph) -> None:
        if not graph.has_relationship(self.rel_id):
            return
        if self.old_value is None:
            graph.remove_relationship_property(self.rel_id, self.key)
        else:
            graph.set_relationship_property(self.rel_id, self.key, self.old_value)
