"""Per-named-graph locking: single-writer / multi-reader with timeouts.

The concurrency model is deliberately coarse — one read-write lock per
*named graph*, managed by a process-wide :class:`LockManager`:

* **writers** (any statement with side effects, explicit transaction
  blocks, trigger/index DDL, checkpoints) hold the graph's lock
  exclusively; the lock is reentrant per thread, so a trigger cascade or
  a ``session.run`` inside a ``session.transaction()`` block never
  self-deadlocks;
* **readers** (read-only auto-commit queries) share the lock with each
  other and exclude only writers.  A read-only query drains its record
  stream *while holding* the shared lock, so every result it returns is a
  consistent snapshot — no torn reads, regardless of how many writers are
  queued behind it;
* **waiting writers block new readers** (writer preference), so a steady
  stream of cheap reads cannot starve updates indefinitely;
* acquisition accepts a **timeout** and raises the typed
  :class:`~repro.tx.errors.LockTimeoutError` when it expires, leaving the
  engine state untouched.

Multi-graph acquisition (:meth:`LockManager.write_many`) always locks in
sorted graph-name order, which makes deadlock between multi-graph writers
structurally impossible: any two acquisition sequences order their common
names identically.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterable, Iterator

from .errors import LockTimeoutError


class ReadWriteLock:
    """One graph's single-writer / multi-reader lock.

    Write acquisition is reentrant per thread.  A thread that holds the
    write lock may also acquire the read side (it already excludes every
    other thread), and a thread that holds the read side may acquire it
    again even while writers are queued (refusing would deadlock the
    reader against the writer it blocks).  Upgrading a read lock to a
    write lock is refused outright — upgrade cycles are the classic
    reader-writer deadlock.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer: int | None = None  # owning thread ident
        self._write_depth = 0
        self._local = threading.local()  # per-thread reader depth

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> None:
        """Acquire the shared side; raise :class:`LockTimeoutError` on expiry."""
        me = threading.get_ident()
        depth = getattr(self._local, "read_depth", 0)
        with self._cond:
            if self._writer == me or depth > 0:
                # Reentrant (or writer-held) read: admission control would
                # deadlock us against ourselves, so bypass it.
                self._active_readers += 1
                self._local.read_depth = depth + 1
                return
            if not self._wait(
                lambda: self._writer is None and self._waiting_writers == 0,
                timeout,
                "read",
            ):
                raise LockTimeoutError(self.name, "read", timeout or 0.0)
            self._active_readers += 1
            self._local.read_depth = 1

    def release_read(self) -> None:
        with self._cond:
            depth = getattr(self._local, "read_depth", 0)
            if depth <= 0 or self._active_readers <= 0:
                raise RuntimeError(f"read lock on {self.name!r} is not held by this thread")
            self._local.read_depth = depth - 1
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------

    def acquire_write(self, timeout: float | None = None) -> None:
        """Acquire the exclusive side; reentrant for the owning thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if getattr(self._local, "read_depth", 0) > 0:
                raise RuntimeError(
                    f"cannot upgrade a read lock on {self.name!r} to a write lock"
                )
            self._waiting_writers += 1
            try:
                if not self._wait(
                    lambda: self._writer is None and self._active_readers == 0,
                    timeout,
                    "write",
                ):
                    raise LockTimeoutError(self.name, "write", timeout or 0.0)
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(f"write lock on {self.name!r} is not held by this thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _wait(self, predicate, timeout: float | None, mode: str) -> bool:
        """``Condition.wait_for`` with a deadline; True when acquired."""
        del mode
        if timeout is None:
            while not predicate():
                self._cond.wait()
            return True
        deadline = time.monotonic() + timeout
        while not predicate():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._cond.wait(remaining)
        return True

    @contextlib.contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def held_by_me(self) -> bool:
        """True when the calling thread owns the write lock."""
        return self._writer == threading.get_ident()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock({self.name!r}, readers={self._active_readers}, "
            f"writer={self._writer}, waiting_writers={self._waiting_writers})"
        )


class LockManager:
    """The per-named-graph lock table shared by a database's sessions.

    Locks are minted on first use and live for the life of the manager
    (graph names are few; dropping a graph leaves a dormant lock behind,
    which keeps a concurrent ``drop`` + re-``create`` of the same name
    serialised instead of racing on two different lock objects).
    """

    def __init__(self, default_timeout: float | None = None) -> None:
        self.default_timeout = default_timeout
        self._locks: dict[str, ReadWriteLock] = {}
        self._table_lock = threading.Lock()

    def lock(self, name: str) -> ReadWriteLock:
        """The (lazily created) lock for graph ``name``."""
        with self._table_lock:
            lock = self._locks.get(name)
            if lock is None:
                lock = self._locks[name] = ReadWriteLock(name)
            return lock

    @contextlib.contextmanager
    def read(self, name: str, timeout: float | None = None) -> Iterator[None]:
        """Shared (snapshot-read) access to graph ``name``."""
        with self.lock(name).read(self._effective(timeout)):
            yield

    @contextlib.contextmanager
    def write(self, name: str, timeout: float | None = None) -> Iterator[None]:
        """Exclusive (writer) access to graph ``name``."""
        with self.lock(name).write(self._effective(timeout)):
            yield

    @contextlib.contextmanager
    def write_many(self, names: Iterable[str], timeout: float | None = None) -> Iterator[None]:
        """Exclusive access to several graphs at once, deadlock-free.

        Locks are always taken in sorted-name order (and released in
        reverse), so two multi-graph writers can never wait on each other
        in a cycle.
        """
        ordered = sorted(set(names))
        effective = self._effective(timeout)
        acquired: list[ReadWriteLock] = []
        try:
            for name in ordered:
                lock = self.lock(name)
                lock.acquire_write(effective)
                acquired.append(lock)
            yield
        finally:
            for lock in reversed(acquired):
                lock.release_write()

    def _effective(self, timeout: float | None) -> float | None:
        return self.default_timeout if timeout is None else timeout
