"""Transaction substrate: transactions, undo logging, commit hooks."""

from .errors import TransactionAborted, TransactionError, TransactionStateError
from .manager import TransactionHook, TransactionManager
from .transaction import Transaction, TransactionState

__all__ = [
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionHook",
    "TransactionManager",
    "TransactionState",
    "TransactionStateError",
]
