"""Transaction substrate: transactions, undo logging, commit hooks, locks."""

from .errors import LockTimeoutError, TransactionAborted, TransactionError, TransactionStateError
from .locks import LockManager, ReadWriteLock
from .manager import TransactionHook, TransactionManager
from .transaction import Transaction, TransactionState

__all__ = [
    "LockManager",
    "LockTimeoutError",
    "ReadWriteLock",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TransactionHook",
    "TransactionManager",
    "TransactionState",
    "TransactionStateError",
]
