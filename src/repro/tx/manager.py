"""Transaction manager: lifecycle, hooks, and autonomous transactions.

The manager is deliberately simple — this is an in-process, single-writer
engine — but it exposes exactly the hook points that the PG-Trigger action
times of the paper require:

* ``statement`` hooks fire at every statement boundary inside an active
  transaction (used for BEFORE/AFTER statement-level triggers);
* ``before_commit`` hooks fire when :meth:`commit` is called, *before* the
  transaction is finalised; they may still write through the transaction
  and may abort it by raising
  :class:`~repro.tx.errors.TransactionAborted` (ONCOMMIT semantics);
* ``after_commit`` hooks fire after a successful commit and receive the
  committed transaction's delta; any writes they perform happen in a new,
  autonomous transaction (DETACHED semantics).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterator, Mapping

from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from .errors import TransactionAborted, TransactionStateError
from .transaction import Transaction, TransactionState

#: Hook invoked with (transaction, delta) at statement boundaries and commit.
TransactionHook = Callable[[Transaction, GraphDelta], None]


class TransactionManager:
    """Creates, commits and rolls back transactions over one graph."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._statement_hooks: list[TransactionHook] = []
        self._before_commit_hooks: list[TransactionHook] = []
        self._after_commit_hooks: list[TransactionHook] = []
        self._commit_log: TransactionHook | None = None
        self._committed_count = 0
        self._rolled_back_count = 0
        # Outcome counters are read by monitoring code from any thread and
        # bumped by concurrent read-only commits (which share the graph's
        # read lock), so `+=` needs its own guard.
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def add_statement_hook(self, hook: TransactionHook) -> None:
        """Register a hook fired at each statement boundary."""
        self._statement_hooks.append(hook)

    def add_before_commit_hook(self, hook: TransactionHook) -> None:
        """Register a hook fired inside :meth:`commit`, before finalising."""
        self._before_commit_hooks.append(hook)

    def add_after_commit_hook(self, hook: TransactionHook) -> None:
        """Register a hook fired after a successful commit."""
        self._after_commit_hooks.append(hook)

    def remove_hook(self, hook: TransactionHook) -> None:
        """Remove ``hook`` from whichever hook list contains it."""
        for hooks in (self._statement_hooks, self._before_commit_hooks, self._after_commit_hooks):
            if hook in hooks:
                hooks.remove(hook)

    def set_commit_log(self, log: TransactionHook | None) -> None:
        """Install the durability sink called at the commit point.

        The sink runs after every before-commit hook (so it observes the
        complete transaction delta, trigger writes included) and *before*
        the transaction is marked committed.  If it raises, the transaction
        is rolled back and the error propagates — a transaction is never
        reported committed without its WAL record having been written.
        """
        self._commit_log = log

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def committed_count(self) -> int:
        """Number of transactions committed through this manager."""
        return self._committed_count

    @property
    def rolled_back_count(self) -> int:
        """Number of transactions rolled back through this manager."""
        return self._rolled_back_count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin(self, metadata: Mapping[str, Any] | None = None) -> Transaction:
        """Start a new transaction."""
        return Transaction(self.graph, metadata=metadata)

    def end_statement(self, tx: Transaction) -> GraphDelta:
        """Close the current statement of ``tx`` and fire statement hooks."""
        delta = tx.end_statement()
        if not delta.is_empty():
            for hook in list(self._statement_hooks):
                hook(tx, delta)
        return delta

    def commit(self, tx: Transaction) -> GraphDelta:
        """Commit ``tx``, running ONCOMMIT-style and DETACHED-style hooks.

        Returns the transaction's full delta.  If any before-commit hook
        raises :class:`TransactionAborted`, every change of the transaction
        (including those made by hooks) is undone and the exception is
        re-raised.
        """
        if not tx.is_active:
            raise TransactionStateError(
                f"cannot commit transaction {tx.id} in state {tx.state.value}"
            )
        # Close any open statement so that before-commit hooks observe the
        # complete transaction delta.
        tx.end_statement()
        try:
            for hook in list(self._before_commit_hooks):
                hook(tx, tx.transaction_delta)
                tx.end_statement()
        except TransactionAborted:
            self.rollback(tx)
            raise
        delta = tx.transaction_delta
        if self._commit_log is not None and not delta.is_empty():
            try:
                self._commit_log(tx, delta)
            except Exception:
                if tx.is_active:
                    self.rollback(tx)
                raise
        tx._mark_committed()
        with self._counter_lock:
            self._committed_count += 1
        for hook in list(self._after_commit_hooks):
            hook(tx, delta)
        return delta

    def rollback(self, tx: Transaction) -> None:
        """Undo all changes of ``tx`` and mark it rolled back."""
        if tx.state == TransactionState.ROLLED_BACK:
            return
        if not tx.is_active:
            raise TransactionStateError(
                f"cannot roll back transaction {tx.id} in state {tx.state.value}"
            )
        tx._rollback_changes()
        with self._counter_lock:
            self._rolled_back_count += 1

    @contextlib.contextmanager
    def transaction(self, metadata: Mapping[str, Any] | None = None) -> Iterator[Transaction]:
        """Context manager: commit on success, roll back on exception."""
        tx = self.begin(metadata=metadata)
        try:
            yield tx
        except Exception:
            if tx.is_active:
                self.rollback(tx)
            raise
        else:
            if tx.is_active:
                self.commit(tx)
