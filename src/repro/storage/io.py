"""Filesystem abstraction for the durability layer.

Every byte the durability subsystem writes goes through a :class:`StorageIO`
object, so that tests can substitute an instrumented implementation — the
crash-injection harness (``tests/storage/crashpoints.py``) uses this to
model an OS page cache (written-but-unsynced data that a crash loses) and
to freeze the simulated disk at every enumerated crash point.

Two implementations ship with the engine:

* :class:`FileIO` — the real filesystem, with a small append-handle cache
  so per-commit WAL appends do not reopen the log file;
* :class:`MemoryIO` — an in-memory filesystem with identical semantics,
  used by fast tests and as the substrate recovery runs against after a
  simulated crash.

The interface is deliberately low-level (append, fsync, atomic replace,
truncate) because those are exactly the primitives whose interleaving
determines crash safety.
"""

from __future__ import annotations

import os
import threading
from pathlib import PurePosixPath
from typing import BinaryIO


class StorageIO:
    """Interface contract for durability-layer filesystem access."""

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def file_size(self, path: str) -> int:
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError

    def read_bytes(self, path: str) -> bytes:
        raise NotImplementedError

    def write_bytes(self, path: str, data: bytes) -> None:
        """Create or overwrite ``path`` with ``data`` (no durability implied)."""
        raise NotImplementedError

    def append_bytes(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path``, creating it if missing (no fsync)."""
        raise NotImplementedError

    def fsync(self, path: str) -> None:
        """Force ``path``'s written data to stable storage."""
        raise NotImplementedError

    def replace(self, source: str, destination: str) -> None:
        """Atomically rename ``source`` over ``destination``."""
        raise NotImplementedError

    def truncate(self, path: str, size: int) -> None:
        """Cut ``path`` down to ``size`` bytes (no durability implied)."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        """Delete ``path`` if it exists."""
        raise NotImplementedError

    def release(self, path: str) -> None:
        """Release any cached handle for ``path`` without touching the file.

        A no-op for implementations that cache nothing.  A ``StorageIO``
        shared between several durable stores must support releasing one
        store's handles on close without invalidating every other store's
        (``close`` would)."""

    def close(self) -> None:
        """Release any cached handles (idempotent)."""


class FileIO(StorageIO):
    """Real-filesystem implementation backed by :mod:`os`.

    Append handles are cached per path: the WAL appends one framed record
    per commit, and reopening the log for every commit would dominate the
    group-commit benchmark.  Cached handles are flushed to the OS on every
    append (so concurrent readers and :meth:`read_bytes` observe the
    bytes), and invalidated by any operation that replaces, truncates or
    removes the file.  The handle cache is guarded by a lock — one FileIO
    may be shared by every graph of a database, with commits arriving from
    different server threads.
    """

    def __init__(self) -> None:
        self._append_handles: dict[str, BinaryIO] = {}
        self._lock = threading.RLock()

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def file_size(self, path: str) -> int:
        return os.path.getsize(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def read_bytes(self, path: str) -> bytes:
        with self._lock:
            handle = self._append_handles.get(path)
            if handle is not None:
                handle.flush()
        with open(path, "rb") as reader:
            return reader.read()

    def write_bytes(self, path: str, data: bytes) -> None:
        self.release(path)
        with open(path, "wb") as writer:
            writer.write(data)

    def append_bytes(self, path: str, data: bytes) -> None:
        with self._lock:
            handle = self._append_handles.get(path)
            if handle is None:
                handle = open(path, "ab")
                self._append_handles[path] = handle
            handle.write(data)
            handle.flush()

    def fsync(self, path: str) -> None:
        with self._lock:
            handle = self._append_handles.get(path)
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
                return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, source: str, destination: str) -> None:
        self.release(source)
        self.release(destination)
        os.replace(source, destination)

    def truncate(self, path: str, size: int) -> None:
        self.release(path)
        os.truncate(path, size)

    def remove(self, path: str) -> None:
        self.release(path)
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def release(self, path: str) -> None:
        with self._lock:
            handle = self._append_handles.pop(path, None)
        if handle is not None:
            handle.close()

    def cached_handle_count(self) -> int:
        """Number of live append handles (fd-leak checks in tests)."""
        with self._lock:
            return len(self._append_handles)

    def close(self) -> None:
        with self._lock:
            handles = list(self._append_handles.values())
            self._append_handles.clear()
        for handle in handles:
            handle.close()


class MemoryIO(StorageIO):
    """In-memory filesystem with the same observable semantics as FileIO.

    Paths are treated as POSIX-style strings; directories exist implicitly.
    ``fsync`` is a no-op for durability (everything written is already
    "stable") but is still a distinct call so instrumenting subclasses can
    observe it.  The crash harness seeds a fresh ``MemoryIO`` with the
    byte images a simulated crash left behind and runs recovery on top.
    """

    def __init__(self, files: dict[str, bytes] | None = None) -> None:
        self.files: dict[str, bytearray] = {
            path: bytearray(data) for path, data in (files or {}).items()
        }
        self.directories: set[str] = set()

    def exists(self, path: str) -> bool:
        if path in self.files or path in self.directories:
            return True
        prefix = path.rstrip("/") + "/"
        return any(candidate.startswith(prefix) for candidate in self.files)

    def file_size(self, path: str) -> int:
        return len(self._require(path))

    def makedirs(self, path: str) -> None:
        pure = PurePosixPath(path)
        self.directories.add(str(pure))
        self.directories.update(str(parent) for parent in pure.parents)

    def listdir(self, path: str) -> list[str]:
        prefix = path.rstrip("/") + "/"
        names = {
            PurePosixPath(candidate[len(prefix):]).parts[0]
            for candidate in list(self.files) + list(self.directories)
            if candidate.startswith(prefix)
        }
        return sorted(names)

    def read_bytes(self, path: str) -> bytes:
        return bytes(self._require(path))

    def write_bytes(self, path: str, data: bytes) -> None:
        self.files[path] = bytearray(data)

    def append_bytes(self, path: str, data: bytes) -> None:
        self.files.setdefault(path, bytearray()).extend(data)

    def fsync(self, path: str) -> None:
        self._require(path)

    def replace(self, source: str, destination: str) -> None:
        self.files[destination] = self._require(source)
        del self.files[source]

    def truncate(self, path: str, size: int) -> None:
        self.files[path] = self._require(path)[:size]

    def remove(self, path: str) -> None:
        self.files.pop(path, None)

    def close(self) -> None:
        pass

    def _require(self, path: str) -> bytearray:
        if path not in self.files:
            raise FileNotFoundError(path)
        return self.files[path]
