"""Durability subsystem: write-ahead log, snapshots, crash recovery.

Public surface:

* :class:`DurableStore` — WAL + snapshot persistence for one graph
  (recovery-on-open, checkpointing, group-commit batching);
* :class:`WriteAheadLog` / :func:`scan_wal` — the framed, checksummed log;
* :func:`encode_delta` / :func:`apply_operations` — delta ↔ WAL codec;
* :class:`FileIO` / :class:`MemoryIO` — the injectable filesystem layer
  the crash-injection test harness builds on;
* :class:`TriggerState` / :class:`RecoveredState` — recovery results.

Sessions normally do not touch this package directly: constructing a
``GraphSession(path=...)`` (or a ``GraphDatabase(path=...)``) wires a
:class:`DurableStore` through the transaction manager automatically.
"""

from .codec import DeltaCodecError, apply_operations, delta_round_trips, encode_delta
from .io import FileIO, MemoryIO, StorageIO
from .store import (
    DurableStore,
    RecoveredState,
    RecoveryError,
    TriggerState,
)
from .wal import WalScan, WriteAheadLog, encode_record, scan_wal

__all__ = [
    "DeltaCodecError",
    "DurableStore",
    "FileIO",
    "MemoryIO",
    "RecoveredState",
    "RecoveryError",
    "StorageIO",
    "TriggerState",
    "WalScan",
    "WriteAheadLog",
    "apply_operations",
    "delta_round_trips",
    "encode_delta",
    "encode_record",
    "scan_wal",
]
