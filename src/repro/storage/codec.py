"""Encoding committed :class:`GraphDelta` changes as WAL operations.

A committed transaction's delta becomes one WAL record whose ``ops`` array
lists every primitive change in exact occurrence order (see
:meth:`GraphDelta.operations` — the unified journal exists precisely so a
node that is created, labelled and deleted inside one transaction replays
correctly).  Recovery applies the operations straight to the store; index
maintenance and statistics counters rebuild as a side effect of the store
mutations, so no separate index log is needed for data changes.

The codec only records what replay needs: creation snapshots carry labels
and properties, deletions carry just the id (the transaction layer already
deleted attached relationships first, and records those deletions ahead of
the node's).  Old values are *not* persisted — the WAL is redo-only, which
is sufficient because only committed deltas are ever logged.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..graph import delta as _delta
from ..graph.delta import GraphDelta
from ..graph.model import Node, Relationship
from ..graph.serialization import decode_value, encode_value
from ..graph.store import PropertyGraph


class DeltaCodecError(Exception):
    """An operation payload could not be encoded or replayed."""


def _encode_properties(properties: Mapping[str, Any]) -> dict[str, Any]:
    return {key: encode_value(value) for key, value in properties.items()}


def encode_delta(delta: GraphDelta) -> list[dict[str, Any]]:
    """Encode a delta's operations as JSON-safe dictionaries."""
    ops: list[dict[str, Any]] = []
    for kind, record in delta.operations():
        if kind == _delta.OP_CREATE_NODE:
            ops.append(
                {
                    "op": kind,
                    "id": record.id,
                    "labels": sorted(record.labels),
                    "properties": _encode_properties(record.properties),
                }
            )
        elif kind == _delta.OP_DELETE_NODE:
            ops.append({"op": kind, "id": record.id})
        elif kind == _delta.OP_CREATE_RELATIONSHIP:
            ops.append(
                {
                    "op": kind,
                    "id": record.id,
                    "type": record.type,
                    "start": record.start,
                    "end": record.end,
                    "properties": _encode_properties(record.properties),
                }
            )
        elif kind == _delta.OP_DELETE_RELATIONSHIP:
            ops.append({"op": kind, "id": record.id})
        elif kind in (_delta.OP_ASSIGN_LABEL, _delta.OP_REMOVE_LABEL):
            ops.append({"op": kind, "id": record.node.id, "label": record.label})
        elif kind == _delta.OP_ASSIGN_PROPERTY:
            ops.append(
                {
                    "op": kind,
                    "item": "node" if record.is_node else "relationship",
                    "id": record.item.id,
                    "key": record.key,
                    "value": encode_value(record.new),
                }
            )
        elif kind == _delta.OP_REMOVE_PROPERTY:
            ops.append(
                {
                    "op": kind,
                    "item": "node" if record.is_node else "relationship",
                    "id": record.item.id,
                    "key": record.key,
                }
            )
        else:  # pragma: no cover - guards future delta kinds
            raise DeltaCodecError(f"unknown delta operation kind: {kind!r}")
    return ops


def apply_operations(graph: PropertyGraph, ops: Iterable[Mapping[str, Any]]) -> None:
    """Replay encoded operations onto ``graph`` in order.

    Label additions/removals and property removals use the store's no-op
    semantics (adding a present label, removing an absent property leave
    the graph untouched), so replaying a hand-built delta that contains
    such records is harmless — the same behaviour the transaction layer
    pins by never recording them in the first place.
    """
    for op in ops:
        kind = op["op"]
        try:
            if kind == _delta.OP_CREATE_NODE:
                graph.create_node(
                    labels=op.get("labels", ()),
                    properties={
                        key: decode_value(value)
                        for key, value in op.get("properties", {}).items()
                    },
                    node_id=op["id"],
                )
            elif kind == _delta.OP_DELETE_NODE:
                graph.delete_node(op["id"], detach=False)
            elif kind == _delta.OP_CREATE_RELATIONSHIP:
                graph.create_relationship(
                    rel_type=op["type"],
                    start=op["start"],
                    end=op["end"],
                    properties={
                        key: decode_value(value)
                        for key, value in op.get("properties", {}).items()
                    },
                    rel_id=op["id"],
                )
            elif kind == _delta.OP_DELETE_RELATIONSHIP:
                graph.delete_relationship(op["id"])
            elif kind == _delta.OP_ASSIGN_LABEL:
                graph.add_label(op["id"], op["label"])
            elif kind == _delta.OP_REMOVE_LABEL:
                graph.remove_label(op["id"], op["label"])
            elif kind == _delta.OP_ASSIGN_PROPERTY:
                value = decode_value(op["value"])
                if op["item"] == "node":
                    graph.set_node_property(op["id"], op["key"], value)
                else:
                    graph.set_relationship_property(op["id"], op["key"], value)
            elif kind == _delta.OP_REMOVE_PROPERTY:
                if op["item"] == "node":
                    graph.remove_node_property(op["id"], op["key"])
                else:
                    graph.remove_relationship_property(op["id"], op["key"])
            else:
                raise DeltaCodecError(f"unknown operation kind in WAL record: {kind!r}")
        except DeltaCodecError:
            raise
        except Exception as exc:
            raise DeltaCodecError(f"failed to replay {kind} operation {op!r}: {exc}") from exc


def delta_round_trips(delta: GraphDelta, base: PropertyGraph) -> bool:
    """True when replaying ``delta``'s encoding on ``base`` leaves it equal
    to applying the delta's operations natively — the invariant the
    round-trip regression tests assert per change kind.
    """
    from ..graph.serialization import fingerprint

    replayed = base.copy()
    apply_operations(replayed, encode_delta(delta))
    native = base.copy()
    for kind, record in delta.operations():
        _apply_native(native, kind, record)
    return fingerprint(replayed) == fingerprint(native)


def _apply_native(graph: PropertyGraph, kind: str, record: Any) -> None:
    """Apply one in-memory delta record directly (reference semantics)."""
    if kind == _delta.OP_CREATE_NODE:
        graph.create_node(record.labels, dict(record.properties), node_id=record.id)
    elif kind == _delta.OP_DELETE_NODE:
        graph.delete_node(record.id, detach=False)
    elif kind == _delta.OP_CREATE_RELATIONSHIP:
        graph.create_relationship(
            record.type, record.start, record.end, dict(record.properties), rel_id=record.id
        )
    elif kind == _delta.OP_DELETE_RELATIONSHIP:
        graph.delete_relationship(record.id)
    elif kind == _delta.OP_ASSIGN_LABEL:
        graph.add_label(record.node.id, record.label)
    elif kind == _delta.OP_REMOVE_LABEL:
        graph.remove_label(record.node.id, record.label)
    elif kind == _delta.OP_ASSIGN_PROPERTY:
        if isinstance(record.item, Node):
            graph.set_node_property(record.item.id, record.key, record.new)
        elif isinstance(record.item, Relationship):
            graph.set_relationship_property(record.item.id, record.key, record.new)
    elif kind == _delta.OP_REMOVE_PROPERTY:
        if isinstance(record.item, Node):
            graph.remove_node_property(record.item.id, record.key)
        elif isinstance(record.item, Relationship):
            graph.remove_relationship_property(record.item.id, record.key)
