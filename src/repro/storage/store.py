"""The durability engine: WAL + snapshot persistence and recovery-on-open.

Directory layout (one directory per durable graph)::

    <path>/wal.log            append-only log, one record per committed tx
                              (plus trigger- and index-DDL records)
    <path>/snapshot.json      latest checkpoint (atomic-rename install)
    <path>/snapshot.json.tmp  in-flight checkpoint (removed on open)

Recovery (:meth:`DurableStore.open`) loads the latest valid snapshot,
truncates any torn tail the WAL carries, then replays every WAL record
whose LSN is newer than the snapshot.  Replay drives the ordinary store
mutation API, so label/property/range/relationship indexes and the O(1)
statistics counters rebuild deterministically as a side effect, and the
recovered :class:`PropertyGraph` carries a fresh ``plan_token`` — every
cached query plan keyed on the dead graph is thereby unreachable.

Record types:

* ``tx``      — a committed transaction's delta (``ops`` array, see codec)
* ``trigger`` — trigger DDL: install/drop/stop/start (+ CREATE TRIGGER text)
* ``index``   — index DDL: create/drop of property/range/relationship indexes
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..graph.serialization import graph_from_dict, graph_to_dict
from ..graph.store import PropertyGraph
from .codec import apply_operations, encode_delta
from .io import FileIO, StorageIO
from .wal import WriteAheadLog

SNAPSHOT_FORMAT_VERSION = 1
WAL_NAME = "wal.log"
SNAPSHOT_NAME = "snapshot.json"
SNAPSHOT_TMP_NAME = "snapshot.json.tmp"

#: Index-DDL kinds, mapping to the PropertyGraph create_*/drop_* methods.
_INDEX_METHODS = {
    ("create", "property"): PropertyGraph.create_property_index,
    ("drop", "property"): PropertyGraph.drop_property_index,
    ("create", "range"): PropertyGraph.create_range_index,
    ("drop", "range"): PropertyGraph.drop_range_index,
    ("create", "relationship"): PropertyGraph.create_relationship_property_index,
    ("drop", "relationship"): PropertyGraph.drop_relationship_property_index,
    # Composite-index records carry the property list in the prop field.
    ("create", "composite"): PropertyGraph.create_composite_index,
    ("drop", "composite"): PropertyGraph.drop_composite_index,
    # Reachability accelerators are keyed by relationship type alone; the
    # record's prop round-trips as JSON null and is dropped here.
    ("create", "reachability"): (
        lambda graph, label, prop: graph.create_reachability_index(label)
    ),
    ("drop", "reachability"): (
        lambda graph, label, prop: graph.drop_reachability_index(label)
    ),
}


class RecoveryError(Exception):
    """The persisted state could not be restored (corrupt snapshot/WAL)."""


@dataclass(frozen=True)
class TriggerState:
    """Persisted form of one installed trigger."""

    name: str
    source: str
    enabled: bool = True


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.open` reconstructed."""

    graph: PropertyGraph
    triggers: list[TriggerState] = field(default_factory=list)
    last_lsn: int = 0
    replayed_records: int = 0
    truncated_bytes: int = 0
    snapshot_loaded: bool = False


class DurableStore:
    """Write-ahead log + snapshot persistence for one property graph."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        io: StorageIO | None = None,
        group_commit_size: int = 1,
    ) -> None:
        self.directory = os.fspath(path)
        # A store that minted its own IO may close it outright; a shared IO
        # (one FileIO serving every graph of a database) must only have
        # *this* store's handles released, or closing one graph would tear
        # down every sibling's cached WAL handle.
        self._owns_io = io is None
        self.io = io or FileIO()
        self.wal_path = os.path.join(self.directory, WAL_NAME)
        self.snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        self.snapshot_tmp_path = os.path.join(self.directory, SNAPSHOT_TMP_NAME)
        self.wal = WriteAheadLog(self.io, self.wal_path, group_commit_size=group_commit_size)
        self._next_lsn = 1
        self._records_since_checkpoint = 0
        # LSNs must stay strictly monotonic even when commit records (graph
        # write lock held) interleave with DDL from another thread.
        self._lsn_lock = threading.Lock()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def open(self, graph_name: str | None = None) -> RecoveredState:
        """Recover the persisted state (or initialise an empty store)."""
        self.io.makedirs(self.directory)
        if self.io.exists(self.snapshot_tmp_path):
            # A checkpoint died before its atomic rename; the half-written
            # temporary is garbage (snapshot.json still holds the previous
            # complete checkpoint).
            self.io.remove(self.snapshot_tmp_path)
        state = self._load_snapshot(graph_name)
        scan = self.wal.truncate_torn_tail()
        state.truncated_bytes = scan.torn_bytes
        for record in scan.records:
            lsn = int(record.get("lsn", 0))
            if lsn <= state.last_lsn:
                continue  # checkpoint superseded this record (crash before WAL reset)
            self._replay(record, state)
            state.last_lsn = lsn
            state.replayed_records += 1
        self._next_lsn = state.last_lsn + 1
        self._records_since_checkpoint = state.replayed_records
        return state

    def _load_snapshot(self, graph_name: str | None) -> RecoveredState:
        if not self.io.exists(self.snapshot_path):
            return RecoveredState(graph=PropertyGraph(name=graph_name or "graph"))
        raw = self.io.read_bytes(self.snapshot_path)
        try:
            envelope = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RecoveryError(f"snapshot {self.snapshot_path} is not valid JSON: {exc}") from exc
        version = envelope.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise RecoveryError(f"unsupported snapshot format version: {version}")
        payload = envelope.get("snapshot")
        if not isinstance(payload, dict) or envelope.get("crc") != _payload_crc(payload):
            raise RecoveryError(f"snapshot {self.snapshot_path} failed its checksum")
        graph = graph_from_dict(payload["graph"])
        if graph_name is not None:
            graph.name = graph_name
        triggers = [
            TriggerState(name=t["name"], source=t["source"], enabled=bool(t.get("enabled", True)))
            for t in payload.get("triggers", ())
        ]
        return RecoveredState(
            graph=graph,
            triggers=triggers,
            last_lsn=int(payload.get("lsn", 0)),
            snapshot_loaded=True,
        )

    def _replay(self, record: Mapping[str, Any], state: RecoveredState) -> None:
        kind = record.get("type")
        if kind == "tx":
            apply_operations(state.graph, record.get("ops", ()))
        elif kind == "trigger":
            self._replay_trigger(record, state)
        elif kind == "index":
            method = _INDEX_METHODS.get((record.get("action"), record.get("kind")))
            if method is None:
                raise RecoveryError(f"unknown index DDL record: {record!r}")
            method(state.graph, record["label"], record["prop"])
        else:
            raise RecoveryError(f"unknown WAL record type: {kind!r}")

    @staticmethod
    def _replay_trigger(record: Mapping[str, Any], state: RecoveredState) -> None:
        action, name = record.get("action"), record.get("name")
        if action == "install":
            state.triggers.append(TriggerState(name=name, source=record["source"]))
        elif action == "drop":
            state.triggers = [t for t in state.triggers if t.name != name]
        elif action in ("stop", "start"):
            state.triggers = [
                TriggerState(t.name, t.source, enabled=(action == "start"))
                if t.name == name
                else t
                for t in state.triggers
            ]
        else:
            raise RecoveryError(f"unknown trigger DDL record: {record!r}")

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently logged record."""
        return self._next_lsn - 1

    @property
    def records_since_checkpoint(self) -> int:
        """WAL records written (or replayed) since the last checkpoint."""
        return self._records_since_checkpoint

    def log_transaction(self, delta) -> int:
        """Append a committed transaction's delta; returns its LSN.

        Raises whatever the I/O layer raises — the transaction manager
        treats a failure here as a commit failure and rolls back, so a
        transaction is never reported committed without its WAL record
        being written (and fsynced, under the default policy).
        """
        lsn = self._allocate_lsn()
        self.wal.append({"type": "tx", "lsn": lsn, "ops": encode_delta(delta)})
        return lsn

    def log_trigger(self, action: str, name: str, source: str | None = None) -> int:
        """Append a trigger-DDL record (always fsynced — DDL is rare)."""
        payload: dict[str, Any] = {"type": "trigger", "lsn": self._allocate_lsn(), "action": action, "name": name}
        if source is not None:
            payload["source"] = source
        self.wal.append(payload, sync=True)
        return payload["lsn"]

    def log_index(
        self, action: str, kind: str, label: str, prop: str | list[str] | None
    ) -> int:
        """Append an index-DDL record (always fsynced)."""
        lsn = self._allocate_lsn()
        self.wal.append(
            {"type": "index", "lsn": lsn, "action": action, "kind": kind, "label": label, "prop": prop},
            sync=True,
        )
        return lsn

    def _allocate_lsn(self) -> int:
        with self._lsn_lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            self._records_since_checkpoint += 1
            return lsn

    # ------------------------------------------------------------------
    # checkpointing and lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self, graph: PropertyGraph, triggers: Iterable[TriggerState] = ()) -> None:
        """Write a snapshot covering everything logged so far, then empty the WAL.

        The snapshot is written to a temporary file, fsynced and atomically
        renamed over the previous one, so a crash at any point leaves
        either the old or the new snapshot fully intact.  The WAL is only
        truncated *after* the rename; a crash in between is harmless
        because replay skips records whose LSN the snapshot already covers.
        """
        payload = {
            "lsn": self.last_lsn,
            "graph": graph_to_dict(graph),
            "triggers": [
                {"name": t.name, "source": t.source, "enabled": t.enabled} for t in triggers
            ],
        }
        envelope = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "crc": _payload_crc(payload),
            "snapshot": payload,
        }
        data = json.dumps(envelope, separators=(",", ":"), sort_keys=True).encode("utf-8")
        self.io.write_bytes(self.snapshot_tmp_path, data)
        self.io.fsync(self.snapshot_tmp_path)
        self.io.replace(self.snapshot_tmp_path, self.snapshot_path)
        self.wal.reset()
        self._records_since_checkpoint = 0

    def sync(self) -> None:
        """Flush any group-commit-deferred WAL appends to stable storage."""
        self.wal.sync()

    def close(self) -> None:
        """Flush pending appends and release file handles.

        Group-commit-deferred WAL records are fsynced *before* any handle
        is dropped, so a close can never silently discard an acknowledged
        commit.  A store that owns its IO closes it; a store on a shared
        IO releases only its own files' cached handles.
        """
        self.sync()
        if self._owns_io:
            self.io.close()
        else:
            for path in (self.wal_path, self.snapshot_path, self.snapshot_tmp_path):
                self.io.release(path)


def _payload_crc(payload: Mapping[str, Any]) -> int:
    """Checksum of a snapshot payload's canonical JSON encoding."""
    return zlib.crc32(json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8"))
