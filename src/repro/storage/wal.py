"""Append-only write-ahead log with framed, checksummed records.

Record frame layout (little-endian)::

    +----------+----------------+---------------+------------------+
    | magic 4B | payload len 4B | CRC32 4B      | payload (JSON)   |
    +----------+----------------+---------------+------------------+

The payload is a UTF-8 JSON object; the CRC covers the payload bytes.  A
reader scans records sequentially and stops at the first frame that is
incomplete, carries a wrong magic, fails its checksum or does not parse —
everything from that offset on is a *torn tail* left by a crash mid-append
and is truncated on recovery (:meth:`WriteAheadLog.truncate_torn_tail`).

Durability policy: ``append`` fsyncs the log every ``group_commit_size``
appends (1 = fsync-on-commit, the default).  Callers that need a record on
stable storage immediately (trigger/index DDL, checkpoints) pass
``sync=True``.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from .io import StorageIO

#: Per-record frame magic; doubles as a corruption tripwire when a scan
#: lands off a record boundary.
RECORD_MAGIC = b"PGW1"

_FRAME_HEADER = struct.Struct("<4sII")


class WalCorruptionError(Exception):
    """A WAL frame failed validation somewhere other than the torn tail."""


@dataclass
class WalScan:
    """Outcome of scanning a WAL file from the start."""

    records: list[dict[str, Any]] = field(default_factory=list)
    valid_size: int = 0
    total_size: int = 0

    @property
    def torn_bytes(self) -> int:
        """Bytes past the last valid record (0 when the log ends cleanly)."""
        return self.total_size - self.valid_size


def encode_record(payload: Mapping[str, Any]) -> bytes:
    """Frame ``payload`` as one WAL record."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _FRAME_HEADER.pack(RECORD_MAGIC, len(data), zlib.crc32(data)) + data


def scan_wal(io: StorageIO, path: str) -> WalScan:
    """Parse every valid record of ``path``, stopping at the torn tail."""
    if not io.exists(path):
        return WalScan()
    data = io.read_bytes(path)
    scan = WalScan(total_size=len(data))
    offset = 0
    while offset + _FRAME_HEADER.size <= len(data):
        magic, length, checksum = _FRAME_HEADER.unpack_from(data, offset)
        if magic != RECORD_MAGIC:
            break
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        scan.records.append(record)
        offset = end
        scan.valid_size = offset
    return scan


class WriteAheadLog:
    """One append-only log file with group-commit fsync batching."""

    def __init__(self, io: StorageIO, path: str, group_commit_size: int = 1) -> None:
        if group_commit_size < 1:
            raise ValueError("group_commit_size must be >= 1")
        self.io = io
        self.path = path
        self.group_commit_size = group_commit_size
        self._unsynced_appends = 0
        # The group-commit buffer counter and the append/fsync interleaving
        # are process-global state per log file; serialise them so two
        # threads can never interleave their frames or double-count an
        # fsync window.  (Commits on one graph already hold the graph's
        # write lock, but DDL records and explicit `flush()` calls may
        # arrive from other threads.)
        self._lock = threading.RLock()

    @property
    def unsynced_appends(self) -> int:
        """Appends written since the last fsync (lost if the process dies)."""
        return self._unsynced_appends

    def append(self, payload: Mapping[str, Any], sync: bool | None = None) -> None:
        """Append one record; fsync per the group-commit policy.

        ``sync=True`` forces an immediate fsync, ``sync=False`` suppresses
        it (the caller takes responsibility), ``None`` applies the
        ``group_commit_size`` batching knob.
        """
        with self._lock:
            self.io.append_bytes(self.path, encode_record(payload))
            self._unsynced_appends += 1
            if sync is True or (
                sync is None and self._unsynced_appends >= self.group_commit_size
            ):
                self.sync()

    def sync(self) -> None:
        """Flush pending appends to stable storage."""
        with self._lock:
            if self._unsynced_appends and self.io.exists(self.path):
                self.io.fsync(self.path)
            self._unsynced_appends = 0

    def scan(self) -> WalScan:
        """Read all valid records currently in the log."""
        return scan_wal(self.io, self.path)

    def truncate_torn_tail(self) -> WalScan:
        """Drop any torn tail left by a crash; returns the resulting scan.

        The truncation is fsynced so a crash *during recovery* cannot
        resurrect the torn bytes.
        """
        scan = self.scan()
        if scan.torn_bytes:
            self.io.truncate(self.path, scan.valid_size)
            self.io.fsync(self.path)
        return scan

    def reset(self) -> None:
        """Empty the log (after a successful checkpoint) and fsync."""
        with self._lock:
            if self.io.exists(self.path):
                self.io.truncate(self.path, 0)
                self.io.fsync(self.path)
            self._unsynced_appends = 0
