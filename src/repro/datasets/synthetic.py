"""Random property graphs for scaling benchmarks.

The paper's evaluation is qualitative; the added performance experiments
need graphs whose size and shape can be swept.  Two generators are
provided: a uniform random graph (Erdős–Rényi-like over labelled nodes) and
a scale-free-ish preferential-attachment graph, both deterministic under a
seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..graph.store import PropertyGraph

DEFAULT_LABELS = ("Entity", "Resource", "Agent", "Observation")
DEFAULT_REL_TYPES = ("Links", "Uses", "Observes")


def random_graph(
    nodes: int = 1000,
    relationships: int = 3000,
    labels: Sequence[str] = DEFAULT_LABELS,
    rel_types: Sequence[str] = DEFAULT_REL_TYPES,
    property_count: int = 3,
    seed: int = 23,
    name: str = "random",
) -> PropertyGraph:
    """Uniform random property graph with ``nodes`` nodes and ``relationships`` edges."""
    rng = random.Random(seed)
    graph = PropertyGraph(name)
    node_ids = []
    for index in range(nodes):
        label = labels[index % len(labels)]
        properties = {"key": f"{label}-{index}", "value": rng.randint(0, 1000)}
        for extra in range(property_count - 2):
            properties[f"p{extra}"] = rng.random()
        node_ids.append(graph.create_node([label], properties).id)
    for _ in range(relationships):
        start = rng.choice(node_ids)
        end = rng.choice(node_ids)
        graph.create_relationship(
            rng.choice(list(rel_types)), start, end, {"weight": rng.random()}
        )
    return graph


def preferential_attachment_graph(
    nodes: int = 1000,
    edges_per_node: int = 2,
    labels: Sequence[str] = DEFAULT_LABELS,
    rel_type: str = "Links",
    seed: int = 29,
    name: str = "preferential",
) -> PropertyGraph:
    """Scale-free-ish graph grown by preferential attachment.

    High-degree hubs stress the pattern matcher and the trigger engine's
    set-granularity bindings more than uniform graphs do.
    """
    rng = random.Random(seed)
    graph = PropertyGraph(name)
    targets: list[int] = []
    node_ids: list[int] = []
    for index in range(nodes):
        label = labels[index % len(labels)]
        node = graph.create_node([label], {"key": f"{label}-{index}"})
        node_ids.append(node.id)
        if not targets:
            targets.append(node.id)
            continue
        for _ in range(min(edges_per_node, len(node_ids) - 1)):
            target = rng.choice(targets)
            if target == node.id:
                continue
            graph.create_relationship(rel_type, node.id, target)
            targets.extend((node.id, target))
    return graph
