"""CoV2K-style synthetic dataset (the paper's running example, Section 6).

The paper evaluates PG-Triggers on an excerpt of the CoV2K knowledge base
(SARS-CoV-2 sequences, mutations, lineages, patients, hospitals).  The real
CoV2K data is not redistributable, so this module generates a
schema-faithful synthetic population: the node/edge types, properties and
cardinalities follow Figure 4, and the values are drawn deterministically
from a seeded random generator so experiments are reproducible.

Two entry points:

* :func:`cov2k_schema` — the PG-Schema of Figures 4–5;
* :func:`generate_cov2k` — a populated :class:`~repro.graph.store.PropertyGraph`
  (plus the profile used to generate it).
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass, field

from ..graph.store import PropertyGraph
from ..schema.parser import parse_schema
from ..schema.schema import PGSchema

#: Textual PG-Schema specification for the running example (Figure 5 dialect).
COV2K_SCHEMA_SPEC = """
CREATE GRAPH TYPE CovidGraphType STRICT {
  (MutationType: Mutation {name STRING, protein STRING}),
  (CriticalEffectType: CriticalEffect {description STRING}),
  (SequenceType: Sequence {accession STRING KEY, collection DATE OPTIONAL}),
  (LineageType: Lineage {name STRING, whoDesignation STRING OPTIONAL}),
  (PatientType: Patient {ssn STRING KEY, name STRING OPTIONAL, sex CHAR OPTIONAL,
                         comorbidity ARRAY[STRING] OPTIONAL, vaccinated INT32 OPTIONAL}),
  (HospitalizedPatientType: PatientType & HospitalizedPatient
        {id INT32 OPTIONAL, prognosis STRING OPTIONAL, admission DATE OPTIONAL}),
  (IcuPatientType: HospitalizedPatientType & IcuPatient {admittedToICU BOOL OPTIONAL}),
  (HospitalType: Hospital {name STRING, icuBeds INT32}),
  (RegionType: Region {name STRING}),
  (LaboratoryType: Laboratory {name STRING}),
  (AlertType: Alert OPEN),
  (:MutationType)-[RiskType: Risk]->(:CriticalEffectType),
  (:MutationType)-[FoundInType: FoundIn]->(:SequenceType),
  (:SequenceType)-[BelongsToType: BelongsTo]->(:LineageType),
  (:SequenceType)-[SequencedAtType: SequencedAt]->(:LaboratoryType),
  (:PatientType)-[HasSampleType: HasSample]->(:SequenceType),
  (:HospitalizedPatientType)-[TreatedAtType: TreatedAt]->(:HospitalType),
  (:HospitalType)-[LocatedInType: LocatedIn]->(:RegionType),
  (:LaboratoryType)-[LocatedInLabType: LocatedIn]->(:RegionType),
  (:HospitalType)-[ConnectedToType: ConnectedTo {distance INT32}]->(:HospitalType)
}
"""

#: Proteins and effects used when synthesising mutations.
PROTEINS = ("Spike", "ORF1a", "ORF1b", "N", "E", "M", "ORF3a", "ORF8")
CRITICAL_EFFECTS = (
    "Enhanced infectivity",
    "Immune escape",
    "Increased transmissibility",
    "Antiviral resistance",
    "Reduced antibody neutralization",
)
WHO_DESIGNATIONS = ("Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Omicron")
REGIONS = ("Lombardy", "Tuscany", "Lazio", "Veneto", "Piedmont")
HOSPITAL_NAMES = (
    "Sacco", "Meyer", "Spallanzani", "Niguarda", "Careggi",
    "San Raffaele", "Molinette", "Gemelli", "Borgo Roma", "Cotugno",
)
COMORBIDITIES = ("diabetes", "hypertension", "obesity", "asthma", "cardiopathy")
PROGNOSES = ("mild", "moderate", "severe", "critical")


@dataclass(frozen=True)
class Cov2kProfile:
    """Size parameters of a generated CoV2K population."""

    mutations: int = 40
    critical_effects: int = 5
    critical_mutation_fraction: float = 0.25
    lineages: int = 8
    sequences: int = 120
    patients: int = 150
    hospitalized_fraction: float = 0.4
    icu_fraction: float = 0.15
    hospitals: int = 6
    regions: int = 4
    laboratories: int = 5
    seed: int = 7

    def scaled(self, factor: float) -> "Cov2kProfile":
        """Return a copy with all cardinalities multiplied by ``factor``."""
        return Cov2kProfile(
            mutations=max(1, int(self.mutations * factor)),
            critical_effects=self.critical_effects,
            critical_mutation_fraction=self.critical_mutation_fraction,
            lineages=max(1, int(self.lineages * factor)),
            sequences=max(1, int(self.sequences * factor)),
            patients=max(1, int(self.patients * factor)),
            hospitalized_fraction=self.hospitalized_fraction,
            icu_fraction=self.icu_fraction,
            hospitals=min(len(HOSPITAL_NAMES), max(2, int(self.hospitals * factor))),
            regions=min(len(REGIONS), max(1, int(self.regions * factor))),
            laboratories=max(1, int(self.laboratories * factor)),
            seed=self.seed,
        )


@dataclass
class Cov2kDataset:
    """A generated population plus handles to its main entity groups."""

    graph: PropertyGraph
    profile: Cov2kProfile
    schema: PGSchema
    hospital_ids: list[int] = field(default_factory=list)
    region_ids: list[int] = field(default_factory=list)
    lineage_ids: list[int] = field(default_factory=list)
    sequence_ids: list[int] = field(default_factory=list)
    mutation_ids: list[int] = field(default_factory=list)
    patient_ids: list[int] = field(default_factory=list)


def cov2k_schema() -> PGSchema:
    """The PG-Schema of the paper's Figures 4–5."""
    return parse_schema(COV2K_SCHEMA_SPEC)


def generate_cov2k(profile: Cov2kProfile | None = None) -> Cov2kDataset:
    """Generate a deterministic CoV2K-style population."""
    profile = profile or Cov2kProfile()
    rng = random.Random(profile.seed)
    graph = PropertyGraph("cov2k")
    dataset = Cov2kDataset(graph=graph, profile=profile, schema=cov2k_schema())

    effects = [
        graph.create_node(["CriticalEffect"], {"description": CRITICAL_EFFECTS[i % len(CRITICAL_EFFECTS)]})
        for i in range(profile.critical_effects)
    ]

    for index in range(profile.regions):
        node = graph.create_node(["Region"], {"name": REGIONS[index % len(REGIONS)]})
        dataset.region_ids.append(node.id)

    for index in range(profile.hospitals):
        hospital = graph.create_node(
            ["Hospital"],
            {"name": HOSPITAL_NAMES[index % len(HOSPITAL_NAMES)], "icuBeds": rng.randint(5, 30)},
        )
        dataset.hospital_ids.append(hospital.id)
        region_id = dataset.region_ids[index % len(dataset.region_ids)]
        graph.create_relationship("LocatedIn", hospital.id, region_id)
    # Hospitals form a ring of ConnectedTo links with random distances, so
    # relocation triggers always have a "closest hospital" to move to.
    for index, hospital_id in enumerate(dataset.hospital_ids):
        other = dataset.hospital_ids[(index + 1) % len(dataset.hospital_ids)]
        if other != hospital_id:
            graph.create_relationship(
                "ConnectedTo", hospital_id, other, {"distance": rng.randint(20, 400)}
            )

    laboratories = []
    for index in range(profile.laboratories):
        lab = graph.create_node(["Laboratory"], {"name": f"Lab-{index:02d}"})
        laboratories.append(lab)
        region_id = dataset.region_ids[index % len(dataset.region_ids)]
        graph.create_relationship("LocatedIn", lab.id, region_id)

    for index in range(profile.lineages):
        properties = {"name": f"B.1.{index + 1}"}
        if rng.random() < 0.6:
            properties["whoDesignation"] = WHO_DESIGNATIONS[index % len(WHO_DESIGNATIONS)]
        lineage = graph.create_node(["Lineage"], properties)
        dataset.lineage_ids.append(lineage.id)

    for index in range(profile.mutations):
        protein = PROTEINS[index % len(PROTEINS)]
        mutation = graph.create_node(
            ["Mutation"],
            {"name": f"{protein}:{chr(65 + index % 26)}{100 + index}{chr(66 + index % 24)}",
             "protein": protein},
        )
        dataset.mutation_ids.append(mutation.id)
        if rng.random() < profile.critical_mutation_fraction:
            graph.create_relationship("Risk", mutation.id, rng.choice(effects).id)

    base_date = _dt.date(2021, 1, 1)
    for index in range(profile.sequences):
        sequence = graph.create_node(
            ["Sequence"],
            {"accession": f"EPI_ISL_{400000 + index}",
             "collection": base_date + _dt.timedelta(days=rng.randint(0, 364))},
        )
        dataset.sequence_ids.append(sequence.id)
        graph.create_relationship("BelongsTo", sequence.id, rng.choice(dataset.lineage_ids))
        graph.create_relationship("SequencedAt", sequence.id, rng.choice(laboratories).id)
        for mutation_id in rng.sample(dataset.mutation_ids, k=min(3, len(dataset.mutation_ids))):
            graph.create_relationship("FoundIn", mutation_id, sequence.id)

    for index in range(profile.patients):
        labels = ["Patient"]
        properties = {
            "ssn": f"SSN{index:06d}",
            "name": f"Patient {index}",
            "sex": rng.choice("MF"),
            "vaccinated": rng.randint(0, 3),
        }
        if rng.random() < 0.3:
            properties["comorbidity"] = rng.sample(COMORBIDITIES, k=rng.randint(1, 2))
        hospitalized = rng.random() < profile.hospitalized_fraction
        icu = hospitalized and rng.random() < (profile.icu_fraction / profile.hospitalized_fraction)
        if hospitalized:
            labels.append("HospitalizedPatient")
            properties["id"] = index
            properties["prognosis"] = rng.choice(PROGNOSES)
            properties["admission"] = base_date + _dt.timedelta(days=rng.randint(0, 364))
        if icu:
            labels.append("IcuPatient")
            properties["admittedToICU"] = True
        patient = graph.create_node(labels, properties)
        dataset.patient_ids.append(patient.id)
        if dataset.sequence_ids and rng.random() < 0.7:
            graph.create_relationship("HasSample", patient.id, rng.choice(dataset.sequence_ids))
        if hospitalized:
            graph.create_relationship("TreatedAt", patient.id, rng.choice(dataset.hospital_ids))

    return dataset
