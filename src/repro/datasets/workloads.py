"""Update-stream workloads for the trigger experiments.

The paper's triggers react to streams of events — new mutations being
linked to critical effects, sequences being assigned to lineages, ICU
admissions arriving at hospitals.  Each generator below produces a list of
:class:`WorkloadStatement` (openCypher text plus parameters) that a
:class:`~repro.triggers.session.GraphSession`, an
:class:`~repro.compat.apoc.ApocEmulator` or a
:class:`~repro.compat.memgraph.MemgraphEmulator` can replay verbatim, which
is how the benchmark harness drives all three routes with identical input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class WorkloadStatement:
    """One statement of a workload: query text plus parameters."""

    query: str
    parameters: dict[str, Any] = field(default_factory=dict)
    description: str = ""


def replay(session, statements: Iterable[WorkloadStatement]) -> int:
    """Run every statement through ``session.run``; returns how many ran."""
    count = 0
    for statement in statements:
        session.run(statement.query, statement.parameters)
        count += 1
    return count


# ---------------------------------------------------------------------------
# Section 6.2.1 — discovery of mutations, lineages, designation changes
# ---------------------------------------------------------------------------


def mutation_discovery_stream(
    count: int = 50, critical_fraction: float = 0.3, seed: int = 11
) -> list[WorkloadStatement]:
    """New mutations, a fraction of which are linked to a critical effect."""
    rng = random.Random(seed)
    statements: list[WorkloadStatement] = [
        WorkloadStatement(
            "MERGE (:CriticalEffect {description: 'Enhanced infectivity'})",
            description="ensure a critical effect exists",
        )
    ]
    for index in range(count):
        name = f"Spike:M{index:04d}K"
        if rng.random() < critical_fraction:
            statements.append(
                WorkloadStatement(
                    "MATCH (c:CriticalEffect {description: 'Enhanced infectivity'}) "
                    "CREATE (:Mutation {name: $name, protein: 'Spike'})-[:Risk]->(c)",
                    {"name": name},
                    description="critical mutation discovered",
                )
            )
        else:
            statements.append(
                WorkloadStatement(
                    "CREATE (:Mutation {name: $name, protein: 'Spike'})",
                    {"name": name},
                    description="harmless mutation discovered",
                )
            )
    return statements


def lineage_assignment_stream(
    sequences: int = 40, lineages: int = 4, critical_every: int = 5, seed: int = 13
) -> list[WorkloadStatement]:
    """Sequences created and assigned to lineages (BelongsTo creations)."""
    rng = random.Random(seed)
    statements: list[WorkloadStatement] = [
        WorkloadStatement("MERGE (:CriticalEffect {description: 'Immune escape'})"),
    ]
    for index in range(lineages):
        statements.append(
            WorkloadStatement(
                "CREATE (:Lineage {name: $name})",
                {"name": f"B.1.{index + 1}"},
                description="new lineage",
            )
        )
    for index in range(sequences):
        accession = f"EPI_ISL_{500000 + index}"
        statements.append(
            WorkloadStatement(
                "CREATE (:Sequence {accession: $accession})",
                {"accession": accession},
                description="sequence deposited",
            )
        )
        if index % critical_every == 0:
            statements.append(
                WorkloadStatement(
                    "MATCH (s:Sequence {accession: $accession}), "
                    "(c:CriticalEffect {description: 'Immune escape'}) "
                    "CREATE (:Mutation {name: $mutation, protein: 'Spike'})-[:Risk]->(c), "
                    "(:Mutation {name: $other, protein: 'N'})-[:FoundIn]->(s)",
                    {
                        "accession": accession,
                        "mutation": f"Spike:C{index:03d}T",
                        "other": f"N:C{index:03d}A",
                    },
                    description="critical mutation found in sequence",
                )
            )
            statements.append(
                WorkloadStatement(
                    "MATCH (s:Sequence {accession: $accession}), "
                    "(m:Mutation {name: $mutation}) CREATE (m)-[:FoundIn]->(s)",
                    {"accession": accession, "mutation": f"Spike:C{index:03d}T"},
                )
            )
        lineage = f"B.1.{rng.randint(1, lineages)}"
        statements.append(
            WorkloadStatement(
                "MATCH (s:Sequence {accession: $accession}), (l:Lineage {name: $lineage}) "
                "CREATE (s)-[:BelongsTo]->(l)",
                {"accession": accession, "lineage": lineage},
                description="sequence assigned to lineage",
            )
        )
    return statements


def designation_change_stream(changes: int = 10) -> list[WorkloadStatement]:
    """WHO designation updates on lineages (SET property events)."""
    statements: list[WorkloadStatement] = []
    for index in range(changes):
        name = f"B.1.617.{index + 1}"
        statements.append(
            WorkloadStatement(
                "CREATE (:Lineage {name: $name, whoDesignation: 'Under investigation'})",
                {"name": name},
            )
        )
        statements.append(
            WorkloadStatement(
                "MATCH (l:Lineage {name: $name}) SET l.whoDesignation = $designation",
                {"name": name, "designation": "Delta" if index % 2 == 0 else "Kappa"},
                description="WHO designation assigned",
            )
        )
    return statements


# ---------------------------------------------------------------------------
# Section 6.2.2 / 6.2.3 — ICU admissions and relocations
# ---------------------------------------------------------------------------


def hospital_setup(
    hospitals: int = 3, icu_beds: int = 5, region: str = "Lombardy"
) -> list[WorkloadStatement]:
    """Create a ring of hospitals located in ``region``."""
    names = ["Sacco", "Meyer", "Niguarda", "Careggi", "San Raffaele"]
    statements = [
        WorkloadStatement("MERGE (:Region {name: $region})", {"region": region}),
    ]
    for index in range(hospitals):
        statements.append(
            WorkloadStatement(
                "MATCH (r:Region {name: $region}) "
                "CREATE (:Hospital {name: $name, icuBeds: $beds})-[:LocatedIn]->(r)",
                {"region": region, "name": names[index % len(names)], "beds": icu_beds},
            )
        )
    for index in range(hospitals):
        statements.append(
            WorkloadStatement(
                "MATCH (a:Hospital {name: $a}), (b:Hospital {name: $b}) "
                "CREATE (a)-[:ConnectedTo {distance: $distance}]->(b)",
                {
                    "a": names[index % len(names)],
                    "b": names[(index + 1) % hospitals % len(names)],
                    "distance": 50 + 10 * index,
                },
            )
        )
    return statements


def icu_admission_stream(
    admissions: int = 30,
    hospital: str = "Sacco",
    batch_size: int = 1,
    start_index: int = 0,
) -> list[WorkloadStatement]:
    """ICU admissions at one hospital, in batches of ``batch_size``.

    ``batch_size`` > 1 exercises set-granularity (FOR ALL) triggers, since a
    single statement then creates several IcuPatient nodes.
    """
    statements: list[WorkloadStatement] = []
    index = start_index
    remaining = admissions
    while remaining > 0:
        batch = min(batch_size, remaining)
        ssns = [f"ICU{index + offset:05d}" for offset in range(batch)]
        statements.append(
            WorkloadStatement(
                "MATCH (h:Hospital {name: $hospital}) "
                "UNWIND $ssns AS ssn "
                "CREATE (:Patient:HospitalizedPatient:IcuPatient "
                "{ssn: ssn, prognosis: 'severe', admittedToICU: true})-[:TreatedAt]->(h)",
                {"hospital": hospital, "ssns": ssns},
                description=f"{batch} ICU admission(s) at {hospital}",
            )
        )
        index += batch
        remaining -= batch
    return statements


def mixed_update_stream(operations: int = 100, seed: int = 17) -> list[WorkloadStatement]:
    """A mixed create/set/remove/delete stream over a generic label set.

    Used by the added performance experiments (P1, P3): every statement is a
    small write touching the ``Entity`` label, so the number of trigger
    activations is easy to reason about.
    """
    rng = random.Random(seed)
    statements: list[WorkloadStatement] = []
    created = 0
    for index in range(operations):
        roll = rng.random()
        if roll < 0.5 or created == 0:
            statements.append(
                WorkloadStatement(
                    "CREATE (:Entity {key: $key, value: $value})",
                    {"key": f"E{index:05d}", "value": rng.randint(0, 100)},
                )
            )
            created += 1
        elif roll < 0.8:
            statements.append(
                WorkloadStatement(
                    "MATCH (e:Entity) WITH e ORDER BY e.key LIMIT 1 SET e.value = $value",
                    {"value": rng.randint(0, 100)},
                )
            )
        elif roll < 0.9:
            statements.append(
                WorkloadStatement(
                    "MATCH (e:Entity) WITH e ORDER BY e.key LIMIT 1 REMOVE e.flagged",
                )
            )
        else:
            statements.append(
                WorkloadStatement(
                    "MATCH (e:Entity) WITH e ORDER BY e.key DESC LIMIT 1 DETACH DELETE e",
                )
            )
            created = max(0, created - 1)
    return statements
