"""The six PG-Triggers of the paper's Section 6.2, in the executable dialect.

The paper presents its example triggers in a slightly informal pseudo-Cypher
(e.g. ``THEN`` keywords and nested ``BEGIN``/``END`` blocks inside action
statements).  The definitions below keep the paper's names, events, targets,
granularities and intent, expressed in the openCypher subset the
reproduction executes.  Deviations are deliberate and documented:

* aggregates over the whole target population use ``count(DISTINCT …)`` so
  that multiple MATCH clauses in one condition do not inflate counts via
  their cross product;
* ``IcuPatientsOverThreshold`` and friends take the threshold/hospital
  names as Python parameters so tests and benchmarks can exercise them on
  small populations;
* ``IcuPatientMove`` (set granularity) and ``MoveToNearHospital`` (item
  granularity) express the paper's nested BEGIN/THEN blocks as a single
  statement whose MATCH clauses re-derive the variables they need.
"""

from __future__ import annotations

SACCO = "Sacco"
MEYER = "Meyer"
LOMBARDY = "Lombardy"


def new_critical_mutation() -> str:
    """Section 6.2.1 — alert when a new mutation has a critical effect."""
    return """
    CREATE TRIGGER NewCriticalMutation
    AFTER CREATE
    ON 'Mutation'
    FOR EACH NODE
    WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
    BEGIN
      CREATE (:Alert {time: datetime(),
                      desc: 'New critical mutation',
                      mutation: NEW.name})
    END
    """


def new_critical_lineage() -> str:
    """Section 6.2.1 — alert when a sequence with a critical mutation joins a lineage."""
    return """
    CREATE TRIGGER NewCriticalLineage
    AFTER CREATE
    ON 'BelongsTo'
    FOR EACH RELATIONSHIP
    WHEN
      MATCH (s:Sequence)-[NEW]-(l:Lineage)
      WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) }
    BEGIN
      CREATE (:Alert {time: datetime(),
                      desc: 'New critical lineage',
                      lineage: l.name})
    END
    """


def who_designation_change() -> str:
    """Section 6.2.1 — alert when a lineage's WHO designation changes."""
    return """
    CREATE TRIGGER WhoDesignationChange
    AFTER SET
    ON 'Lineage'.'whoDesignation'
    FOR EACH NODE
    WHEN OLD.whoDesignation <> NEW.whoDesignation
    BEGIN
      CREATE (:Alert {time: datetime(),
                      desc: 'New Designation for an existing Lineage'})
    END
    """


def icu_patients_over_threshold(threshold: int = 50, hospital: str = SACCO) -> str:
    """Section 6.2.2 — alert when ICU patients at ``hospital`` exceed ``threshold``."""
    return f"""
    CREATE TRIGGER IcuPatientsOverThreshold
    AFTER CREATE
    ON 'IcuPatient'
    FOR ALL NODES
    WHEN
      MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {{name: '{hospital}'}})
      WITH count(DISTINCT p) AS icuPat
      WHERE icuPat > {threshold}
    BEGIN
      CREATE (:Alert {{time: datetime(),
                       desc: 'ICU patients at {hospital} Hospital are more than {threshold}'}})
    END
    """


def icu_patient_increase(fraction: float = 0.1, hospital: str = SACCO) -> str:
    """Section 6.2.2 — alert when new ICU admissions exceed ``fraction`` of the total."""
    return f"""
    CREATE TRIGGER IcuPatientIncrease
    AFTER CREATE
    ON 'IcuPatient'
    FOR ALL NODES
    WHEN
      MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {{name: '{hospital}'}})
      MATCH (pn:NEWNODES)-[:TreatedAt]-(:Hospital {{name: '{hospital}'}})
      WITH count(DISTINCT pn) AS NewIcuPat, count(DISTINCT p) AS TotalIcuPat
      WHERE NewIcuPat * 1.0 / TotalIcuPat > {fraction}
    BEGIN
      CREATE (:Alert {{time: datetime(),
                       desc: 'ICU patients at {hospital} Hospital have increased by > {int(fraction * 100)}%'}})
    END
    """


def icu_patient_move(source: str = SACCO, destination: str = MEYER) -> str:
    """Section 6.2.3 — relocate newly admitted ICU patients from ``source`` to ``destination``."""
    return f"""
    CREATE TRIGGER IcuPatientMove
    AFTER CREATE
    ON 'IcuPatient'
    FOR ALL NODES
    WHEN
      MATCH (p:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(h:Hospital {{name: '{source}'}})
      WITH h, count(DISTINCT p) AS TotalIcuPat
      WHERE TotalIcuPat > h.icuBeds
    BEGIN
      MATCH (pt:HospitalizedPatient:IcuPatient)-[:TreatedAt]-(:Hospital {{name: '{destination}'}})
      WITH count(DISTINCT pt) AS destinationIcu
      MATCH (ht:Hospital {{name: '{destination}'}})
      MATCH (pn:NEWNODES)-[c:TreatedAt]-(:Hospital {{name: '{source}'}})
      WITH ht, destinationIcu, count(DISTINCT pn) AS newIcuSource
      WHERE newIcuSource + destinationIcu <= ht.icuBeds
      MATCH (p:NEWNODES)-[c:TreatedAt]-(:Hospital {{name: '{source}'}})
      DELETE c
      CREATE (p)-[:TreatedAt]->(ht)
    END
    """


def move_to_near_hospital(region: str = LOMBARDY) -> str:
    """Section 6.2.3 — move a new ICU patient from an overloaded ``region`` hospital
    to the closest connected hospital."""
    return f"""
    CREATE TRIGGER MoveToNearHospital
    AFTER CREATE
    ON 'IcuPatient'
    FOR EACH NODE
    WHEN
      MATCH (NEW)-[:TreatedAt]-(h:Hospital)-[:LocatedIn]-(:Region {{name: '{region}'}})
      MATCH (p:IcuPatient)-[:TreatedAt]-(h)
      WITH h, count(DISTINCT p) AS TotalIcuPat
      WHERE TotalIcuPat > h.icuBeds
      MATCH (h)-[ct:ConnectedTo]-(hc:Hospital)
      WITH h, hc ORDER BY ct.distance LIMIT 1
    BEGIN
      MATCH (NEW)-[c:TreatedAt]-(h)
      DELETE c
      CREATE (NEW)-[:TreatedAt]->(hc)
    END
    """


def simple_reaction_triggers() -> list[str]:
    """The three Section 6.2.1 triggers."""
    return [new_critical_mutation(), new_critical_lineage(), who_designation_change()]


def all_paper_triggers(
    threshold: int = 50,
    fraction: float = 0.1,
    source: str = SACCO,
    destination: str = MEYER,
    region: str = LOMBARDY,
) -> list[str]:
    """All six Section 6.2 triggers (plus the alternative relocation trigger)."""
    return [
        new_critical_mutation(),
        new_critical_lineage(),
        who_designation_change(),
        icu_patients_over_threshold(threshold, source),
        icu_patient_increase(fraction, source),
        icu_patient_move(source, destination),
        move_to_near_hospital(region),
    ]
