"""Datasets and workloads: the CoV2K running example and synthetic graphs."""

from .cov2k import (
    COV2K_SCHEMA_SPEC,
    Cov2kDataset,
    Cov2kProfile,
    cov2k_schema,
    generate_cov2k,
)
from .paper_triggers import (
    all_paper_triggers,
    icu_patient_increase,
    icu_patient_move,
    icu_patients_over_threshold,
    move_to_near_hospital,
    new_critical_lineage,
    new_critical_mutation,
    simple_reaction_triggers,
    who_designation_change,
)
from .synthetic import preferential_attachment_graph, random_graph
from .workloads import (
    WorkloadStatement,
    designation_change_stream,
    hospital_setup,
    icu_admission_stream,
    lineage_assignment_stream,
    mixed_update_stream,
    mutation_discovery_stream,
    replay,
)

__all__ = [
    "COV2K_SCHEMA_SPEC",
    "Cov2kDataset",
    "Cov2kProfile",
    "WorkloadStatement",
    "all_paper_triggers",
    "cov2k_schema",
    "icu_patient_increase",
    "icu_patient_move",
    "icu_patients_over_threshold",
    "move_to_near_hospital",
    "new_critical_lineage",
    "new_critical_mutation",
    "simple_reaction_triggers",
    "who_designation_change",
    "designation_change_stream",
    "generate_cov2k",
    "hospital_setup",
    "icu_admission_stream",
    "lineage_assignment_stream",
    "mixed_update_stream",
    "mutation_discovery_stream",
    "preferential_attachment_graph",
    "random_graph",
    "replay",
]
