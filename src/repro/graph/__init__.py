"""Property graph substrate.

Public surface:

* :class:`PropertyGraph` — the in-memory store;
* :class:`Node`, :class:`Relationship` — immutable item snapshots;
* :class:`GraphDelta` and the change-record dataclasses;
* JSON serialization (:func:`save`, :func:`load`, …) and networkx bridging;
* :func:`compute_statistics` / :func:`describe` for dataset summaries.
"""

from .delta import (
    GraphDelta,
    LabelAssignment,
    LabelRemoval,
    PropertyAssignment,
    PropertyRemoval,
)
from .errors import (
    GraphError,
    GraphIntegrityError,
    InvalidPropertyValueError,
    NodeInUseError,
    NodeNotFoundError,
    RelationshipNotFoundError,
)
from .histogram import EquiDepthHistogram
from .model import GraphItem, Node, Relationship, is_node, is_relationship
from .networkx_adapter import from_networkx, to_networkx
from .serialization import (
    decode_value,
    dumps,
    encode_value,
    fingerprint,
    graph_from_dict,
    graph_to_dict,
    load,
    loads,
    save,
)
from .statistics import CardinalityEstimator, GraphStatistics, compute_statistics, describe
from .store import BOTH, INCOMING, OUTGOING, PropertyGraph

__all__ = [
    "BOTH",
    "CardinalityEstimator",
    "EquiDepthHistogram",
    "GraphDelta",
    "GraphError",
    "GraphIntegrityError",
    "GraphItem",
    "GraphStatistics",
    "INCOMING",
    "InvalidPropertyValueError",
    "LabelAssignment",
    "LabelRemoval",
    "Node",
    "NodeInUseError",
    "NodeNotFoundError",
    "OUTGOING",
    "PropertyAssignment",
    "PropertyGraph",
    "PropertyRemoval",
    "Relationship",
    "RelationshipNotFoundError",
    "compute_statistics",
    "decode_value",
    "describe",
    "dumps",
    "encode_value",
    "fingerprint",
    "from_networkx",
    "graph_from_dict",
    "graph_to_dict",
    "is_node",
    "is_relationship",
    "load",
    "loads",
    "save",
    "to_networkx",
]
