"""Equi-depth value histograms for the ordered (range) indexes.

A histogram summarises one ordered index bucket (one type class of one
``(label, property)`` pair) as ``bucket_target`` roughly equal-count value
ranges.  The planner's :class:`~repro.graph.statistics.CardinalityEstimator`
uses it to replace the one-third range heuristic with a real estimate:
full buckets inside the queried range count exactly, the two edge buckets
are interpolated (linearly for numbers and dates, half-a-bucket for types
without arithmetic).

Histograms are *advisory* — a stale or absent histogram can only make an
estimate worse, never a result wrong — so maintenance is deliberately
lazy: :meth:`EquiDepthHistogram.note_add` / :meth:`note_remove` adjust
bucket counts in O(log buckets) while the value stays inside the built
range, and the owning index rebuilds from scratch once accumulated drift
exceeds a fraction of the built population (see
:class:`repro.graph.indexes.OrderedPropertyIndex.histogram`).
"""

from __future__ import annotations

import bisect
import datetime as _dt
from typing import Any, Iterable, Optional

#: Default number of buckets per histogram.  Equi-depth means each holds
#: roughly ``total / DEFAULT_BUCKETS`` entries, which bounds the estimate
#: error of a range query at about one bucket depth per range edge.
DEFAULT_BUCKETS = 32


def _span_fraction(low: Any, high: Any, lo: Any, hi: Any) -> Optional[float]:
    """Fraction of bucket ``[low, high]`` overlapped by range ``[lo, hi]``.

    Returns ``None`` for types without usable subtraction (strings); the
    caller then charges half the bucket, keeping the error within the
    equi-depth bound.
    """
    try:
        width = high - low
        overlap_lo = lo if lo > low else low
        overlap_hi = hi if hi < high else high
        overlap = overlap_hi - overlap_lo
    except TypeError:
        return None
    if isinstance(width, _dt.timedelta):
        width = width.total_seconds()
        overlap = overlap.total_seconds()
    try:
        width = float(width)
        overlap = float(overlap)
    except (TypeError, ValueError):
        return None
    if width <= 0.0:
        return 1.0
    return min(max(overlap / width, 0.0), 1.0)


class EquiDepthHistogram:
    """Fixed bucket boundaries with incrementally maintained counts."""

    __slots__ = (
        "type_class",
        "lows",
        "highs",
        "counts",
        "total",
        "distinct",
        "built_total",
    )

    def __init__(
        self,
        type_class: str,
        keys: Iterable[Any],
        counts_by_key,
        bucket_target: int = DEFAULT_BUCKETS,
    ) -> None:
        """Build from an index bucket's sorted ``keys``.

        ``counts_by_key`` maps each key to its entry count (the index's
        per-value id sets).  Boundaries are frozen at build time; only the
        per-bucket counts move afterwards.
        """
        self.type_class = type_class
        self.lows: list[Any] = []
        self.highs: list[Any] = []
        self.counts: list[int] = []
        keys = list(keys)
        total = sum(counts_by_key(key) for key in keys)
        self.total = total
        self.built_total = total
        self.distinct = len(keys)
        if not keys:
            return
        depth = max(total // max(bucket_target, 1), 1)
        bucket_count = 0
        bucket_low = keys[0]
        previous = keys[0]
        for key in keys:
            if bucket_count >= depth:
                self.lows.append(bucket_low)
                self.highs.append(previous)
                self.counts.append(bucket_count)
                bucket_low = key
                bucket_count = 0
            bucket_count += counts_by_key(key)
            previous = key
        self.lows.append(bucket_low)
        self.highs.append(previous)
        self.counts.append(bucket_count)

    # -- bounds ----------------------------------------------------------

    @property
    def min_value(self) -> Any:
        return self.lows[0] if self.lows else None

    @property
    def max_value(self) -> Any:
        return self.highs[-1] if self.highs else None

    def bucket_depth(self) -> int:
        """The largest bucket count — the estimate error unit."""
        return max(self.counts, default=0)

    # -- incremental maintenance -----------------------------------------

    def note_add(self, key: Any) -> bool:
        """Record one added entry; False when ``key`` falls outside the
        built boundaries (the caller must mark the histogram stale)."""
        index = self._locate(key)
        if index is None:
            return False
        self.counts[index] += 1
        self.total += 1
        return True

    def note_remove(self, key: Any) -> bool:
        """Record one removed entry; False when it cannot be attributed."""
        index = self._locate(key)
        if index is None:
            return False
        if self.counts[index] > 0:
            self.counts[index] -= 1
        self.total = max(self.total - 1, 0)
        return True

    def _locate(self, key: Any) -> Optional[int]:
        if not self.lows:
            return None
        try:
            if key < self.lows[0] or key > self.highs[-1]:
                return None
            index = bisect.bisect_left(self.highs, key)
        except TypeError:
            return None
        return min(index, len(self.highs) - 1)

    # -- estimation ------------------------------------------------------

    def estimate_range(
        self,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> Optional[float]:
        """Expected entries with value in the (possibly half-open) interval.

        ``None`` when the bounds cannot be compared with the bucket
        boundaries (cross-type probe) — the caller falls back to its
        heuristic.  Open bounds (``None``) extend to the histogram edge.
        """
        if not self.lows:
            return 0.0
        lo = lower if lower is not None else self.lows[0]
        hi = upper if upper is not None else self.highs[-1]
        try:
            if lo > hi:
                return 0.0
            if hi < self.lows[0] or lo > self.highs[-1]:
                return 0.0
        except TypeError:
            return None
        rows = 0.0
        try:
            for low, high, count in zip(self.lows, self.highs, self.counts):
                if high < lo or low > hi:
                    continue
                if lo <= low and high <= hi:
                    rows += count
                    continue
                fraction = _span_fraction(low, high, lo, hi)
                rows += count * (0.5 if fraction is None else fraction)
        except TypeError:
            return None
        # Exclusive point ranges ([v, v) or (v, v]) match nothing.
        if lower is not None and upper is not None:
            try:
                if lower == upper and not (include_lower and include_upper):
                    return 0.0
            except TypeError:
                pass
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EquiDepthHistogram({self.type_class}, buckets={len(self.counts)}, "
            f"total={self.total}, range=[{self.min_value!r}, {self.max_value!r}])"
        )
