"""Change capture for property graph transactions.

A :class:`GraphDelta` records everything that happened between two points
in time: created/deleted nodes and relationships, assigned/removed labels,
and assigned/removed properties (with old and new values).  It is the raw
material from which three different views are produced:

* the PG-Trigger transition variables (``OLD``, ``NEW``, ``OLDNODES``,
  ``NEWNODES``, ``OLDRELS``, ``NEWRELS``) — see
  :mod:`repro.triggers.context`;
* the APOC transition metadata of the paper's Table 2
  (``$createdNodes``, ``$assignedNodeProperties``, …) — see
  :mod:`repro.compat.apoc`;
* the Memgraph predefined variables of Table 4
  (``createdVertices``, ``setVertexProperties``, …) — see
  :mod:`repro.compat.memgraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .model import Node, Relationship


@dataclass(frozen=True)
class LabelAssignment:
    """A label set on an existing node (``SET n:Label``)."""

    node: Node
    label: str


@dataclass(frozen=True)
class LabelRemoval:
    """A label removed from an existing node (``REMOVE n:Label``)."""

    node: Node
    label: str


@dataclass(frozen=True)
class PropertyAssignment:
    """A property set on a node or relationship.

    ``old`` is ``None`` when the property did not previously exist, which is
    exactly the quadruple shape of APOC's ``assignedNodeProperties``.
    """

    item: Node | Relationship
    key: str
    old: Any
    new: Any

    @property
    def is_node(self) -> bool:
        """Return True when the assignment targets a node."""
        return isinstance(self.item, Node)


@dataclass(frozen=True)
class PropertyRemoval:
    """A property removed from a node or relationship."""

    item: Node | Relationship
    key: str
    old: Any

    @property
    def is_node(self) -> bool:
        """Return True when the removal targets a node."""
        return isinstance(self.item, Node)


#: Operation kinds used by the unified :meth:`GraphDelta.operations` view
#: (and by the WAL codec in :mod:`repro.storage.codec`).
OP_CREATE_NODE = "create_node"
OP_DELETE_NODE = "delete_node"
OP_CREATE_RELATIONSHIP = "create_relationship"
OP_DELETE_RELATIONSHIP = "delete_relationship"
OP_ASSIGN_LABEL = "assign_label"
OP_REMOVE_LABEL = "remove_label"
OP_ASSIGN_PROPERTY = "assign_property"
OP_REMOVE_PROPERTY = "remove_property"


@dataclass
class GraphDelta:
    """Accumulated changes produced by a statement or transaction.

    The lists preserve occurrence order; consumers that need set semantics
    (e.g. "was this node created in this transaction?") use the helper
    predicates instead of scanning.  The per-kind lists do not preserve the
    *interleaving* across kinds, so the delta also keeps a unified
    operation journal (:meth:`operations`) — replaying a delta (the WAL
    recovery path) needs the exact total order, e.g. for a node that is
    created, labelled and then deleted within one transaction.
    """

    created_nodes: list[Node] = field(default_factory=list)
    deleted_nodes: list[Node] = field(default_factory=list)
    created_relationships: list[Relationship] = field(default_factory=list)
    deleted_relationships: list[Relationship] = field(default_factory=list)
    assigned_labels: list[LabelAssignment] = field(default_factory=list)
    removed_labels: list[LabelRemoval] = field(default_factory=list)
    assigned_properties: list[PropertyAssignment] = field(default_factory=list)
    removed_properties: list[PropertyRemoval] = field(default_factory=list)
    _ops: list[tuple[str, Any]] = field(default_factory=list, repr=False, compare=False)

    def is_empty(self) -> bool:
        """Return True when the delta records no changes at all."""
        return not (
            self.created_nodes
            or self.deleted_nodes
            or self.created_relationships
            or self.deleted_relationships
            or self.assigned_labels
            or self.removed_labels
            or self.assigned_properties
            or self.removed_properties
        )

    # -- recording -------------------------------------------------------

    def record_node_created(self, node: Node) -> None:
        """Record the creation of ``node``."""
        self.created_nodes.append(node)
        self._ops.append((OP_CREATE_NODE, node))

    def record_node_deleted(self, node: Node) -> None:
        """Record the deletion of ``node`` (snapshot taken before deletion)."""
        self.deleted_nodes.append(node)
        self._ops.append((OP_DELETE_NODE, node))

    def record_relationship_created(self, rel: Relationship) -> None:
        """Record the creation of ``rel``."""
        self.created_relationships.append(rel)
        self._ops.append((OP_CREATE_RELATIONSHIP, rel))

    def record_relationship_deleted(self, rel: Relationship) -> None:
        """Record the deletion of ``rel`` (snapshot taken before deletion)."""
        self.deleted_relationships.append(rel)
        self._ops.append((OP_DELETE_RELATIONSHIP, rel))

    def record_label_assigned(self, node: Node, label: str) -> None:
        """Record that ``label`` was added to ``node``."""
        assignment = LabelAssignment(node=node, label=label)
        self.assigned_labels.append(assignment)
        self._ops.append((OP_ASSIGN_LABEL, assignment))

    def record_label_removed(self, node: Node, label: str) -> None:
        """Record that ``label`` was removed from ``node``."""
        removal = LabelRemoval(node=node, label=label)
        self.removed_labels.append(removal)
        self._ops.append((OP_REMOVE_LABEL, removal))

    def record_property_assigned(
        self, item: Node | Relationship, key: str, old: Any, new: Any
    ) -> None:
        """Record that property ``key`` changed from ``old`` to ``new``."""
        assignment = PropertyAssignment(item=item, key=key, old=old, new=new)
        self.assigned_properties.append(assignment)
        self._ops.append((OP_ASSIGN_PROPERTY, assignment))

    def record_property_removed(self, item: Node | Relationship, key: str, old: Any) -> None:
        """Record that property ``key`` (whose value was ``old``) was removed."""
        removal = PropertyRemoval(item=item, key=key, old=old)
        self.removed_properties.append(removal)
        self._ops.append((OP_REMOVE_PROPERTY, removal))

    def operations(self) -> list[tuple[str, Any]]:
        """All changes as one (kind, record) list in exact occurrence order.

        Deltas built through the ``record_*`` methods return their journal
        verbatim.  Hand-assembled deltas (constructed from the per-kind
        lists, as some tests and the compat emulators do) have no journal;
        for those a canonical order is derived that is safe to replay:
        creations before label/property changes before deletions, with
        relationship deletions before node deletions.
        """
        recorded = sum(
            (
                len(self.created_nodes),
                len(self.deleted_nodes),
                len(self.created_relationships),
                len(self.deleted_relationships),
                len(self.assigned_labels),
                len(self.removed_labels),
                len(self.assigned_properties),
                len(self.removed_properties),
            )
        )
        if len(self._ops) == recorded:
            return list(self._ops)
        ops: list[tuple[str, Any]] = []
        ops.extend((OP_CREATE_NODE, node) for node in self.created_nodes)
        ops.extend((OP_CREATE_RELATIONSHIP, rel) for rel in self.created_relationships)
        ops.extend((OP_ASSIGN_LABEL, a) for a in self.assigned_labels)
        ops.extend((OP_REMOVE_LABEL, r) for r in self.removed_labels)
        ops.extend((OP_ASSIGN_PROPERTY, a) for a in self.assigned_properties)
        ops.extend((OP_REMOVE_PROPERTY, r) for r in self.removed_properties)
        ops.extend((OP_DELETE_RELATIONSHIP, rel) for rel in self.deleted_relationships)
        ops.extend((OP_DELETE_NODE, node) for node in self.deleted_nodes)
        return ops

    # -- derived views ---------------------------------------------------

    def node_property_assignments(self) -> list[PropertyAssignment]:
        """Property assignments whose target is a node."""
        return [a for a in self.assigned_properties if a.is_node]

    def relationship_property_assignments(self) -> list[PropertyAssignment]:
        """Property assignments whose target is a relationship."""
        return [a for a in self.assigned_properties if not a.is_node]

    def node_property_removals(self) -> list[PropertyRemoval]:
        """Property removals whose target is a node."""
        return [r for r in self.removed_properties if r.is_node]

    def relationship_property_removals(self) -> list[PropertyRemoval]:
        """Property removals whose target is a relationship."""
        return [r for r in self.removed_properties if not r.is_node]

    def created_node_ids(self) -> set[int]:
        """Ids of nodes created in this delta."""
        return {node.id for node in self.created_nodes}

    def deleted_node_ids(self) -> set[int]:
        """Ids of nodes deleted in this delta."""
        return {node.id for node in self.deleted_nodes}

    def created_relationship_ids(self) -> set[int]:
        """Ids of relationships created in this delta."""
        return {rel.id for rel in self.created_relationships}

    def deleted_relationship_ids(self) -> set[int]:
        """Ids of relationships deleted in this delta."""
        return {rel.id for rel in self.deleted_relationships}

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Return a new delta with ``other`` appended after this one.

        Merging is purely positional; no cancellation (e.g. create followed
        by delete of the same node) is attempted, mirroring the behaviour of
        the transition metadata in both Neo4j APOC and Memgraph.
        """
        merged = GraphDelta()
        for source in (self, other):
            merged.created_nodes.extend(source.created_nodes)
            merged.deleted_nodes.extend(source.deleted_nodes)
            merged.created_relationships.extend(source.created_relationships)
            merged.deleted_relationships.extend(source.deleted_relationships)
            merged.assigned_labels.extend(source.assigned_labels)
            merged.removed_labels.extend(source.removed_labels)
            merged.assigned_properties.extend(source.assigned_properties)
            merged.removed_properties.extend(source.removed_properties)
            merged._ops.extend(source.operations())
        return merged

    @staticmethod
    def merged(deltas: Iterable["GraphDelta"]) -> "GraphDelta":
        """Merge an iterable of deltas in order."""
        result = GraphDelta()
        for delta in deltas:
            result = result.merge(delta)
        return result

    def summary(self) -> dict[str, int]:
        """Return a count-per-change-kind summary (useful in logs/tests)."""
        return {
            "created_nodes": len(self.created_nodes),
            "deleted_nodes": len(self.deleted_nodes),
            "created_relationships": len(self.created_relationships),
            "deleted_relationships": len(self.deleted_relationships),
            "assigned_labels": len(self.assigned_labels),
            "removed_labels": len(self.removed_labels),
            "assigned_properties": len(self.assigned_properties),
            "removed_properties": len(self.removed_properties),
        }
