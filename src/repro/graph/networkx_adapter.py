"""Bridging between :class:`~repro.graph.store.PropertyGraph` and networkx.

The reproduction keeps its own store (snapshots + indexes + change capture
are essential for triggers and are not provided by networkx), but analytics
and visualisation are much easier on a :class:`networkx.MultiDiGraph`; this
module converts in both directions.

networkx is an optional dependency: importing this module does not require
it, only calling the conversion functions does.
"""

from __future__ import annotations

from typing import Any

from .store import PropertyGraph

#: Attribute key under which node labels are stored in the networkx graph.
LABELS_KEY = "labels"
#: Attribute key under which the relationship type is stored.
TYPE_KEY = "type"


def _require_networkx():
    """Import networkx lazily, with a helpful error when it is missing."""
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise ImportError(
            "networkx is required for graph conversion; install it with "
            "'pip install networkx'"
        ) from exc
    return networkx


def to_networkx(graph: PropertyGraph):
    """Convert ``graph`` into a :class:`networkx.MultiDiGraph`.

    Node labels are stored under the ``labels`` attribute (as a sorted
    list), relationship types under ``type``; all properties become plain
    attributes.
    """
    networkx = _require_networkx()
    result = networkx.MultiDiGraph(name=graph.name)
    for node in graph.nodes():
        attrs: dict[str, Any] = dict(node.properties)
        attrs[LABELS_KEY] = sorted(node.labels)
        result.add_node(node.id, **attrs)
    for rel in graph.relationships():
        attrs = dict(rel.properties)
        attrs[TYPE_KEY] = rel.type
        result.add_edge(rel.start, rel.end, key=rel.id, **attrs)
    return result


def from_networkx(source, name: str = "graph") -> PropertyGraph:
    """Convert a networkx (multi)digraph into a :class:`PropertyGraph`.

    Node attributes named ``labels`` become labels; edge attributes named
    ``type`` become the relationship type (defaulting to ``"RELATED"``).
    Non-integer node identifiers are remapped to fresh integer ids and the
    original identifier is preserved in the ``_nx_id`` property.
    """
    _require_networkx()
    graph = PropertyGraph(name=name)
    id_map: dict[Any, int] = {}
    for nx_id, attrs in source.nodes(data=True):
        attrs = dict(attrs)
        labels = attrs.pop(LABELS_KEY, [])
        if isinstance(labels, str):
            labels = [labels]
        properties = dict(attrs)
        if not isinstance(nx_id, int):
            properties.setdefault("_nx_id", str(nx_id))
            node = graph.create_node(labels=labels, properties=properties)
        else:
            node = graph.create_node(labels=labels, properties=properties, node_id=nx_id)
        id_map[nx_id] = node.id
    edge_iter = (
        source.edges(data=True, keys=True)
        if source.is_multigraph()
        else ((u, v, None, data) for u, v, data in source.edges(data=True))
    )
    for start, end, _key, attrs in edge_iter:
        attrs = dict(attrs)
        rel_type = attrs.pop(TYPE_KEY, "RELATED")
        graph.create_relationship(
            rel_type=rel_type,
            start=id_map[start],
            end=id_map[end],
            properties=attrs,
        )
    return graph
