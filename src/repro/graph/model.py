"""Core data model for property graphs.

The model follows the Property Graph definition used by the PG-Triggers
paper: a directed multigraph whose nodes and relationships carry a set of
labels (a single type label for relationships) and a map of
``property -> value`` pairs.

Nodes and relationships are exposed to users as lightweight *snapshot*
objects (:class:`Node`, :class:`Relationship`); the authoritative mutable
state lives inside :class:`repro.graph.store.PropertyGraph`.  Snapshots are
cheap to create and safe to hold across further updates (they never change
after creation), which is exactly what trigger transition variables need:
``OLD`` is a snapshot taken before the event and ``NEW`` a snapshot taken
after it.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .errors import InvalidPropertyValueError

#: Property value types accepted by the store.  ``None`` is deliberately not
#: allowed as a stored value: setting a property to ``None`` removes it,
#: which matches openCypher semantics.
SCALAR_TYPES = (bool, int, float, str, _dt.date, _dt.datetime)


def validate_property_value(value: Any) -> Any:
    """Validate a property value, returning a normalised copy.

    Scalars are returned unchanged.  Lists (and tuples) are accepted if all
    their elements are scalars and are normalised to plain lists.  Any other
    type raises :class:`InvalidPropertyValueError`.
    """
    if isinstance(value, SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        normalised = []
        for element in value:
            if not isinstance(element, SCALAR_TYPES):
                raise InvalidPropertyValueError(
                    f"list property elements must be scalars, got {type(element).__name__}"
                )
            normalised.append(element)
        return normalised
    raise InvalidPropertyValueError(
        f"unsupported property value type: {type(value).__name__}"
    )


def validate_properties(properties: Mapping[str, Any] | None) -> dict[str, Any]:
    """Validate a property map, dropping ``None`` values."""
    validated: dict[str, Any] = {}
    if not properties:
        return validated
    for key, value in properties.items():
        if not isinstance(key, str) or not key:
            raise InvalidPropertyValueError("property names must be non-empty strings")
        if value is None:
            continue
        validated[key] = validate_property_value(value)
    return validated


@dataclass(frozen=True)
class Node:
    """Immutable snapshot of a node.

    Attributes:
        id: store-assigned identifier, unique among nodes.
        labels: frozenset of label strings.
        properties: property map (treated as read-only).
    """

    id: int
    labels: frozenset[str] = field(default_factory=frozenset)
    properties: Mapping[str, Any] = field(default_factory=dict)

    def has_label(self, label: str) -> bool:
        """Return True if the node carries ``label``."""
        return label in self.labels

    def get(self, key: str, default: Any = None) -> Any:
        """Return property ``key`` or ``default`` if absent."""
        return self.properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def with_updates(
        self,
        labels: Iterable[str] | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> "Node":
        """Return a copy with labels/properties replaced (used by deltas)."""
        return Node(
            id=self.id,
            labels=frozenset(labels) if labels is not None else self.labels,
            properties=dict(properties) if properties is not None else dict(self.properties),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label_text = ":".join(sorted(self.labels))
        return f"Node({self.id}:{label_text} {dict(self.properties)!r})"


@dataclass(frozen=True)
class Relationship:
    """Immutable snapshot of a relationship (edge).

    Relationships are directed from ``start`` to ``end`` and carry a single
    ``type`` label plus a property map, matching the openCypher model used
    by the paper.
    """

    id: int
    type: str
    start: int
    end: int
    properties: Mapping[str, Any] = field(default_factory=dict)

    @property
    def labels(self) -> frozenset[str]:
        """Expose the relationship type as a one-element label set.

        PG-Triggers target relationships through labels exactly as they do
        nodes; presenting ``type`` as ``labels`` lets the trigger engine
        treat both item kinds uniformly.
        """
        return frozenset({self.type})

    def has_label(self, label: str) -> bool:
        """Return True if the relationship type equals ``label``."""
        return self.type == label

    def get(self, key: str, default: Any = None) -> Any:
        """Return property ``key`` or ``default`` if absent."""
        return self.properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def other_end(self, node_id: int) -> int:
        """Return the endpoint opposite to ``node_id``."""
        if node_id == self.start:
            return self.end
        if node_id == self.end:
            return self.start
        raise ValueError(f"node {node_id} is not an endpoint of relationship {self.id}")

    def with_updates(self, properties: Mapping[str, Any] | None = None) -> "Relationship":
        """Return a copy with the property map replaced (used by deltas)."""
        return Relationship(
            id=self.id,
            type=self.type,
            start=self.start,
            end=self.end,
            properties=dict(properties) if properties is not None else dict(self.properties),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relationship({self.start})-[{self.id}:{self.type} "
            f"{dict(self.properties)!r}]->({self.end})"
        )


#: A graph item is either a node or a relationship; triggers are defined
#: over one of the two kinds via the FOR EACH NODE / RELATIONSHIP clause.
GraphItem = Node | Relationship


def is_node(item: GraphItem) -> bool:
    """Return True if ``item`` is a node snapshot."""
    return isinstance(item, Node)


def is_relationship(item: GraphItem) -> bool:
    """Return True if ``item`` is a relationship snapshot."""
    return isinstance(item, Relationship)
