"""Descriptive statistics over property graphs.

Used by the benchmark harness to characterise generated workloads (so the
EXPERIMENTS report can state the size and shape of the graphs each
experiment ran on) and by examples to print dataset summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .store import BOTH, PropertyGraph


@dataclass
class GraphStatistics:
    """Aggregate statistics of a property graph."""

    node_count: int = 0
    relationship_count: int = 0
    labels: dict[str, int] = field(default_factory=dict)
    relationship_types: dict[str, int] = field(default_factory=dict)
    node_property_keys: dict[str, int] = field(default_factory=dict)
    relationship_property_keys: dict[str, int] = field(default_factory=dict)
    min_degree: int = 0
    max_degree: int = 0
    mean_degree: float = 0.0
    unlabeled_nodes: int = 0

    def as_dict(self) -> dict:
        """Return a plain-dict view suitable for JSON output."""
        return {
            "node_count": self.node_count,
            "relationship_count": self.relationship_count,
            "labels": dict(self.labels),
            "relationship_types": dict(self.relationship_types),
            "node_property_keys": dict(self.node_property_keys),
            "relationship_property_keys": dict(self.relationship_property_keys),
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "unlabeled_nodes": self.unlabeled_nodes,
        }


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in a single pass."""
    label_counts: Counter[str] = Counter()
    node_prop_counts: Counter[str] = Counter()
    rel_type_counts: Counter[str] = Counter()
    rel_prop_counts: Counter[str] = Counter()
    degrees: list[int] = []
    unlabeled = 0

    for node in graph.nodes():
        if not node.labels:
            unlabeled += 1
        for label in node.labels:
            label_counts[label] += 1
        for key in node.properties:
            node_prop_counts[key] += 1
        degrees.append(graph.degree(node.id, BOTH))

    for rel in graph.relationships():
        rel_type_counts[rel.type] += 1
        for key in rel.properties:
            rel_prop_counts[key] += 1

    node_count = graph.node_count()
    return GraphStatistics(
        node_count=node_count,
        relationship_count=graph.relationship_count(),
        labels=dict(sorted(label_counts.items())),
        relationship_types=dict(sorted(rel_type_counts.items())),
        node_property_keys=dict(sorted(node_prop_counts.items())),
        relationship_property_keys=dict(sorted(rel_prop_counts.items())),
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=(sum(degrees) / node_count) if node_count else 0.0,
        unlabeled_nodes=unlabeled,
    )


def describe(graph: PropertyGraph) -> str:
    """Return a short human-readable description of ``graph``."""
    stats = compute_statistics(graph)
    label_text = ", ".join(f"{label}={count}" for label, count in stats.labels.items())
    type_text = ", ".join(
        f"{rel_type}={count}" for rel_type, count in stats.relationship_types.items()
    )
    return (
        f"{graph.name}: {stats.node_count} nodes, {stats.relationship_count} relationships\n"
        f"  labels: {label_text or '(none)'}\n"
        f"  relationship types: {type_text or '(none)'}\n"
        f"  degree: min={stats.min_degree} mean={stats.mean_degree:.2f} max={stats.max_degree}"
    )
