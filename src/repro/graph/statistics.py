"""Descriptive statistics and cardinality estimation over property graphs.

Two consumers live off this module:

* the benchmark harness and examples use :func:`compute_statistics` /
  :func:`describe` to characterise generated workloads;
* the query planner (:mod:`repro.cypher.planner`) uses
  :class:`CardinalityEstimator` to put numbers on MATCH patterns so it can
  order the patterns of a multi-pattern clause by estimated cost.

The estimates are deliberately cheap — every figure comes from an index
count or a ratio of counts, never from a scan — and deliberately advisory:
the executor re-verifies every candidate, so a wrong estimate can only cost
performance, never correctness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .store import BOTH, PropertyGraph

#: Default selectivities for WHERE conjuncts the planner cannot answer from
#: an index: the System R-style constants applied per unestimated conjunct
#: when correcting a pattern's estimate for its residual filter.
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_SELECTIVITY = 0.25


@dataclass
class GraphStatistics:
    """Aggregate statistics of a property graph."""

    node_count: int = 0
    relationship_count: int = 0
    labels: dict[str, int] = field(default_factory=dict)
    relationship_types: dict[str, int] = field(default_factory=dict)
    node_property_keys: dict[str, int] = field(default_factory=dict)
    relationship_property_keys: dict[str, int] = field(default_factory=dict)
    min_degree: int = 0
    max_degree: int = 0
    mean_degree: float = 0.0
    unlabeled_nodes: int = 0

    def as_dict(self) -> dict:
        """Return a plain-dict view suitable for JSON output."""
        return {
            "node_count": self.node_count,
            "relationship_count": self.relationship_count,
            "labels": dict(self.labels),
            "relationship_types": dict(self.relationship_types),
            "node_property_keys": dict(self.node_property_keys),
            "relationship_property_keys": dict(self.relationship_property_keys),
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "unlabeled_nodes": self.unlabeled_nodes,
        }


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in a single pass."""
    label_counts: Counter[str] = Counter()
    node_prop_counts: Counter[str] = Counter()
    rel_type_counts: Counter[str] = Counter()
    rel_prop_counts: Counter[str] = Counter()
    degrees: list[int] = []
    unlabeled = 0

    for node in graph.nodes():
        if not node.labels:
            unlabeled += 1
        for label in node.labels:
            label_counts[label] += 1
        for key in node.properties:
            node_prop_counts[key] += 1
        degrees.append(graph.degree(node.id, BOTH))

    for rel in graph.relationships():
        rel_type_counts[rel.type] += 1
        for key in rel.properties:
            rel_prop_counts[key] += 1

    node_count = graph.node_count()
    return GraphStatistics(
        node_count=node_count,
        relationship_count=graph.relationship_count(),
        labels=dict(sorted(label_counts.items())),
        relationship_types=dict(sorted(rel_type_counts.items())),
        node_property_keys=dict(sorted(node_prop_counts.items())),
        relationship_property_keys=dict(sorted(rel_prop_counts.items())),
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        mean_degree=(sum(degrees) / node_count) if node_count else 0.0,
        unlabeled_nodes=unlabeled,
    )


class CardinalityEstimator:
    """Cheap cardinality estimates for the query planner's cost model.

    Works against anything exposing the index-metadata surface of
    :class:`~repro.graph.store.PropertyGraph`; graph-likes missing a method
    degrade to neutral estimates instead of raising, so the planner keeps
    working on reduced fakes used in tests.

    All estimators return floats measured in *expected rows*.
    """

    def __init__(self, graph) -> None:
        self.graph = graph

    # -- node-level estimates -------------------------------------------

    def node_cardinality(self) -> float:
        """Expected rows of a full node scan: the node count."""
        return float(self._call("node_count", 0))

    def label_cardinality(self, labels: Iterable[str]) -> float:
        """Expected rows of a label scan over the most selective of ``labels``.

        The executor picks the smallest label bucket at run time, so the
        estimate mirrors that choice: the minimum per-label count.
        """
        counts = [self._label_count(label) for label in labels]
        if not counts:
            return self.node_cardinality()
        return float(min(counts))

    def index_selectivity(self, label: str, prop: str) -> float:
        """Expected rows of one equality probe into a declared index.

        Total indexed entries divided by distinct indexed values — the
        classic uniform-value assumption.  An empty or absent index
        estimates one row (a point lookup).
        """
        probe = getattr(self.graph, "property_index_selectivity", None)
        if probe is None:
            return 1.0
        selectivity = probe(label, prop)
        if selectivity is None:
            return 1.0
        return max(float(selectivity), 1.0)

    def range_scan_rows(
        self,
        label: str,
        prop: str,
        lower: object = None,
        upper: object = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> float:
        """Expected rows of a range seek into a declared ordered index.

        Three tiers, each only as good as what the graph exposes:

        1. **Clamp** — a provably empty range (inverted bounds, an
           exclusive point range, or bounds entirely outside the index's
           min/max) estimates exactly ``0.0``, before any histogram or
           heuristic gets a say.
        2. **Histogram** — with literal bounds and an equi-depth histogram
           (:meth:`~repro.graph.store.PropertyGraph.range_histogram`), sum
           the overlapped buckets.
        3. **Heuristic** — otherwise the classic *one-third* rule (System
           R's default for range predicates): a third of the indexed
           entries, degrading to a third of the label cardinality, never
           below one row.
        """
        counter = getattr(self.graph, "range_index_entry_count", None)
        total = counter(label, prop) if counter is not None else None
        if self._range_provably_empty(
            label, prop, lower, upper, include_lower, include_upper, total
        ):
            return 0.0
        if lower is not None or upper is not None:
            probe = getattr(self.graph, "range_histogram", None)
            histogram = probe(label, prop) if probe is not None else None
            if histogram is not None:
                estimate = histogram.estimate_range(
                    lower, upper, include_lower, include_upper
                )
                if estimate is not None:
                    return max(float(estimate), 0.0)
        if total is None:
            total = self.label_cardinality((label,))
        return max(float(total) / 3.0, 1.0)

    def _range_provably_empty(
        self,
        label: str,
        prop: str,
        lower: object,
        upper: object,
        include_lower: bool,
        include_upper: bool,
        total: int | None,
    ) -> bool:
        """True when no value can satisfy the bounds — estimate zero rows.

        Cross-type bound comparisons are treated as inconclusive (the live
        evaluation would raise, and the executor's fallback handles that);
        an unindexed pair never clamps.
        """
        bounded = lower is not None or upper is not None
        if lower is not None and upper is not None:
            try:
                if lower > upper:
                    return True
                if lower == upper and not (include_lower and include_upper):
                    return True
            except TypeError:
                return False
        if total == 0:
            return bounded  # declared-but-empty index: every range is empty
        probe = getattr(self.graph, "range_index_bounds", None)
        bounds = probe(label, prop) if probe is not None else None
        if bounds is None:
            return False
        low, high = bounds
        if low is None and high is None:
            return bounded
        try:
            if lower is not None and (
                lower > high or (lower == high and not include_lower)
            ):
                return True
            if upper is not None and (
                upper < low or (upper == low and not include_upper)
            ):
                return True
        except TypeError:
            return False
        return False

    def composite_rows(self, label: str, props: Sequence[str]) -> float | None:
        """Expected rows of one probe into a composite index.

        Combined (multi-column) selectivity from the composite's running
        counters; ``None`` when no composite index covers exactly ``props``
        (the planner then falls back to single-property probes).
        """
        probe = getattr(self.graph, "composite_index_selectivity", None)
        if probe is None:
            return None
        selectivity = probe(label, props)
        if selectivity is None:
            return None
        return max(float(selectivity), 1.0)

    def in_list_rows(self, label: str, prop: str, value_count: Optional[int]) -> float:
        """Expected rows of an IN-list seek: one equality probe per element.

        ``value_count`` is ``None`` when the list is a parameter whose
        length is unknown at plan time; a small default is assumed.
        """
        per_probe = self.index_selectivity(label, prop)
        count = 3 if value_count is None else value_count
        return max(per_probe * count, 1.0)

    def relationship_index_selectivity(self, rel_type: str, prop: str) -> float:
        """Expected rows of one equality probe into a (type, prop) rel index."""
        probe = getattr(self.graph, "relationship_property_index_selectivity", None)
        if probe is None:
            return 1.0
        selectivity = probe(rel_type, prop)
        if selectivity is None:
            return 1.0
        return max(float(selectivity), 1.0)

    def label_fraction(self, labels: Iterable[str]) -> float:
        """Fraction of all nodes carrying the most selective of ``labels``."""
        total = self.node_cardinality()
        if total <= 0:
            return 1.0
        return min(self.label_cardinality(labels) / total, 1.0)

    # -- relationship-level estimates -----------------------------------

    def expansion_factor(self, rel_types: Iterable[str] = ()) -> float:
        """Expected neighbours reached by expanding one relationship hop.

        With types given, only relationships of those types count.  Every
        relationship is traversable from both endpoints, hence the factor
        of two over the raw count.
        """
        nodes = self.node_cardinality()
        if nodes <= 0:
            return 0.0
        types = tuple(rel_types)
        if types:
            rels = sum(self._type_count(rel_type) for rel_type in types)
        else:
            rels = self._call("relationship_count", 0)
        return 2.0 * float(rels) / nodes

    def pattern_cardinality(self, start_rows: float, elements: Sequence) -> float:
        """Expected rows of matching a path pattern given its start estimate.

        Walks the pattern left to right from ``start_rows``: each
        relationship hop multiplies by the expansion factor of its types,
        each labelled interior/target node filters by its label fraction.
        ``elements`` uses the planner's representation (NodePattern /
        RelationshipPattern alternation); only duck-typed attributes
        (``types``, ``labels``, ``min_hops``) are touched.
        """
        estimate = float(start_rows)
        for element in elements[1:]:
            types = getattr(element, "types", None)
            if types is not None:  # a relationship hop
                factor = self.expansion_factor(types)
                hops = getattr(element, "min_hops", None) or 1
                estimate *= factor ** max(int(hops), 1)
            else:  # an interior or target node
                labels = tuple(getattr(element, "labels", ()) or ())
                if labels:
                    estimate *= self.label_fraction(labels)
        return estimate

    def variable_length_cardinality(
        self,
        rel_types: Iterable[str] = (),
        min_hops: int | None = None,
        max_hops: int | None = None,
        hop_cap: int = 15,
    ) -> float:
        """Expected targets of one ``-[:T*min..max]->`` variable-length hop.

        A depth-``d`` expansion reaches ``factor ** d`` candidates, and the
        hop emits a row per depth in the window, so the estimate is the sum
        of ``factor ** d`` over ``d`` in ``[min, max]``.  An unbounded
        ``max`` is capped at ``hop_cap`` — the executor's default traversal
        cap — and ``0.0 ** 0 == 1.0`` makes the zero-hop self row fall out
        of the arithmetic even on an edgeless graph.
        """
        factor = self.expansion_factor(rel_types)
        low = int(min_hops) if min_hops is not None else 1
        low = max(low, 0)
        high = int(max_hops) if max_hops is not None else hop_cap
        estimate = 0.0
        for depth in range(low, max(high, low - 1) + 1):
            estimate += factor**depth
            if estimate > 1e18:  # saturate instead of overflowing
                break
        return estimate

    # -- internals ------------------------------------------------------

    def _call(self, method: str, default: float) -> float:
        candidate = getattr(self.graph, method, None)
        if candidate is None:
            return float(default)
        return float(candidate())

    def _label_count(self, label: str) -> float:
        counter = getattr(self.graph, "count_nodes_with_label", None)
        if counter is None:
            return self.node_cardinality()
        return float(counter(label))

    def _type_count(self, rel_type: str) -> float:
        counter = getattr(self.graph, "count_relationships_with_type", None)
        if counter is None:
            return self._call("relationship_count", 0)
        return float(counter(rel_type))


def describe(graph: PropertyGraph) -> str:
    """Return a short human-readable description of ``graph``."""
    stats = compute_statistics(graph)
    label_text = ", ".join(f"{label}={count}" for label, count in stats.labels.items())
    type_text = ", ".join(
        f"{rel_type}={count}" for rel_type, count in stats.relationship_types.items()
    )
    return (
        f"{graph.name}: {stats.node_count} nodes, {stats.relationship_count} relationships\n"
        f"  labels: {label_text or '(none)'}\n"
        f"  relationship types: {type_text or '(none)'}\n"
        f"  degree: min={stats.min_degree} mean={stats.mean_degree:.2f} max={stats.max_degree}"
    )
