"""Secondary indexes for the property graph store.

Three index families are provided:

* :class:`LabelIndex` — label -> set of item ids, used by the trigger
  engine's targeting step (a PG-Trigger targets all items with a label) and
  by Cypher's ``MATCH (n:Label)`` scans;
* :class:`PropertyIndex` — (label, property, value) -> set of node ids, an
  optional exact-match index used to accelerate ``MATCH (n:Label {k: v})``.
  The store also reuses it, keyed by relationship *type*, as the
  relationship-property index behind ``RelIndexSeek``;
* :class:`OrderedPropertyIndex` — an ordered (sorted-key) index over a
  (label, property) pair that answers both equality probes and **range
  seeks** (``<``, ``<=``, ``>``, ``>=``), backing the planner's
  ``IndexRangeSeek`` physical operator.

All are maintained eagerly by :class:`repro.graph.store.PropertyGraph`.
"""

from __future__ import annotations

import bisect
import datetime as _dt
from collections import defaultdict
from typing import Any, Hashable, Iterable, Iterator, Optional


class LabelIndex:
    """Maps label strings to sets of item ids."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[int]] = defaultdict(set)

    def add(self, label: str, item_id: int) -> None:
        """Index ``item_id`` under ``label``."""
        self._by_label[label].add(item_id)

    def remove(self, label: str, item_id: int) -> None:
        """Remove ``item_id`` from ``label``; silently ignores missing entries."""
        bucket = self._by_label.get(label)
        if bucket is None:
            return
        bucket.discard(item_id)
        if not bucket:
            del self._by_label[label]

    def get(self, label: str) -> set[int]:
        """Return a copy of the id set for ``label`` (empty if unknown)."""
        return set(self._by_label.get(label, ()))

    def labels(self) -> list[str]:
        """Return all labels that currently index at least one item."""
        return sorted(self._by_label)

    def count(self, label: str) -> int:
        """Return the number of items carrying ``label``."""
        return len(self._by_label.get(label, ()))

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_label)


def _freeze_value(value: Any) -> Hashable:
    """Turn a property value into something hashable for index keys."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


class PropertyIndex:
    """Exact-match index over (label, property) pairs.

    The index is sparse: only (label, property) pairs that have been
    explicitly registered with :meth:`create` are maintained.  This mirrors
    how a real graph database only indexes declared properties.
    """

    def __init__(self) -> None:
        self._indexed_pairs: set[tuple[str, str]] = set()
        self._entries: dict[tuple[str, str], dict[Hashable, set[int]]] = {}
        #: Running (total entries, distinct values) per pair, maintained
        #: by add/remove so selectivity estimates never need a scan.
        self._counts: dict[tuple[str, str], list[int]] = {}

    def create(self, label: str, prop: str) -> None:
        """Declare an index on ``label``/``prop`` (idempotent).

        DDL-driven plan invalidation lives in
        :attr:`repro.graph.store.PropertyGraph.index_epoch`, which the
        store bumps around calls to this method.
        """
        pair = (label, prop)
        if pair in self._indexed_pairs:
            return
        self._indexed_pairs.add(pair)
        self._entries[pair] = defaultdict(set)
        self._counts[pair] = [0, 0]

    def drop(self, label: str, prop: str) -> None:
        """Drop the index on ``label``/``prop`` if present."""
        pair = (label, prop)
        self._indexed_pairs.discard(pair)
        self._entries.pop(pair, None)
        self._counts.pop(pair, None)

    def is_indexed(self, label: str, prop: str) -> bool:
        """Return True when an index exists for ``label``/``prop``."""
        return (label, prop) in self._indexed_pairs

    def indexed_pairs(self) -> list[tuple[str, str]]:
        """Return the declared (label, property) pairs."""
        return sorted(self._indexed_pairs)

    def add(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Add an entry if the (label, property) pair is indexed."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        bucket = entries[_freeze_value(value)]
        if item_id not in bucket:
            bucket.add(item_id)
            counts = self._counts[pair]
            counts[0] += 1
            if len(bucket) == 1:
                counts[1] += 1

    def remove(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Remove an entry if present."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        key = _freeze_value(value)
        bucket = entries.get(key)
        if bucket is None or item_id not in bucket:
            return
        bucket.discard(item_id)
        counts = self._counts[pair]
        counts[0] -= 1
        if not bucket:
            counts[1] -= 1
            del entries[key]

    def selectivity(self, label: str, prop: str) -> float | None:
        """Expected entries per distinct value, from the running counters.

        O(1): the counters are maintained by :meth:`add`/:meth:`remove`.
        Returns ``None`` when the pair is not indexed and ``1.0`` for a
        declared-but-empty index (a probe behaves like a point lookup).
        """
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct

    def lookup(self, label: str, prop: str, value: Any) -> set[int] | None:
        """Return matching ids, or ``None`` when the pair is not indexed.

        Returning ``None`` (rather than an empty set) lets callers
        distinguish "no index, fall back to a scan" from "indexed, zero
        matches".
        """
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return None
        return set(entries.get(_freeze_value(value), ()))

    def index_entries(
        self, label: str, prop: str
    ) -> Iterable[tuple[Hashable, set[int]]]:
        """Iterate over (value, ids) pairs of one declared index."""
        entries = self._entries.get((label, prop), {})
        return ((value, set(ids)) for value, ids in entries.items())


# ---------------------------------------------------------------------------
# ordered (range) index
# ---------------------------------------------------------------------------

#: Type classes whose members are totally ordered *among themselves* by
#: Python's comparison operators.  Values of different classes are kept in
#: separate sorted buckets: comparing across classes (``1 < 'a'``) raises in
#: the executor's live predicate evaluation, so a range seek is only allowed
#: to answer when every indexed entry lives in the bound's own class — any
#: foreign-class entry forces a scan fallback, which reproduces the live
#: error behaviour exactly.  ``bool``/``int``/``float`` share one class
#: because Python (and the executor's ``_compare``) orders them together.
_ORDERED_NUM = "num"
_ORDERED_STR = "str"
_ORDERED_DATETIME = "datetime"
_ORDERED_DATE = "date"
#: Values with no usable total order (lists, anything exotic): equality-only.
_UNORDERED = "other"


def _type_class(value: Any) -> str:
    """The ordered-bucket class of a property value."""
    if isinstance(value, float) and value != value:
        # NaN compares False against everything, which would silently break
        # bisect's sorted-list invariant (range seeks would then *drop*
        # matching rows, which the WHERE re-check cannot recover).  Keep it
        # in the unordered bucket: its presence forces the scan fallback,
        # which filters NaN exactly like an unindexed comparison.
        return _UNORDERED
    if isinstance(value, (bool, int, float)):
        return _ORDERED_NUM
    if isinstance(value, str):
        return _ORDERED_STR
    if isinstance(value, _dt.datetime):  # before date: datetime subclasses date
        return _ORDERED_DATETIME
    if isinstance(value, _dt.date):
        return _ORDERED_DATE
    return _UNORDERED


class _SortedBucket:
    """Ids grouped by value, with the distinct values kept in sorted order.

    The unordered bucket (``ordered=False``) serves equality probes only:
    its values need not be mutually comparable (two list properties of
    different element types, say), so no sorted key list is maintained —
    ``range_ids`` is never called on it.
    """

    __slots__ = ("ordered", "keys", "ids_by_value")

    def __init__(self, ordered: bool = True) -> None:
        self.ordered = ordered
        self.keys: list = []
        self.ids_by_value: dict[Hashable, set[int]] = {}

    def add(self, key: Hashable, item_id: int) -> bool:
        """Insert; returns True when the id was new to this bucket."""
        bucket = self.ids_by_value.get(key)
        if bucket is None:
            if self.ordered:
                bisect.insort(self.keys, key)
            bucket = self.ids_by_value[key] = set()
        if item_id in bucket:
            return False
        bucket.add(item_id)
        return True

    def remove(self, key: Hashable, item_id: int) -> bool:
        """Remove; returns True when the id was present."""
        bucket = self.ids_by_value.get(key)
        if bucket is None or item_id not in bucket:
            return False
        bucket.discard(item_id)
        if not bucket:
            del self.ids_by_value[key]
            if self.ordered:
                index = bisect.bisect_left(self.keys, key)
                # Equal-comparing keys can alias (True vs 1): delete the
                # exact one.
                while index < len(self.keys):
                    if self.keys[index] is key or self.keys[index] == key:
                        del self.keys[index]
                        break
                    index += 1
        return True

    def range_ids(
        self,
        lower: Any,
        upper: Any,
        include_lower: bool,
        include_upper: bool,
    ) -> set[int]:
        """Ids whose value falls inside the (possibly half-open) interval."""
        start = 0
        end = len(self.keys)
        if lower is not None:
            start = (
                bisect.bisect_left(self.keys, lower)
                if include_lower
                else bisect.bisect_right(self.keys, lower)
            )
        if upper is not None:
            end = (
                bisect.bisect_right(self.keys, upper)
                if include_upper
                else bisect.bisect_left(self.keys, upper)
            )
        result: set[int] = set()
        for key in self.keys[start:end]:
            result |= self.ids_by_value[key]
        return result

    def __len__(self) -> int:
        return sum(len(ids) for ids in self.ids_by_value.values())


class OrderedPropertyIndex:
    """Sorted index over (label, property) pairs: equality *and* range seeks.

    Like :class:`PropertyIndex` the index is sparse — only explicitly
    declared pairs are maintained — and DDL-driven plan invalidation lives
    in the store's ``index_epoch``.  Internally each pair keeps one sorted
    bucket per type class (see :func:`_type_class`): a range seek answers
    from the bound's class bucket, but only while every other class bucket
    is empty, because a live scan would raise ``CypherTypeError`` on the
    first cross-class comparison and the seek must never hide that error.
    """

    def __init__(self) -> None:
        self._indexed_pairs: set[tuple[str, str]] = set()
        self._buckets: dict[tuple[str, str], dict[str, _SortedBucket]] = {}
        #: Running (total entries, distinct values) per pair, as in
        #: :class:`PropertyIndex`, so selectivity estimates are O(1).
        self._counts: dict[tuple[str, str], list[int]] = {}

    def create(self, label: str, prop: str) -> None:
        """Declare an ordered index on ``label``/``prop`` (idempotent)."""
        pair = (label, prop)
        if pair in self._indexed_pairs:
            return
        self._indexed_pairs.add(pair)
        self._buckets[pair] = {}
        self._counts[pair] = [0, 0]

    def drop(self, label: str, prop: str) -> None:
        """Drop the ordered index on ``label``/``prop`` if present."""
        pair = (label, prop)
        self._indexed_pairs.discard(pair)
        self._buckets.pop(pair, None)
        self._counts.pop(pair, None)

    def is_indexed(self, label: str, prop: str) -> bool:
        """Return True when an ordered index exists for ``label``/``prop``."""
        return (label, prop) in self._indexed_pairs

    def indexed_pairs(self) -> list[tuple[str, str]]:
        """Return the declared (label, property) pairs."""
        return sorted(self._indexed_pairs)

    def add(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Add an entry if the (label, property) pair is indexed."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return
        tag = _type_class(value)
        bucket = buckets.get(tag)
        if bucket is None:
            bucket = buckets[tag] = _SortedBucket(ordered=tag != _UNORDERED)
        key = _freeze_value(value)
        distinct_before = len(bucket.ids_by_value)
        if bucket.add(key, item_id):
            counts = self._counts[(label, prop)]
            counts[0] += 1
            counts[1] += len(bucket.ids_by_value) - distinct_before

    def remove(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Remove an entry if present."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return
        tag = _type_class(value)
        bucket = buckets.get(tag)
        if bucket is None:
            return
        key = _freeze_value(value)
        distinct_before = len(bucket.ids_by_value)
        if bucket.remove(key, item_id):
            counts = self._counts[(label, prop)]
            counts[0] -= 1
            counts[1] -= distinct_before - len(bucket.ids_by_value)

    def lookup(self, label: str, prop: str, value: Any) -> set[int] | None:
        """Equality probe; ``None`` when the pair is not indexed."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return None
        bucket = buckets.get(_type_class(value))
        if bucket is None:
            return set()
        return set(bucket.ids_by_value.get(_freeze_value(value), ()))

    def range_lookup(
        self,
        label: str,
        prop: str,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> Optional[set[int]]:
        """Ids whose value lies within the bounds, or ``None`` to force a scan.

        Returns ``None`` — "cannot answer, fall back to scanning" — when the
        pair is not indexed, when the bounds are of different (or unordered)
        type classes, or when any entry of a *different* class exists: a live
        scan would raise on comparing that entry with the bound, and the
        fallback preserves that behaviour.
        """
        pair = (label, prop)
        if pair not in self._indexed_pairs:
            return None
        bounds = [b for b in (lower, upper) if b is not None]
        if not bounds:
            return None
        tags = {_type_class(b) for b in bounds}
        if len(tags) != 1:
            return None
        tag = tags.pop()
        if tag == _UNORDERED:
            return None
        buckets = self._buckets[pair]
        for other_tag, bucket in buckets.items():
            if other_tag != tag and len(bucket):
                return None
        bucket = buckets.get(tag)
        if bucket is None:
            return set()
        return bucket.range_ids(
            _freeze_value(lower) if lower is not None else None,
            _freeze_value(upper) if upper is not None else None,
            include_lower,
            include_upper,
        )

    def selectivity(self, label: str, prop: str) -> float | None:
        """Expected entries per distinct value (``None`` when not indexed)."""
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct

    def entry_count(self, label: str, prop: str) -> int | None:
        """Total indexed entries for the pair (``None`` when not indexed)."""
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        return counts[0]
