"""Secondary indexes for the property graph store.

Two index families are provided:

* :class:`LabelIndex` — label -> set of item ids, used by the trigger
  engine's targeting step (a PG-Trigger targets all items with a label) and
  by Cypher's ``MATCH (n:Label)`` scans;
* :class:`PropertyIndex` — (label, property, value) -> set of node ids, an
  optional exact-match index used to accelerate ``MATCH (n:Label {k: v})``.

Both are maintained eagerly by :class:`repro.graph.store.PropertyGraph`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Iterable, Iterator


class LabelIndex:
    """Maps label strings to sets of item ids."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[int]] = defaultdict(set)

    def add(self, label: str, item_id: int) -> None:
        """Index ``item_id`` under ``label``."""
        self._by_label[label].add(item_id)

    def remove(self, label: str, item_id: int) -> None:
        """Remove ``item_id`` from ``label``; silently ignores missing entries."""
        bucket = self._by_label.get(label)
        if bucket is None:
            return
        bucket.discard(item_id)
        if not bucket:
            del self._by_label[label]

    def get(self, label: str) -> set[int]:
        """Return a copy of the id set for ``label`` (empty if unknown)."""
        return set(self._by_label.get(label, ()))

    def labels(self) -> list[str]:
        """Return all labels that currently index at least one item."""
        return sorted(self._by_label)

    def count(self, label: str) -> int:
        """Return the number of items carrying ``label``."""
        return len(self._by_label.get(label, ()))

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_label)


def _freeze_value(value: Any) -> Hashable:
    """Turn a property value into something hashable for index keys."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


class PropertyIndex:
    """Exact-match index over (label, property) pairs.

    The index is sparse: only (label, property) pairs that have been
    explicitly registered with :meth:`create` are maintained.  This mirrors
    how a real graph database only indexes declared properties.
    """

    def __init__(self) -> None:
        self._indexed_pairs: set[tuple[str, str]] = set()
        self._entries: dict[tuple[str, str], dict[Hashable, set[int]]] = {}
        #: Running (total entries, distinct values) per pair, maintained
        #: by add/remove so selectivity estimates never need a scan.
        self._counts: dict[tuple[str, str], list[int]] = {}

    def create(self, label: str, prop: str) -> None:
        """Declare an index on ``label``/``prop`` (idempotent).

        DDL-driven plan invalidation lives in
        :attr:`repro.graph.store.PropertyGraph.index_epoch`, which the
        store bumps around calls to this method.
        """
        pair = (label, prop)
        if pair in self._indexed_pairs:
            return
        self._indexed_pairs.add(pair)
        self._entries[pair] = defaultdict(set)
        self._counts[pair] = [0, 0]

    def drop(self, label: str, prop: str) -> None:
        """Drop the index on ``label``/``prop`` if present."""
        pair = (label, prop)
        self._indexed_pairs.discard(pair)
        self._entries.pop(pair, None)
        self._counts.pop(pair, None)

    def is_indexed(self, label: str, prop: str) -> bool:
        """Return True when an index exists for ``label``/``prop``."""
        return (label, prop) in self._indexed_pairs

    def indexed_pairs(self) -> list[tuple[str, str]]:
        """Return the declared (label, property) pairs."""
        return sorted(self._indexed_pairs)

    def add(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Add an entry if the (label, property) pair is indexed."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        bucket = entries[_freeze_value(value)]
        if item_id not in bucket:
            bucket.add(item_id)
            counts = self._counts[pair]
            counts[0] += 1
            if len(bucket) == 1:
                counts[1] += 1

    def remove(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Remove an entry if present."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        key = _freeze_value(value)
        bucket = entries.get(key)
        if bucket is None or item_id not in bucket:
            return
        bucket.discard(item_id)
        counts = self._counts[pair]
        counts[0] -= 1
        if not bucket:
            counts[1] -= 1
            del entries[key]

    def selectivity(self, label: str, prop: str) -> float | None:
        """Expected entries per distinct value, from the running counters.

        O(1): the counters are maintained by :meth:`add`/:meth:`remove`.
        Returns ``None`` when the pair is not indexed and ``1.0`` for a
        declared-but-empty index (a probe behaves like a point lookup).
        """
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct

    def lookup(self, label: str, prop: str, value: Any) -> set[int] | None:
        """Return matching ids, or ``None`` when the pair is not indexed.

        Returning ``None`` (rather than an empty set) lets callers
        distinguish "no index, fall back to a scan" from "indexed, zero
        matches".
        """
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return None
        return set(entries.get(_freeze_value(value), ()))

    def index_entries(
        self, label: str, prop: str
    ) -> Iterable[tuple[Hashable, set[int]]]:
        """Iterate over (value, ids) pairs of one declared index."""
        entries = self._entries.get((label, prop), {})
        return ((value, set(ids)) for value, ids in entries.items())
