"""Secondary indexes for the property graph store.

Three index families are provided:

* :class:`LabelIndex` — label -> set of item ids, used by the trigger
  engine's targeting step (a PG-Trigger targets all items with a label) and
  by Cypher's ``MATCH (n:Label)`` scans;
* :class:`PropertyIndex` — (label, property, value) -> set of node ids, an
  optional exact-match index used to accelerate ``MATCH (n:Label {k: v})``.
  The store also reuses it, keyed by relationship *type*, as the
  relationship-property index behind ``RelIndexSeek``;
* :class:`OrderedPropertyIndex` — an ordered (sorted-key) index over a
  (label, property) pair that answers both equality probes and **range
  seeks** (``<``, ``<=``, ``>``, ``>=``), backing the planner's
  ``IndexRangeSeek`` physical operator.  Each pair also lazily maintains
  an equi-depth value histogram (:mod:`repro.graph.histogram`) feeding the
  planner's range-selectivity estimates, plus ordered-id enumeration for
  index-backed ``ORDER BY``;
* :class:`CompositeIndex` — exact-match index over (label, (prop, ...))
  tuples, accelerating conjunctions of equality predicates with combined
  (multi-column) selectivity.

All are maintained eagerly by :class:`repro.graph.store.PropertyGraph`.
"""

from __future__ import annotations

import bisect
import datetime as _dt
import threading
from collections import defaultdict
from typing import Any, Hashable, Iterable, Iterator, Mapping, Optional, Sequence

from .histogram import DEFAULT_BUCKETS, EquiDepthHistogram


class LabelIndex:
    """Maps label strings to sets of item ids."""

    def __init__(self) -> None:
        self._by_label: dict[str, set[int]] = defaultdict(set)

    def add(self, label: str, item_id: int) -> None:
        """Index ``item_id`` under ``label``."""
        self._by_label[label].add(item_id)

    def remove(self, label: str, item_id: int) -> None:
        """Remove ``item_id`` from ``label``; silently ignores missing entries."""
        bucket = self._by_label.get(label)
        if bucket is None:
            return
        bucket.discard(item_id)
        if not bucket:
            del self._by_label[label]

    def get(self, label: str) -> set[int]:
        """Return a copy of the id set for ``label`` (empty if unknown)."""
        return set(self._by_label.get(label, ()))

    def labels(self) -> list[str]:
        """Return all labels that currently index at least one item."""
        return sorted(self._by_label)

    def count(self, label: str) -> int:
        """Return the number of items carrying ``label``."""
        return len(self._by_label.get(label, ()))

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_label)


def _freeze_value(value: Any) -> Hashable:
    """Turn a property value into something hashable for index keys."""
    if isinstance(value, list):
        return tuple(_freeze_value(v) for v in value)
    return value


class PropertyIndex:
    """Exact-match index over (label, property) pairs.

    The index is sparse: only (label, property) pairs that have been
    explicitly registered with :meth:`create` are maintained.  This mirrors
    how a real graph database only indexes declared properties.
    """

    def __init__(self) -> None:
        self._indexed_pairs: set[tuple[str, str]] = set()
        self._entries: dict[tuple[str, str], dict[Hashable, set[int]]] = {}
        #: Running (total entries, distinct values) per pair, maintained
        #: by add/remove so selectivity estimates never need a scan.
        self._counts: dict[tuple[str, str], list[int]] = {}

    def create(self, label: str, prop: str) -> None:
        """Declare an index on ``label``/``prop`` (idempotent).

        DDL-driven plan invalidation lives in
        :attr:`repro.graph.store.PropertyGraph.index_epoch`, which the
        store bumps around calls to this method.
        """
        pair = (label, prop)
        if pair in self._indexed_pairs:
            return
        self._indexed_pairs.add(pair)
        self._entries[pair] = defaultdict(set)
        self._counts[pair] = [0, 0]

    def drop(self, label: str, prop: str) -> None:
        """Drop the index on ``label``/``prop`` if present."""
        pair = (label, prop)
        self._indexed_pairs.discard(pair)
        self._entries.pop(pair, None)
        self._counts.pop(pair, None)

    def is_indexed(self, label: str, prop: str) -> bool:
        """Return True when an index exists for ``label``/``prop``."""
        return (label, prop) in self._indexed_pairs

    def indexed_pairs(self) -> list[tuple[str, str]]:
        """Return the declared (label, property) pairs."""
        return sorted(self._indexed_pairs)

    def add(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Add an entry if the (label, property) pair is indexed."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        bucket = entries[_freeze_value(value)]
        if item_id not in bucket:
            bucket.add(item_id)
            counts = self._counts[pair]
            counts[0] += 1
            if len(bucket) == 1:
                counts[1] += 1

    def remove(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Remove an entry if present."""
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return
        key = _freeze_value(value)
        bucket = entries.get(key)
        if bucket is None or item_id not in bucket:
            return
        bucket.discard(item_id)
        counts = self._counts[pair]
        counts[0] -= 1
        if not bucket:
            counts[1] -= 1
            del entries[key]

    def selectivity(self, label: str, prop: str) -> float | None:
        """Expected entries per distinct value, from the running counters.

        O(1): the counters are maintained by :meth:`add`/:meth:`remove`.
        Returns ``None`` when the pair is not indexed and ``1.0`` for a
        declared-but-empty index (a probe behaves like a point lookup).
        """
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct

    def lookup(self, label: str, prop: str, value: Any) -> set[int] | None:
        """Return matching ids, or ``None`` when the pair is not indexed.

        Returning ``None`` (rather than an empty set) lets callers
        distinguish "no index, fall back to a scan" from "indexed, zero
        matches".
        """
        pair = (label, prop)
        entries = self._entries.get(pair)
        if entries is None:
            return None
        return set(entries.get(_freeze_value(value), ()))

    def index_entries(
        self, label: str, prop: str
    ) -> Iterable[tuple[Hashable, set[int]]]:
        """Iterate over (value, ids) pairs of one declared index."""
        entries = self._entries.get((label, prop), {})
        return ((value, set(ids)) for value, ids in entries.items())


# ---------------------------------------------------------------------------
# ordered (range) index
# ---------------------------------------------------------------------------

#: Type classes whose members are totally ordered *among themselves* by
#: Python's comparison operators.  Values of different classes are kept in
#: separate sorted buckets: comparing across classes (``1 < 'a'``) raises in
#: the executor's live predicate evaluation, so a range seek is only allowed
#: to answer when every indexed entry lives in the bound's own class — any
#: foreign-class entry forces a scan fallback, which reproduces the live
#: error behaviour exactly.  ``bool``/``int``/``float`` share one class
#: because Python (and the executor's ``_compare``) orders them together.
_ORDERED_NUM = "num"
_ORDERED_STR = "str"
_ORDERED_DATETIME = "datetime"
_ORDERED_DATE = "date"
#: Values with no usable total order (lists, anything exotic): equality-only.
_UNORDERED = "other"


def _type_class(value: Any) -> str:
    """The ordered-bucket class of a property value."""
    if isinstance(value, float) and value != value:
        # NaN compares False against everything, which would silently break
        # bisect's sorted-list invariant (range seeks would then *drop*
        # matching rows, which the WHERE re-check cannot recover).  Keep it
        # in the unordered bucket: its presence forces the scan fallback,
        # which filters NaN exactly like an unindexed comparison.
        return _UNORDERED
    if isinstance(value, (bool, int, float)):
        return _ORDERED_NUM
    if isinstance(value, str):
        return _ORDERED_STR
    if isinstance(value, _dt.datetime):  # before date: datetime subclasses date
        return _ORDERED_DATETIME
    if isinstance(value, _dt.date):
        return _ORDERED_DATE
    return _UNORDERED


class _SortedBucket:
    """Ids grouped by value, with the distinct values kept in sorted order.

    The unordered bucket (``ordered=False``) serves equality probes only:
    its values need not be mutually comparable (two list properties of
    different element types, say), so no sorted key list is maintained —
    ``range_ids`` is never called on it.
    """

    __slots__ = ("ordered", "keys", "ids_by_value")

    def __init__(self, ordered: bool = True) -> None:
        self.ordered = ordered
        self.keys: list = []
        self.ids_by_value: dict[Hashable, set[int]] = {}

    def add(self, key: Hashable, item_id: int) -> bool:
        """Insert; returns True when the id was new to this bucket."""
        bucket = self.ids_by_value.get(key)
        if bucket is None:
            if self.ordered:
                bisect.insort(self.keys, key)
            bucket = self.ids_by_value[key] = set()
        if item_id in bucket:
            return False
        bucket.add(item_id)
        return True

    def remove(self, key: Hashable, item_id: int) -> bool:
        """Remove; returns True when the id was present."""
        bucket = self.ids_by_value.get(key)
        if bucket is None or item_id not in bucket:
            return False
        bucket.discard(item_id)
        if not bucket:
            del self.ids_by_value[key]
            if self.ordered:
                index = bisect.bisect_left(self.keys, key)
                # Equal-comparing keys can alias (True vs 1): delete the
                # exact one.
                while index < len(self.keys):
                    if self.keys[index] is key or self.keys[index] == key:
                        del self.keys[index]
                        break
                    index += 1
        return True

    def range_ids(
        self,
        lower: Any,
        upper: Any,
        include_lower: bool,
        include_upper: bool,
    ) -> set[int]:
        """Ids whose value falls inside the (possibly half-open) interval."""
        start = 0
        end = len(self.keys)
        if lower is not None:
            start = (
                bisect.bisect_left(self.keys, lower)
                if include_lower
                else bisect.bisect_right(self.keys, lower)
            )
        if upper is not None:
            end = (
                bisect.bisect_right(self.keys, upper)
                if include_upper
                else bisect.bisect_left(self.keys, upper)
            )
        result: set[int] = set()
        for key in self.keys[start:end]:
            result |= self.ids_by_value[key]
        return result

    def __len__(self) -> int:
        return sum(len(ids) for ids in self.ids_by_value.values())


class OrderedPropertyIndex:
    """Sorted index over (label, property) pairs: equality *and* range seeks.

    Like :class:`PropertyIndex` the index is sparse — only explicitly
    declared pairs are maintained — and DDL-driven plan invalidation lives
    in the store's ``index_epoch``.  Internally each pair keeps one sorted
    bucket per type class (see :func:`_type_class`): a range seek answers
    from the bound's class bucket, but only while every other class bucket
    is empty, because a live scan would raise ``CypherTypeError`` on the
    first cross-class comparison and the seek must never hide that error.
    """

    #: Rebuild a histogram once accumulated drift (mutations since build)
    #: exceeds ``max(_HISTOGRAM_MIN_DRIFT, built_total // 4)``.
    _HISTOGRAM_MIN_DRIFT = 16

    def __init__(self) -> None:
        self._indexed_pairs: set[tuple[str, str]] = set()
        self._buckets: dict[tuple[str, str], dict[str, _SortedBucket]] = {}
        #: Running (total entries, distinct values) per pair, as in
        #: :class:`PropertyIndex`, so selectivity estimates are O(1).
        self._counts: dict[tuple[str, str], list[int]] = {}
        #: Lazily built equi-depth histograms per pair: value is a
        #: ``[histogram | None, drift, stale]`` triple (see :meth:`histogram`).
        self._histograms: dict[tuple[str, str], list] = {}
        # Guards histogram (re)builds so concurrent readers (thread-safe
        # snapshot reads share the graph's read lock) build each at most once.
        self._histogram_lock = threading.Lock()

    def create(self, label: str, prop: str) -> None:
        """Declare an ordered index on ``label``/``prop`` (idempotent)."""
        pair = (label, prop)
        if pair in self._indexed_pairs:
            return
        self._indexed_pairs.add(pair)
        self._buckets[pair] = {}
        self._counts[pair] = [0, 0]
        self._histograms[pair] = [None, 0, True]

    def drop(self, label: str, prop: str) -> None:
        """Drop the ordered index on ``label``/``prop`` if present."""
        pair = (label, prop)
        self._indexed_pairs.discard(pair)
        self._buckets.pop(pair, None)
        self._counts.pop(pair, None)
        self._histograms.pop(pair, None)

    def is_indexed(self, label: str, prop: str) -> bool:
        """Return True when an ordered index exists for ``label``/``prop``."""
        return (label, prop) in self._indexed_pairs

    def indexed_pairs(self) -> list[tuple[str, str]]:
        """Return the declared (label, property) pairs."""
        return sorted(self._indexed_pairs)

    def add(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Add an entry if the (label, property) pair is indexed."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return
        tag = _type_class(value)
        bucket = buckets.get(tag)
        if bucket is None:
            bucket = buckets[tag] = _SortedBucket(ordered=tag != _UNORDERED)
        key = _freeze_value(value)
        distinct_before = len(bucket.ids_by_value)
        if bucket.add(key, item_id):
            counts = self._counts[(label, prop)]
            counts[0] += 1
            counts[1] += len(bucket.ids_by_value) - distinct_before
            self._note_mutation((label, prop), tag, key, added=True)

    def remove(self, label: str, prop: str, value: Any, item_id: int) -> None:
        """Remove an entry if present."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return
        tag = _type_class(value)
        bucket = buckets.get(tag)
        if bucket is None:
            return
        key = _freeze_value(value)
        distinct_before = len(bucket.ids_by_value)
        if bucket.remove(key, item_id):
            counts = self._counts[(label, prop)]
            counts[0] -= 1
            counts[1] -= distinct_before - len(bucket.ids_by_value)
            self._note_mutation((label, prop), tag, key, added=False)

    def _note_mutation(
        self, pair: tuple[str, str], tag: str, key: Hashable, added: bool
    ) -> None:
        """Keep the pair's histogram loosely in sync with one mutation.

        In-range mutations adjust a bucket count directly; anything the
        histogram cannot absorb (a value outside its built boundaries, or
        of a different type class) marks it stale for a lazy rebuild.
        Either way drift accumulates, bounding how far incremental counts
        may wander from a fresh build.
        """
        state = self._histograms.get(pair)
        if state is None:
            return
        histogram = state[0]
        state[1] += 1
        if histogram is None:
            return
        if tag != histogram.type_class:
            state[2] = True
            return
        absorbed = histogram.note_add(key) if added else histogram.note_remove(key)
        if not absorbed:
            state[2] = True

    def histogram(
        self, label: str, prop: str, bucket_target: int = DEFAULT_BUCKETS
    ) -> tuple[Optional[EquiDepthHistogram], bool]:
        """The pair's equi-depth histogram, rebuilt lazily when drifted.

        Returns ``(histogram, refreshed)``; ``refreshed`` is True when this
        call rebuilt it (the store bumps its index epoch then, so cached
        plans carrying the old estimates are invalidated).  ``(None,
        False)`` when the pair is not indexed or its entries span more than
        one type class — the same condition under which
        :meth:`range_lookup` declines, so no estimate is ever offered for a
        seek that would fall back to a scan.
        """
        pair = (label, prop)
        state = self._histograms.get(pair)
        if state is None:
            return None, False
        buckets = self._buckets.get(pair, {})
        populated = [
            (tag, bucket) for tag, bucket in buckets.items() if len(bucket.ids_by_value)
        ]
        if len(populated) > 1 or (populated and populated[0][0] == _UNORDERED):
            return None, False
        histogram = state[0]
        threshold = self._HISTOGRAM_MIN_DRIFT
        if histogram is not None:
            threshold = max(threshold, histogram.built_total // 4)
        if histogram is not None and not state[2] and state[1] <= threshold:
            return histogram, False
        with self._histogram_lock:
            state = self._histograms.get(pair)
            if state is None:
                return None, False
            if populated:
                tag, bucket = populated[0]
                rebuilt = EquiDepthHistogram(
                    tag,
                    bucket.keys,
                    lambda key: len(bucket.ids_by_value.get(key, ())),
                    bucket_target=bucket_target,
                )
            else:
                rebuilt = EquiDepthHistogram(_ORDERED_NUM, (), lambda key: 0)
            state[0] = rebuilt
            state[1] = 0
            state[2] = False
        return rebuilt, True

    def bounds(self, label: str, prop: str) -> Optional[tuple[Any, Any]]:
        """The (min, max) indexed value, for provably-empty-range clamping.

        ``(None, None)`` for a declared-but-empty index (every range over
        it is provably empty); ``None`` when the pair is not indexed or its
        entries span multiple type classes (no clamp can be trusted then).
        """
        pair = (label, prop)
        if pair not in self._indexed_pairs:
            return None
        populated = [
            (tag, bucket)
            for tag, bucket in self._buckets.get(pair, {}).items()
            if len(bucket.ids_by_value)
        ]
        if not populated:
            return (None, None)
        if len(populated) > 1 or populated[0][0] == _UNORDERED:
            return None
        bucket = populated[0][1]
        return (bucket.keys[0], bucket.keys[-1])

    def ordered_ids(
        self, label: str, prop: str, descending: bool = False
    ) -> Optional[list[int]]:
        """Indexed ids in value order (ids ascending within equal values).

        Backs index-backed ``ORDER BY``: the id tie-break reproduces the
        stable-sort order of the heap/sort route, whose input scans emit
        ids ascending.  ``None`` — "cannot answer, sort instead" — when the
        pair is not indexed or entries span more than one type class (a
        live sort would raise comparing across classes, and the fallback
        must preserve that error).
        """
        pair = (label, prop)
        if pair not in self._indexed_pairs:
            return None
        populated = [
            (tag, bucket)
            for tag, bucket in self._buckets.get(pair, {}).items()
            if len(bucket.ids_by_value)
        ]
        if not populated:
            return []
        if len(populated) > 1 or populated[0][0] == _UNORDERED:
            return None
        bucket = populated[0][1]
        keys = reversed(bucket.keys) if descending else bucket.keys
        ordered: list[int] = []
        for key in keys:
            ordered.extend(sorted(bucket.ids_by_value[key]))
        return ordered

    def lookup(self, label: str, prop: str, value: Any) -> set[int] | None:
        """Equality probe; ``None`` when the pair is not indexed."""
        buckets = self._buckets.get((label, prop))
        if buckets is None:
            return None
        bucket = buckets.get(_type_class(value))
        if bucket is None:
            return set()
        return set(bucket.ids_by_value.get(_freeze_value(value), ()))

    def range_lookup(
        self,
        label: str,
        prop: str,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> Optional[set[int]]:
        """Ids whose value lies within the bounds, or ``None`` to force a scan.

        Returns ``None`` — "cannot answer, fall back to scanning" — when the
        pair is not indexed, when the bounds are of different (or unordered)
        type classes, or when any entry of a *different* class exists: a live
        scan would raise on comparing that entry with the bound, and the
        fallback preserves that behaviour.
        """
        pair = (label, prop)
        if pair not in self._indexed_pairs:
            return None
        bounds = [b for b in (lower, upper) if b is not None]
        if not bounds:
            return None
        tags = {_type_class(b) for b in bounds}
        if len(tags) != 1:
            return None
        tag = tags.pop()
        if tag == _UNORDERED:
            return None
        buckets = self._buckets[pair]
        for other_tag, bucket in buckets.items():
            if other_tag != tag and len(bucket):
                return None
        bucket = buckets.get(tag)
        if bucket is None:
            return set()
        return bucket.range_ids(
            _freeze_value(lower) if lower is not None else None,
            _freeze_value(upper) if upper is not None else None,
            include_lower,
            include_upper,
        )

    def selectivity(self, label: str, prop: str) -> float | None:
        """Expected entries per distinct value (``None`` when not indexed)."""
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct

    def entry_count(self, label: str, prop: str) -> int | None:
        """Total indexed entries for the pair (``None`` when not indexed)."""
        counts = self._counts.get((label, prop))
        if counts is None:
            return None
        return counts[0]


# ---------------------------------------------------------------------------
# composite (multi-property) index
# ---------------------------------------------------------------------------


class CompositeIndex:
    """Exact-match index over (label, (prop, ..., prop)) tuples.

    Indexes the *tuple* of a node's values for the declared properties, so
    a conjunction of equality predicates costs one probe with combined
    selectivity instead of one single-property probe plus residual
    filtering.  Nodes missing any of the declared properties are not
    indexed — ``n.p = v`` can never hold for a missing ``p`` (``null``
    equality is not ``true``), so a probe cannot miss them.
    """

    def __init__(self) -> None:
        self._indexed_keys: set[tuple[str, tuple[str, ...]]] = set()
        self._by_label: dict[str, list[tuple[str, ...]]] = defaultdict(list)
        self._entries: dict[
            tuple[str, tuple[str, ...]], dict[tuple, set[int]]
        ] = {}
        #: Running (total entries, distinct value tuples) per key.
        self._counts: dict[tuple[str, tuple[str, ...]], list[int]] = {}

    @staticmethod
    def _key(label: str, props: Sequence[str]) -> tuple[str, tuple[str, ...]]:
        return (label, tuple(props))

    def create(self, label: str, props: Sequence[str]) -> None:
        """Declare a composite index on ``label`` over ``props`` (idempotent)."""
        key = self._key(label, props)
        if key in self._indexed_keys:
            return
        self._indexed_keys.add(key)
        self._by_label[label].append(key[1])
        self._entries[key] = defaultdict(set)
        self._counts[key] = [0, 0]

    def drop(self, label: str, props: Sequence[str]) -> None:
        """Drop the composite index if present."""
        key = self._key(label, props)
        if key not in self._indexed_keys:
            return
        self._indexed_keys.discard(key)
        self._by_label[label].remove(key[1])
        if not self._by_label[label]:
            del self._by_label[label]
        self._entries.pop(key, None)
        self._counts.pop(key, None)

    def is_indexed(self, label: str, props: Sequence[str]) -> bool:
        """True when a composite index exists for exactly these properties."""
        return self._key(label, props) in self._indexed_keys

    def indexed_keys(self) -> list[tuple[str, tuple[str, ...]]]:
        """The declared (label, properties) keys, sorted."""
        return sorted(self._indexed_keys)

    def for_label(self, label: str) -> tuple[tuple[str, ...], ...]:
        """Property tuples declared for ``label`` (maintenance fast path)."""
        return tuple(self._by_label.get(label, ()))

    def add_item(self, label: str, properties: Mapping[str, Any], item_id: int) -> None:
        """Index ``item_id`` under every declared composite it satisfies."""
        for props in self._by_label.get(label, ()):
            if any(prop not in properties for prop in props):
                continue
            values = tuple(_freeze_value(properties[prop]) for prop in props)
            bucket = self._entries[(label, props)][values]
            if item_id not in bucket:
                bucket.add(item_id)
                counts = self._counts[(label, props)]
                counts[0] += 1
                if len(bucket) == 1:
                    counts[1] += 1

    def remove_item(
        self, label: str, properties: Mapping[str, Any], item_id: int
    ) -> None:
        """Remove ``item_id``'s entries computed from ``properties``."""
        for props in self._by_label.get(label, ()):
            if any(prop not in properties for prop in props):
                continue
            values = tuple(_freeze_value(properties[prop]) for prop in props)
            entries = self._entries[(label, props)]
            bucket = entries.get(values)
            if bucket is None or item_id not in bucket:
                continue
            bucket.discard(item_id)
            counts = self._counts[(label, props)]
            counts[0] -= 1
            if not bucket:
                counts[1] -= 1
                del entries[values]

    def lookup(
        self, label: str, props: Sequence[str], values: Sequence[Any]
    ) -> set[int] | None:
        """Matching ids, or ``None`` when no such composite is declared."""
        key = self._key(label, props)
        entries = self._entries.get(key)
        if entries is None:
            return None
        frozen = tuple(_freeze_value(value) for value in values)
        return set(entries.get(frozen, ()))

    def selectivity(self, label: str, props: Sequence[str]) -> float | None:
        """Expected entries per distinct value tuple (``None`` if undeclared)."""
        counts = self._counts.get(self._key(label, props))
        if counts is None:
            return None
        total, distinct = counts
        if distinct == 0:
            return 1.0
        return total / distinct
