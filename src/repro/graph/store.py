"""In-memory property graph store.

:class:`PropertyGraph` is the storage substrate on which the whole
reproduction is built: the Cypher executor reads and writes through it, the
transaction layer (:mod:`repro.tx`) wraps its primitive operations with undo
logging and change capture, and the PG-Trigger engine consumes the captured
changes.

Design notes
------------
* Nodes and relationships are handed out to callers as immutable snapshots
  (:class:`repro.graph.model.Node` / ``Relationship``).  Every mutation
  produces a fresh snapshot; old snapshots stay valid, which is what trigger
  transition variables require.
* A label index is maintained for nodes (by label) and relationships (by
  type); an optional exact-match property index can be declared per
  (label, property) pair.
* Adjacency is kept as two ``node id -> set of relationship ids`` maps
  (outgoing and incoming), so expanding a pattern from a bound node is
  proportional to its degree rather than to the graph size.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Mapping, Optional

from .errors import (
    GraphIntegrityError,
    NodeInUseError,
    NodeNotFoundError,
    RelationshipNotFoundError,
)
from ..paths.accelerator import ReachabilityIndex
from .delta import (
    OP_ASSIGN_LABEL,
    OP_ASSIGN_PROPERTY,
    OP_CREATE_NODE,
    OP_CREATE_RELATIONSHIP,
    OP_DELETE_NODE,
    OP_DELETE_RELATIONSHIP,
    OP_REMOVE_LABEL,
    OP_REMOVE_PROPERTY,
)
from .indexes import CompositeIndex, LabelIndex, OrderedPropertyIndex, PropertyIndex
from .model import Node, Relationship, validate_properties, validate_property_value

#: Direction selector for relationship traversal.
OUTGOING = "out"
INCOMING = "in"
BOTH = "both"

#: Per-process counter handing every graph instance a unique identity for
#: the query planner's plan cache (ids of dead graphs can be reused by the
#: allocator; these tokens never are).
_PLAN_TOKENS = itertools.count(1)

#: Pseudo-op reported to mutation listeners when the graph changes in a way
#: that cannot be expressed as a single-item delta (``clear()``).  Listeners
#: maintaining derived state must treat it as "rebuild from scratch".
OP_BULK = "bulk"


class PropertyGraph:
    """A mutable, in-memory property graph with label and property indexes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._relationships: dict[int, Relationship] = {}
        self._node_ids = itertools.count(0)
        self._rel_ids = itertools.count(0)
        self._node_labels = LabelIndex()
        self._rel_types = LabelIndex()
        self._property_index = PropertyIndex()
        self._range_index = OrderedPropertyIndex()
        self._rel_property_index = PropertyIndex()
        self._composite_index = CompositeIndex()
        #: Declared reachability accelerators, one per relationship type
        #: (see :mod:`repro.paths.accelerator`); rebuilt lazily on use.
        self._reachability: dict[str, ReachabilityIndex] = {}
        self._outgoing: dict[int, set[int]] = {}
        self._incoming: dict[int, set[int]] = {}
        self._index_epoch = 0
        self.plan_token = next(_PLAN_TOKENS)
        #: Optional callback ``(action, kind, label, prop)`` invoked after
        #: every index DDL operation ("create"/"drop" of a
        #: "property"/"range"/"relationship" index).  The durability layer
        #: uses it to write index DDL into the write-ahead log; it is never
        #: copied by :meth:`copy` (clones are plain in-memory graphs).
        self.ddl_listener = None
        #: Mutation listeners ``(op, old, new)`` invoked after every
        #: primitive mutation (op names from :mod:`repro.graph.delta`, plus
        #: :data:`OP_BULK` for ``clear()``).  Because the transaction layer's
        #: undo records and detach-delete cascades funnel through these same
        #: public primitives, a listener observes rollbacks and cascades
        #: without any help from the caller.  Never copied by :meth:`copy`.
        self._mutation_listeners: list = []

    # ------------------------------------------------------------------
    # mutation listeners
    # ------------------------------------------------------------------

    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(op, old, new)`` to observe every mutation."""
        if listener not in self._mutation_listeners:
            self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unregister a previously added mutation listener (idempotent)."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_mutation(self, op: str, old, new) -> None:
        for listener in self._mutation_listeners:
            listener(op, old, new)

    # ------------------------------------------------------------------
    # size and iteration
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes currently in the graph."""
        return len(self._nodes)

    def relationship_count(self) -> int:
        """Number of relationships currently in the graph."""
        return len(self._relationships)

    def order(self) -> int:
        """Alias for :meth:`node_count` (graph-theory naming)."""
        return self.node_count()

    def size(self) -> int:
        """Alias for :meth:`relationship_count` (graph-theory naming)."""
        return self.relationship_count()

    def nodes(self) -> Iterator[Node]:
        """Iterate over all node snapshots (no particular order guaranteed)."""
        return iter(list(self._nodes.values()))

    def relationships(self) -> Iterator[Relationship]:
        """Iterate over all relationship snapshots."""
        return iter(list(self._relationships.values()))

    def node_labels(self) -> list[str]:
        """All node labels present in the graph."""
        return self._node_labels.labels()

    def relationship_types(self) -> list[str]:
        """All relationship types present in the graph."""
        return self._rel_types.labels()

    def has_node(self, node_id: int) -> bool:
        """Return True if a node with ``node_id`` exists."""
        return node_id in self._nodes

    def has_relationship(self, rel_id: int) -> bool:
        """Return True if a relationship with ``rel_id`` exists."""
        return rel_id in self._relationships

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Return the node snapshot for ``node_id`` or raise."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def node_or_none(self, node_id: int) -> Optional[Node]:
        """Return the node snapshot for ``node_id``, or None if deleted.

        One dict probe — the trigger engine's per-activation snapshot
        refresh sits on the firehose hot path.
        """
        return self._nodes.get(node_id)

    def relationship_or_none(self, rel_id: int) -> Optional[Relationship]:
        """Return the relationship snapshot for ``rel_id``, or None."""
        return self._relationships.get(rel_id)

    def relationship(self, rel_id: int) -> Relationship:
        """Return the relationship snapshot for ``rel_id`` or raise."""
        try:
            return self._relationships[rel_id]
        except KeyError:
            raise RelationshipNotFoundError(rel_id) from None

    def nodes_with_label(self, label: str) -> list[Node]:
        """All nodes carrying ``label``."""
        return [self._nodes[i] for i in sorted(self._node_labels.get(label))]

    def relationships_with_type(self, rel_type: str) -> list[Relationship]:
        """All relationships of type ``rel_type``."""
        return [self._relationships[i] for i in sorted(self._rel_types.get(rel_type))]

    def count_nodes_with_label(self, label: str) -> int:
        """Number of nodes carrying ``label`` (index lookup, no scan)."""
        return self._node_labels.count(label)

    def count_relationships_with_type(self, rel_type: str) -> int:
        """Number of relationships of type ``rel_type``."""
        return self._rel_types.count(rel_type)

    def find_nodes(
        self,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
    ) -> list[Node]:
        """Return nodes matching an optional label and exact property values.

        Uses the property index when one is declared for (label, property);
        otherwise falls back to scanning the label bucket (or the whole
        graph when no label is given).
        """
        properties = properties or {}
        candidates: Iterable[Node]
        if label is not None and properties:
            for key, value in properties.items():
                hit = self._property_index.lookup(label, key, value)
                if hit is not None:
                    candidates = [self._nodes[i] for i in hit if i in self._nodes]
                    break
            else:
                candidates = self.nodes_with_label(label)
        elif label is not None:
            candidates = self.nodes_with_label(label)
        else:
            candidates = self.nodes()
        result = []
        for node in candidates:
            if label is not None and not node.has_label(label):
                continue
            if all(node.get(k) == v for k, v in properties.items()):
                result.append(node)
        return result

    def relationships_of(
        self,
        node_id: int,
        direction: str = BOTH,
        rel_type: str | None = None,
    ) -> list[Relationship]:
        """Relationships attached to ``node_id``.

        Args:
            node_id: the anchor node.
            direction: ``"out"``, ``"in"`` or ``"both"``.
            rel_type: optional type filter.
        """
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        rel_ids: set[int] = set()
        if direction in (OUTGOING, BOTH):
            rel_ids |= self._outgoing.get(node_id, set())
        if direction in (INCOMING, BOTH):
            rel_ids |= self._incoming.get(node_id, set())
        rels = [self._relationships[i] for i in sorted(rel_ids)]
        if rel_type is not None:
            rels = [r for r in rels if r.type == rel_type]
        return rels

    def degree(self, node_id: int, direction: str = BOTH) -> int:
        """Number of relationships attached to ``node_id``."""
        return len(self.relationships_of(node_id, direction))

    def neighbours(
        self, node_id: int, direction: str = BOTH, rel_type: str | None = None
    ) -> list[Node]:
        """Nodes adjacent to ``node_id`` along matching relationships."""
        seen: set[int] = set()
        result: list[Node] = []
        for rel in self.relationships_of(node_id, direction, rel_type):
            other = rel.other_end(node_id)
            if other not in seen and other in self._nodes:
                seen.add(other)
                result.append(self._nodes[other])
        return result

    # ------------------------------------------------------------------
    # property index management
    # ------------------------------------------------------------------

    def _notify_ddl(
        self, action: str, kind: str, label: str, prop: str | list[str] | None
    ) -> None:
        if self.ddl_listener is not None:
            self.ddl_listener(action, kind, label, prop)

    def create_property_index(self, label: str, prop: str) -> None:
        """Declare an exact-match index on ``label``/``prop`` and backfill it."""
        self._property_index.create(label, prop)
        for node in self.nodes_with_label(label):
            if prop in node.properties:
                self._property_index.add(label, prop, node.properties[prop], node.id)
        self._index_epoch += 1
        self._notify_ddl("create", "property", label, prop)

    def drop_property_index(self, label: str, prop: str) -> None:
        """Drop a previously declared property index."""
        self._property_index.drop(label, prop)
        self._index_epoch += 1
        self._notify_ddl("drop", "property", label, prop)

    def property_indexes(self) -> list[tuple[str, str]]:
        """Declared (label, property) index pairs."""
        return self._property_index.indexed_pairs()

    @property
    def index_epoch(self) -> int:
        """Monotonic counter bumped by index DDL; keys cached query plans."""
        return self._index_epoch

    def property_index_selectivity(self, label: str, prop: str) -> float | None:
        """Expected nodes per equality probe of the (label, prop) index.

        Total indexed entries divided by distinct indexed values (the
        uniform-value assumption the planner's cost model uses), read
        from the index's running counters in O(1).  Returns ``None``
        when no index is declared for the pair and ``1.0`` for a
        declared-but-empty index (a probe then behaves like a point lookup).
        An ordered index answers equality probes too, so its counters serve
        as a fallback when only a range index covers the pair.
        """
        selectivity = self._property_index.selectivity(label, prop)
        if selectivity is None:
            selectivity = self._range_index.selectivity(label, prop)
        return selectivity

    def property_index_lookup(self, label: str, prop: str, value: Any) -> list[Node] | None:
        """Nodes with ``label`` whose ``prop`` equals ``value``, via an index.

        Both the exact-match and the ordered (range) index can answer
        equality probes; the exact index wins when both are declared.
        Returns ``None`` when neither index covers the pair, so callers
        (the query planner's index access path) can fall back to a scan.
        """
        hit = self._property_index.lookup(label, prop, value)
        if hit is None:
            hit = self._range_index.lookup(label, prop, value)
        if hit is None:
            return None
        return [self._nodes[i] for i in sorted(hit) if i in self._nodes]

    # -- ordered (range) indexes ----------------------------------------

    def create_range_index(self, label: str, prop: str) -> None:
        """Declare an ordered index on ``label``/``prop`` and backfill it.

        An ordered index answers equality probes *and* range seeks
        (``IndexRangeSeek`` in query plans).  Creating one bumps the index
        epoch, invalidating any cached plan that ignored it.
        """
        self._range_index.create(label, prop)
        for node in self.nodes_with_label(label):
            if prop in node.properties:
                self._range_index.add(label, prop, node.properties[prop], node.id)
        self._index_epoch += 1
        self._notify_ddl("create", "range", label, prop)

    def drop_range_index(self, label: str, prop: str) -> None:
        """Drop a previously declared ordered index (bumps the index epoch)."""
        self._range_index.drop(label, prop)
        self._index_epoch += 1
        self._notify_ddl("drop", "range", label, prop)

    def range_indexes(self) -> list[tuple[str, str]]:
        """Declared ordered (label, property) index pairs."""
        return self._range_index.indexed_pairs()

    def range_index_lookup(
        self,
        label: str,
        prop: str,
        lower: Any = None,
        upper: Any = None,
        include_lower: bool = True,
        include_upper: bool = True,
    ) -> list[Node] | None:
        """Nodes with ``label`` whose ``prop`` lies within the bounds.

        Returns ``None`` whenever the ordered index cannot answer with the
        exact semantics of a scan — pair not indexed, bounds of mixed or
        unordered types, or entries of a different type class present (a
        scan would raise ``CypherTypeError`` on those; see
        :meth:`OrderedPropertyIndex.range_lookup`).
        """
        hit = self._range_index.range_lookup(
            label, prop, lower, upper, include_lower, include_upper
        )
        if hit is None:
            return None
        return [self._nodes[i] for i in sorted(hit) if i in self._nodes]

    def range_index_selectivity(self, label: str, prop: str) -> float | None:
        """Entries per distinct value of the ordered index (``None`` if absent)."""
        return self._range_index.selectivity(label, prop)

    def range_index_entry_count(self, label: str, prop: str) -> int | None:
        """Total entries of the ordered index (``None`` when not declared)."""
        return self._range_index.entry_count(label, prop)

    def range_index_bounds(self, label: str, prop: str) -> tuple[Any, Any] | None:
        """(min, max) indexed value of the pair, for range clamping.

        ``(None, None)`` for a declared-but-empty index — every range over
        it is provably empty; ``None`` when the pair is not indexed or its
        entries span multiple type classes (no clamp can be trusted).
        """
        return self._range_index.bounds(label, prop)

    def range_histogram(self, label: str, prop: str):
        """The pair's equi-depth value histogram, or ``None``.

        Built (and rebuilt, once mutations since the last build exceed the
        drift threshold) lazily on access.  A rebuild changes the estimates
        cached plans were costed with, so it bumps the index epoch exactly
        like index DDL — the plan cache re-plans affected queries once.
        """
        histogram, refreshed = self._range_index.histogram(label, prop)
        if refreshed:
            self._index_epoch += 1
        return histogram

    def ordered_label_scan(
        self, label: str, prop: str, descending: bool = False
    ) -> list[Node] | None:
        """Nodes with ``label`` in ``prop`` order, nulls last — or ``None``.

        Backs index-backed ``ORDER BY``: indexed nodes stream in value
        order (ids ascending within equal values, reproducing the stable
        sort's tie order), followed by the label's unindexed nodes (missing
        the property — ``null`` sorts last in both directions) in id order.
        ``None`` whenever the ordered index cannot answer (pair not
        indexed, or entries spanning type classes whose live comparison
        would raise), in which case the caller must sort.
        """
        ordered = self._range_index.ordered_ids(label, prop, descending)
        if ordered is None:
            return None
        result = [self._nodes[i] for i in ordered if i in self._nodes]
        members = self._node_labels.get(label)
        if len(result) < len(members):
            indexed = set(ordered)
            result.extend(
                self._nodes[i] for i in sorted(members - indexed) if i in self._nodes
            )
        return result

    # -- composite (multi-property) indexes -----------------------------

    def create_composite_index(self, label: str, props: Iterable[str]) -> None:
        """Declare a composite index on ``label`` over ``props`` and backfill it.

        ``props`` is an ordered tuple of at least two property names; a
        probe must supply a value for every one of them (the planner only
        picks the index when a WHERE clause pins all of them by equality).
        """
        props = tuple(props)
        if len(props) < 2:
            raise GraphIntegrityError(
                "a composite index needs at least two properties; "
                "use create_property_index for single properties"
            )
        self._composite_index.create(label, props)
        for node in self.nodes_with_label(label):
            self._composite_index.add_item(label, node.properties, node.id)
        self._index_epoch += 1
        self._notify_ddl("create", "composite", label, list(props))

    def drop_composite_index(self, label: str, props: Iterable[str]) -> None:
        """Drop a composite index (bumps the index epoch)."""
        props = tuple(props)
        self._composite_index.drop(label, props)
        self._index_epoch += 1
        self._notify_ddl("drop", "composite", label, list(props))

    def composite_indexes(self) -> list[tuple[str, tuple[str, ...]]]:
        """Declared (label, properties) composite index keys."""
        return self._composite_index.indexed_keys()

    def composite_indexes_for_label(self, label: str) -> tuple[tuple[str, ...], ...]:
        """Property tuples of the composites declared for ``label``."""
        return self._composite_index.for_label(label)

    def composite_index_lookup(
        self, label: str, props: Iterable[str], values: Iterable[Any]
    ) -> list[Node] | None:
        """Nodes with ``label`` matching every ``prop = value`` pair.

        Returns ``None`` when no composite index covers exactly ``props``
        (fall back to single-property probes or a scan).
        """
        hit = self._composite_index.lookup(label, tuple(props), tuple(values))
        if hit is None:
            return None
        return [self._nodes[i] for i in sorted(hit) if i in self._nodes]

    def composite_index_selectivity(
        self, label: str, props: Iterable[str]
    ) -> float | None:
        """Entries per distinct value tuple (``None`` when not declared)."""
        return self._composite_index.selectivity(label, tuple(props))

    # -- relationship-property indexes ----------------------------------

    def create_relationship_property_index(self, rel_type: str, prop: str) -> None:
        """Declare an exact-match index on ``rel_type``/``prop`` and backfill it."""
        self._rel_property_index.create(rel_type, prop)
        for rel in self.relationships_with_type(rel_type):
            if prop in rel.properties:
                self._rel_property_index.add(rel_type, prop, rel.properties[prop], rel.id)
        self._index_epoch += 1
        self._notify_ddl("create", "relationship", rel_type, prop)

    def drop_relationship_property_index(self, rel_type: str, prop: str) -> None:
        """Drop a relationship-property index (bumps the index epoch)."""
        self._rel_property_index.drop(rel_type, prop)
        self._index_epoch += 1
        self._notify_ddl("drop", "relationship", rel_type, prop)

    def relationship_property_indexes(self) -> list[tuple[str, str]]:
        """Declared (relationship type, property) index pairs."""
        return self._rel_property_index.indexed_pairs()

    def relationship_property_index_lookup(
        self, rel_type: str, prop: str, value: Any
    ) -> list[Relationship] | None:
        """Relationships of ``rel_type`` whose ``prop`` equals ``value``.

        Returns ``None`` when the pair is not indexed (fall back to a scan).
        """
        hit = self._rel_property_index.lookup(rel_type, prop, value)
        if hit is None:
            return None
        return [self._relationships[i] for i in sorted(hit) if i in self._relationships]

    def relationship_property_index_selectivity(
        self, rel_type: str, prop: str
    ) -> float | None:
        """Entries per distinct value of the (type, prop) index (``None`` if absent)."""
        return self._rel_property_index.selectivity(rel_type, prop)

    # -- reachability accelerator indexes -------------------------------

    def create_reachability_index(self, rel_type: str) -> None:
        """Declare a reachability accelerator for one relationship type.

        The interval encoding itself is built lazily on first use (and
        after every invalidating mutation); declaring only registers the
        type, bumps the plan-invalidating index epoch and logs the DDL.
        Idempotent like the other index declarations.
        """
        if rel_type in self._reachability:
            return
        self._reachability[rel_type] = ReachabilityIndex(rel_type)
        self._index_epoch += 1
        self._notify_ddl("create", "reachability", rel_type, None)

    def drop_reachability_index(self, rel_type: str) -> None:
        """Drop a declared reachability accelerator (bumps the index epoch)."""
        if rel_type not in self._reachability:
            return
        del self._reachability[rel_type]
        self._index_epoch += 1
        self._notify_ddl("drop", "reachability", rel_type, None)

    def reachability_indexes(self) -> list[str]:
        """Relationship types with a declared reachability accelerator."""
        return sorted(self._reachability)

    def reachability_index(self, rel_type: str) -> ReachabilityIndex | None:
        """The declared accelerator for ``rel_type`` (``None`` if absent)."""
        return self._reachability.get(rel_type)

    def _touch_reachability(self, rel_type: str) -> None:
        """Mark the type's accelerator stale after a topology mutation."""
        accelerator = self._reachability.get(rel_type)
        if accelerator is not None:
            accelerator.invalidate()

    # ------------------------------------------------------------------
    # mutation primitives
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] | None = None,
        properties: Mapping[str, Any] | None = None,
        node_id: int | None = None,
    ) -> Node:
        """Create a node and return its snapshot.

        ``node_id`` may be supplied by the transaction layer when undoing a
        deletion so that the node reappears under its original id.
        """
        label_set = frozenset(labels or ())
        props = validate_properties(properties)
        if node_id is None:
            node_id = next(self._node_ids)
        elif node_id in self._nodes:
            raise GraphIntegrityError(f"node id {node_id} already exists")
        else:
            self._node_ids = itertools.count(max(node_id + 1, self._peek_node_id()))
        node = Node(id=node_id, labels=label_set, properties=props)
        self._nodes[node_id] = node
        self._outgoing.setdefault(node_id, set())
        self._incoming.setdefault(node_id, set())
        for label in label_set:
            self._node_labels.add(label, node_id)
            for key, value in props.items():
                for index in self._node_property_indexes():
                    index.add(label, key, value, node_id)
            self._composite_index.add_item(label, props, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_CREATE_NODE, None, node)
        return node

    def create_relationship(
        self,
        rel_type: str,
        start: int,
        end: int,
        properties: Mapping[str, Any] | None = None,
        rel_id: int | None = None,
    ) -> Relationship:
        """Create a relationship from ``start`` to ``end`` and return its snapshot."""
        if start not in self._nodes:
            raise NodeNotFoundError(start)
        if end not in self._nodes:
            raise NodeNotFoundError(end)
        if not rel_type:
            raise GraphIntegrityError("relationship type must be a non-empty string")
        props = validate_properties(properties)
        if rel_id is None:
            rel_id = next(self._rel_ids)
        elif rel_id in self._relationships:
            raise GraphIntegrityError(f"relationship id {rel_id} already exists")
        else:
            self._rel_ids = itertools.count(max(rel_id + 1, self._peek_rel_id()))
        rel = Relationship(id=rel_id, type=rel_type, start=start, end=end, properties=props)
        self._relationships[rel_id] = rel
        self._outgoing[start].add(rel_id)
        self._incoming[end].add(rel_id)
        self._rel_types.add(rel_type, rel_id)
        for key, value in props.items():
            self._rel_property_index.add(rel_type, key, value, rel_id)
        self._touch_reachability(rel_type)
        if self._mutation_listeners:
            self._notify_mutation(OP_CREATE_RELATIONSHIP, None, rel)
        return rel

    def delete_node(self, node_id: int, detach: bool = False) -> Node:
        """Delete a node, returning the snapshot it had before deletion.

        Raises :class:`NodeInUseError` when the node still has relationships
        and ``detach`` is False.
        """
        node = self.node(node_id)
        attached = self._outgoing.get(node_id, set()) | self._incoming.get(node_id, set())
        if attached and not detach:
            raise NodeInUseError(node_id, len(attached))
        for rel_id in sorted(attached):
            self.delete_relationship(rel_id)
        del self._nodes[node_id]
        self._outgoing.pop(node_id, None)
        self._incoming.pop(node_id, None)
        for label in node.labels:
            self._node_labels.remove(label, node_id)
            for key, value in node.properties.items():
                for index in self._node_property_indexes():
                    index.remove(label, key, value, node_id)
            self._composite_index.remove_item(label, node.properties, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_DELETE_NODE, node, None)
        return node

    def delete_relationship(self, rel_id: int) -> Relationship:
        """Delete a relationship, returning its pre-deletion snapshot."""
        rel = self.relationship(rel_id)
        del self._relationships[rel_id]
        self._outgoing.get(rel.start, set()).discard(rel_id)
        self._incoming.get(rel.end, set()).discard(rel_id)
        self._rel_types.remove(rel.type, rel_id)
        for key, value in rel.properties.items():
            self._rel_property_index.remove(rel.type, key, value, rel_id)
        self._touch_reachability(rel.type)
        if self._mutation_listeners:
            self._notify_mutation(OP_DELETE_RELATIONSHIP, rel, None)
        return rel

    def add_label(self, node_id: int, label: str) -> tuple[Node, Node]:
        """Add ``label`` to a node; returns (old snapshot, new snapshot).

        Adding a label the node already has is a no-op (old is new).
        """
        old = self.node(node_id)
        if label in old.labels:
            return old, old
        new = old.with_updates(labels=old.labels | {label})
        self._nodes[node_id] = new
        self._node_labels.add(label, node_id)
        for key, value in new.properties.items():
            for index in self._node_property_indexes():
                index.add(label, key, value, node_id)
        self._composite_index.add_item(label, new.properties, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_ASSIGN_LABEL, old, new)
        return old, new

    def remove_label(self, node_id: int, label: str) -> tuple[Node, Node]:
        """Remove ``label`` from a node; returns (old snapshot, new snapshot)."""
        old = self.node(node_id)
        if label not in old.labels:
            return old, old
        new = old.with_updates(labels=old.labels - {label})
        self._nodes[node_id] = new
        self._node_labels.remove(label, node_id)
        for key, value in old.properties.items():
            for index in self._node_property_indexes():
                index.remove(label, key, value, node_id)
        self._composite_index.remove_item(label, old.properties, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_REMOVE_LABEL, old, new)
        return old, new

    def set_node_property(self, node_id: int, key: str, value: Any) -> tuple[Node, Node]:
        """Set property ``key`` on a node; returns (old, new) snapshots.

        Setting a property to ``None`` removes it, per openCypher semantics.
        """
        old = self.node(node_id)
        if value is None:
            return self.remove_node_property(node_id, key)
        value = validate_property_value(value)
        props = dict(old.properties)
        previous = props.get(key)
        props[key] = value
        new = old.with_updates(properties=props)
        self._nodes[node_id] = new
        for label in old.labels:
            for index in self._node_property_indexes():
                if previous is not None:
                    index.remove(label, key, previous, node_id)
                index.add(label, key, value, node_id)
            self._composite_index.remove_item(label, old.properties, node_id)
            self._composite_index.add_item(label, new.properties, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_ASSIGN_PROPERTY, old, new)
        return old, new

    def remove_node_property(self, node_id: int, key: str) -> tuple[Node, Node]:
        """Remove property ``key`` from a node; returns (old, new) snapshots."""
        old = self.node(node_id)
        if key not in old.properties:
            return old, old
        props = dict(old.properties)
        previous = props.pop(key)
        new = old.with_updates(properties=props)
        self._nodes[node_id] = new
        for label in old.labels:
            for index in self._node_property_indexes():
                index.remove(label, key, previous, node_id)
            self._composite_index.remove_item(label, old.properties, node_id)
            self._composite_index.add_item(label, new.properties, node_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_REMOVE_PROPERTY, old, new)
        return old, new

    def set_relationship_property(
        self, rel_id: int, key: str, value: Any
    ) -> tuple[Relationship, Relationship]:
        """Set property ``key`` on a relationship; returns (old, new) snapshots."""
        old = self.relationship(rel_id)
        if value is None:
            return self.remove_relationship_property(rel_id, key)
        value = validate_property_value(value)
        props = dict(old.properties)
        previous = props.get(key)
        props[key] = value
        new = old.with_updates(properties=props)
        self._relationships[rel_id] = new
        if previous is not None:
            self._rel_property_index.remove(old.type, key, previous, rel_id)
        self._rel_property_index.add(old.type, key, value, rel_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_ASSIGN_PROPERTY, old, new)
        return old, new

    def remove_relationship_property(
        self, rel_id: int, key: str
    ) -> tuple[Relationship, Relationship]:
        """Remove property ``key`` from a relationship; returns (old, new)."""
        old = self.relationship(rel_id)
        if key not in old.properties:
            return old, old
        props = dict(old.properties)
        previous = props.pop(key)
        new = old.with_updates(properties=props)
        self._relationships[rel_id] = new
        self._rel_property_index.remove(old.type, key, previous, rel_id)
        if self._mutation_listeners:
            self._notify_mutation(OP_REMOVE_PROPERTY, old, new)
        return old, new

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Remove every node and relationship (indexes are preserved but emptied)."""
        self._nodes.clear()
        self._relationships.clear()
        self._outgoing.clear()
        self._incoming.clear()
        self._node_labels = LabelIndex()
        self._rel_types = LabelIndex()
        declared = self._property_index.indexed_pairs()
        self._property_index = PropertyIndex()
        for label, prop in declared:
            self._property_index.create(label, prop)
        declared_ranges = self._range_index.indexed_pairs()
        self._range_index = OrderedPropertyIndex()
        for label, prop in declared_ranges:
            self._range_index.create(label, prop)
        declared_rel = self._rel_property_index.indexed_pairs()
        self._rel_property_index = PropertyIndex()
        for rel_type, prop in declared_rel:
            self._rel_property_index.create(rel_type, prop)
        declared_composites = self._composite_index.indexed_keys()
        self._composite_index = CompositeIndex()
        for label, props in declared_composites:
            self._composite_index.create(label, props)
        self._reachability = {
            rel_type: ReachabilityIndex(rel_type) for rel_type in self._reachability
        }
        if self._mutation_listeners:
            self._notify_mutation(OP_BULK, None, None)

    def copy(self, name: str | None = None) -> "PropertyGraph":
        """Return an independent deep copy of the graph."""
        clone = PropertyGraph(name=name or f"{self.name}-copy")
        for node in self.nodes():
            clone.create_node(node.labels, dict(node.properties), node_id=node.id)
        for rel in self.relationships():
            clone.create_relationship(
                rel.type, rel.start, rel.end, dict(rel.properties), rel_id=rel.id
            )
        for label, prop in self.property_indexes():
            clone.create_property_index(label, prop)
        for label, prop in self.range_indexes():
            clone.create_range_index(label, prop)
        for rel_type, prop in self.relationship_property_indexes():
            clone.create_relationship_property_index(rel_type, prop)
        for label, props in self.composite_indexes():
            clone.create_composite_index(label, props)
        for rel_type in self.reachability_indexes():
            clone.create_reachability_index(rel_type)
        return clone

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _node_property_indexes(self) -> tuple:
        """The node property indexes every node mutation must maintain."""
        return (self._property_index, self._range_index)

    def _peek_node_id(self) -> int:
        """Smallest id that the node counter would produce next."""
        return max(self._nodes, default=-1) + 1

    def _peek_rel_id(self) -> int:
        """Smallest id that the relationship counter would produce next."""
        return max(self._relationships, default=-1) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PropertyGraph({self.name!r}, nodes={self.node_count()}, "
            f"relationships={self.relationship_count()})"
        )
