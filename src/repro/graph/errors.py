"""Exception hierarchy for the property graph substrate.

Every error raised by :mod:`repro.graph` derives from :class:`GraphError`,
so callers can catch a single base class when they do not care about the
specific failure mode.
"""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all property graph errors."""


class NodeNotFoundError(GraphError):
    """Raised when a node id does not exist (or refers to a deleted node)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id} does not exist")
        self.node_id = node_id


class RelationshipNotFoundError(GraphError):
    """Raised when a relationship id does not exist."""

    def __init__(self, rel_id: int) -> None:
        super().__init__(f"relationship {rel_id} does not exist")
        self.rel_id = rel_id


class NodeInUseError(GraphError):
    """Raised when deleting a node that still has attached relationships.

    Mirrors Neo4j behaviour: a plain ``DELETE`` fails, while ``DETACH
    DELETE`` removes the relationships first.
    """

    def __init__(self, node_id: int, degree: int) -> None:
        super().__init__(
            f"node {node_id} still has {degree} relationship(s); "
            "use detach deletion to remove them first"
        )
        self.node_id = node_id
        self.degree = degree


class InvalidPropertyValueError(GraphError):
    """Raised when a property value is not of a supported type."""


class GraphIntegrityError(GraphError):
    """Raised when an operation would corrupt graph invariants."""
