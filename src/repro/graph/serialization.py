"""JSON serialization for property graphs.

The format is a plain dictionary with ``nodes``, ``relationships`` and
``indexes`` arrays, so dumps are human-inspectable and diffable.  Dates and
datetimes are encoded as tagged objects to survive the round trip.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path
from typing import Any

from .store import PropertyGraph

FORMAT_VERSION = 1


def encode_value(value: Any) -> Any:
    """Encode a property value into a JSON-safe representation.

    Dates and datetimes become tagged objects; lists (and tuples, which the
    store normalises to lists) are encoded element-wise.  Values the store
    would reject (dicts, sets, arbitrary objects) raise ``ValueError`` here
    rather than producing a payload that cannot be decoded back — WAL and
    snapshot records must stay round-trippable.
    """
    if isinstance(value, _dt.datetime):
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$type": "date", "value": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ValueError(f"unserializable property value type: {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Decode a value previously produced by :func:`encode_value`."""
    if isinstance(value, dict) and "$type" in value:
        if value["$type"] == "datetime":
            return _dt.datetime.fromisoformat(value["value"])
        if value["$type"] == "date":
            return _dt.date.fromisoformat(value["value"])
        raise ValueError(f"unknown tagged value type: {value['$type']}")
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


#: Backwards-compatible aliases (the public names are new in the durability PR).
_encode_value = encode_value
_decode_value = decode_value


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Serialize ``graph`` into a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "id": node.id,
                "labels": sorted(node.labels),
                "properties": {k: _encode_value(v) for k, v in node.properties.items()},
            }
            for node in sorted(graph.nodes(), key=lambda n: n.id)
        ],
        "relationships": [
            {
                "id": rel.id,
                "type": rel.type,
                "start": rel.start,
                "end": rel.end,
                "properties": {k: _encode_value(v) for k, v in rel.properties.items()},
            }
            for rel in sorted(graph.relationships(), key=lambda r: r.id)
        ],
        "indexes": [list(pair) for pair in graph.property_indexes()],
        "range_indexes": [list(pair) for pair in graph.range_indexes()],
        "relationship_indexes": [
            list(pair) for pair in graph.relationship_property_indexes()
        ],
        "composite_indexes": [
            [label, list(props)] for label, props in graph.composite_indexes()
        ],
        "reachability_indexes": list(graph.reachability_indexes()),
    }


def graph_from_dict(payload: dict[str, Any]) -> PropertyGraph:
    """Rebuild a :class:`PropertyGraph` from :func:`graph_to_dict` output."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version: {version}")
    graph = PropertyGraph(name=payload.get("name", "graph"))
    for node in payload.get("nodes", ()):
        graph.create_node(
            labels=node.get("labels", ()),
            properties={k: _decode_value(v) for k, v in node.get("properties", {}).items()},
            node_id=node["id"],
        )
    for rel in payload.get("relationships", ()):
        graph.create_relationship(
            rel_type=rel["type"],
            start=rel["start"],
            end=rel["end"],
            properties={k: _decode_value(v) for k, v in rel.get("properties", {}).items()},
            rel_id=rel["id"],
        )
    for label, prop in payload.get("indexes", ()):
        graph.create_property_index(label, prop)
    for label, prop in payload.get("range_indexes", ()):
        graph.create_range_index(label, prop)
    for rel_type, prop in payload.get("relationship_indexes", ()):
        graph.create_relationship_property_index(rel_type, prop)
    for label, props in payload.get("composite_indexes", ()):
        graph.create_composite_index(label, props)
    for rel_type in payload.get("reachability_indexes", ()):
        graph.create_reachability_index(rel_type)
    return graph


def fingerprint(graph: PropertyGraph) -> str:
    """Canonical JSON of the graph's structural state (name excluded).

    Two graphs with identical nodes, relationships and index catalogs have
    identical fingerprints regardless of their ``name`` or the order their
    contents were inserted — the equality the durability tests assert
    between a surviving graph and its recovered twin.
    """
    payload = graph_to_dict(graph)
    payload.pop("name", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def dumps(graph: PropertyGraph, indent: int | None = 2) -> str:
    """Serialize ``graph`` to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=False)


def loads(text: str) -> PropertyGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: PropertyGraph, path: str | Path) -> None:
    """Write ``graph`` as JSON to ``path``."""
    Path(path).write_text(dumps(graph), encoding="utf-8")


def load(path: str | Path) -> PropertyGraph:
    """Read a graph previously written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
