"""Exception hierarchy for the Cypher-subset query engine."""

from __future__ import annotations


class CypherError(Exception):
    """Base class for all query engine errors."""


class CypherSyntaxError(CypherError):
    """Raised by the lexer/parser on malformed query text."""

    def __init__(self, message: str, position: int | None = None, line: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line})"
        elif position is not None:
            location = f" (offset {position})"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line


class CypherTypeError(CypherError):
    """Raised when an expression is applied to values of the wrong type."""


class CypherRuntimeError(CypherError):
    """Raised for runtime failures (unknown variables, deleted items, …)."""


class UnsupportedFeatureError(CypherError):
    """Raised when a query uses openCypher syntax outside the supported subset.

    The reproduction implements the subset needed by the paper's triggers
    and examples; anything else fails loudly instead of silently returning
    wrong answers.
    """
