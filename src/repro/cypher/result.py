"""Query results: the lazily-consumed :class:`Result` and its eager shim.

:class:`Result` is the driver-style result the public API hands out
(`GraphDatabase` / `GraphSession.run`): records stream out of the
executor's pull pipeline one at a time, so iterating stops the underlying
matching work as soon as the consumer does (``LIMIT``, :meth:`Result.single`,
an early ``break``).  :meth:`Result.consume` discards the remaining records
and returns a :class:`ResultSummary` with the write counters, the planner's
access-path description and wall-clock timings.

:class:`QueryResult` is the original eager result object, kept as a thin
**deprecated** compatibility shim: the executor still uses it internally
for fully-materialised execution, but new code should consume
:class:`Result` (every eager accessor — ``rows``, ``values``, ``len`` … —
exists on :class:`Result` too, at the cost of materialising the stream).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional


class ResultConsumedError(Exception):
    """Records were requested from a :class:`Result` that no longer has any.

    Raised — matching driver semantics — when a result is iterated (or
    ``peek``/``single``/eagerly accessed) after its record stream was
    finalised by :meth:`Result.consume`, :meth:`Result.close` or a
    previous full iteration.  The remaining records were discarded at that
    point; returning an empty iterator instead would silently hide the
    consumer bug.  ``summary()``/``consume()``/``keys()`` remain valid on
    a consumed result.
    """


@dataclass
class QueryStatistics:
    """Counters describing the write effects of one query execution."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    labels_added: int = 0
    labels_removed: int = 0
    properties_set: int = 0
    properties_removed: int = 0

    def contains_updates(self) -> bool:
        """True when the query changed anything."""
        return any(
            value
            for value in (
                self.nodes_created,
                self.nodes_deleted,
                self.relationships_created,
                self.relationships_deleted,
                self.labels_added,
                self.labels_removed,
                self.properties_set,
                self.properties_removed,
            )
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order, handy for asserts and reports)."""
        return {
            "nodes_created": self.nodes_created,
            "nodes_deleted": self.nodes_deleted,
            "relationships_created": self.relationships_created,
            "relationships_deleted": self.relationships_deleted,
            "labels_added": self.labels_added,
            "labels_removed": self.labels_removed,
            "properties_set": self.properties_set,
            "properties_removed": self.properties_removed,
        }


class ResultSummary:
    """Metadata about one executed query, available once its result is consumed.

    ``counters`` is the :class:`QueryStatistics` of the execution; ``plan``
    is the planner's EXPLAIN-style access-path description; the two timing
    fields are wall-clock milliseconds measured by the session
    (``result_available_after``: run() call to first record available;
    ``result_consumed_after``: run() call to stream exhausted).
    ``trigger_evaluation`` — present when the statement went through the
    trigger engine with triggers installed (streamed reads never do) —
    is the engine's per-trigger evaluation report at the time
    the statement finished: which tier handled each run (incremental /
    batched / sequential / predicate), demotions with reasons, and the
    condition views' maintenance counters.  Counters are cumulative over
    the session, so diffing two statements' summaries isolates one
    statement's work.
    """

    def __init__(
        self,
        *,
        query: str | None = None,
        parameters: Mapping[str, Any] | None = None,
        counters: QueryStatistics | None = None,
        plan: str | None = None,
        result_available_after: float | None = None,
        result_consumed_after: float | None = None,
        trigger_evaluation: Mapping[str, Any] | None = None,
    ) -> None:
        self.query = query
        self.parameters = dict(parameters or {})
        self.counters = counters if counters is not None else QueryStatistics()
        self.plan = plan
        self.result_available_after = result_available_after
        self.result_consumed_after = result_consumed_after
        self.trigger_evaluation = dict(trigger_evaluation) if trigger_evaluation else None

    @property
    def statistics(self) -> QueryStatistics:
        """Alias for :attr:`counters` (matches ``QueryResult.statistics``)."""
        return self.counters

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view, including the full counter dictionary."""
        return {
            "query": self.query,
            "parameters": dict(self.parameters),
            "counters": self.counters.as_dict(),
            "contains_updates": self.counters.contains_updates(),
            "plan": self.plan,
            "result_available_after": self.result_available_after,
            "result_consumed_after": self.result_consumed_after,
            "trigger_evaluation": self.trigger_evaluation,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSummary(query={self.query!r}, counters={self.counters.as_dict()})"


class Result:
    """A lazily-consumed stream of records (Neo4j-driver style).

    Iterate it once to pull records straight out of the execution
    pipeline; use :meth:`peek`/:meth:`single` for point consumption and
    :meth:`consume` to discard the rest and obtain the
    :class:`ResultSummary`.  The eager accessors inherited from the old
    :class:`QueryResult` API (``rows``, ``values``, ``to_table``,
    ``len``, truthiness) remain available — they materialise whatever has
    not been consumed yet, trading the streaming memory profile for
    random access.

    ``on_success``/``on_failure`` are finalisation callbacks invoked
    exactly once when the stream is exhausted, consumed or closed
    (``on_success``) or when pulling a record raises (``on_failure``);
    the session uses them to commit or roll back the auto-commit
    transaction backing a streamed read.
    """

    def __init__(
        self,
        columns: Iterable[str],
        records: Iterable[dict[str, Any]],
        statistics: QueryStatistics | None = None,
        *,
        query: str | None = None,
        parameters: Mapping[str, Any] | None = None,
        plan: str | None = None,
        on_success: Callable[[], None] | None = None,
        on_failure: Callable[[], None] | None = None,
        started: float | None = None,
        available_after: float | None = None,
        trigger_evaluation: Mapping[str, Any] | None = None,
    ) -> None:
        self.columns = list(columns)
        self.statistics = statistics if statistics is not None else QueryStatistics()
        self._iterator: Iterator[dict[str, Any]] = iter(records)
        self._peeked: list[dict[str, Any]] = []
        self._materialized: Optional[list[dict[str, Any]]] = None
        self._cursor = 0
        self._finalized = False
        self._failed = False
        self._on_success = on_success
        self._on_failure = on_failure
        self._started = started
        self._summary = ResultSummary(
            query=query,
            parameters=parameters,
            counters=self.statistics,
            plan=plan,
            result_available_after=available_after,
            trigger_evaluation=trigger_evaluation,
        )

    # ------------------------------------------------------------------
    # streaming consumption
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, Any]]:
        self._require_records()
        return self

    def __next__(self) -> dict[str, Any]:
        if self._peeked:
            return self._peeked.pop(0)
        if self._materialized is not None:
            if self._cursor < len(self._materialized):
                record = self._materialized[self._cursor]
                self._cursor += 1
                return record
            raise StopIteration
        return self._pull()

    def _require_records(self) -> None:
        """Guard record access on a finalised, non-materialised result.

        Once the stream was finalised without buffering (a completed
        iteration, :meth:`consume` or :meth:`close`), the records are gone
        for good — consuming the result a second time is a caller bug that
        must surface, not an empty iterator.  Materialised (eager) results
        keep their buffer and stay freely re-readable.
        """
        if self._finalized and self._materialized is None:
            raise ResultConsumedError(
                "The result has already been consumed: its records were streamed "
                "out (or discarded by consume()/close()) and are no longer "
                "available.  Re-run the query, or materialise the result with "
                ".rows before consuming it."
            )

    def _pull(self) -> dict[str, Any]:
        self._require_records()
        try:
            return next(self._iterator)
        except StopIteration:
            self._finalize(success=True)
            raise
        except Exception:
            self._finalize(success=False)
            raise

    def _next_or_none(self) -> Optional[dict[str, Any]]:
        try:
            return next(self)
        except StopIteration:
            return None

    def peek(self) -> Optional[dict[str, Any]]:
        """The next record without consuming it, or None at end of stream."""
        if self._peeked:
            return self._peeked[0]
        if self._materialized is not None:
            if self._cursor < len(self._materialized):
                return self._materialized[self._cursor]
            return None
        try:
            record = self._pull()
        except StopIteration:
            return None
        self._peeked.append(record)
        return record

    def single(self, column: str | None = None) -> Any:
        """The single value of a single-record result.

        Pulls at most two records, so a unique-match query terminates as
        early as iterating would.  With ``column`` (or a single-column
        result) returns that value; otherwise the whole record.
        """
        first = self._next_or_none()
        if first is None:
            raise ValueError("expected exactly one row, got 0")
        if self._next_or_none() is not None:
            # Finalise before raising: the backing transaction of a
            # streamed read must not stay open behind the error.
            self.close()
            raise ValueError("expected exactly one row, got at least 2")
        if column is not None or len(self.columns) == 1:
            return first[column if column is not None else self.columns[0]]
        return dict(first)

    def consume(self) -> ResultSummary:
        """Discard any remaining records and return the :class:`ResultSummary`."""
        if self._materialized is None and not self._finalized:
            try:
                for _ in self._iterator:
                    pass
            except Exception:
                self._finalize(success=False)
                raise
            self._finalize(success=True)
        self._peeked.clear()
        if self._materialized is not None:
            self._cursor = len(self._materialized)
        return self._summary

    def close(self) -> None:
        """Finalise without evaluating the remaining records.

        Unlike :meth:`consume` this does not pull the rest of the stream;
        any pending matching work is simply abandoned and no further
        records come out (buffered or not).
        """
        self._peeked.clear()
        self._iterator = iter(())
        if self._materialized is not None:
            self._cursor = len(self._materialized)
        self._finalize(success=True)

    def summary(self) -> ResultSummary:
        """The summary accumulated so far (final once the result is consumed)."""
        return self._summary

    def keys(self) -> list[str]:
        """The result's column names (driver naming for :attr:`columns`)."""
        return list(self.columns)

    @property
    def consumed(self) -> bool:
        """True once the underlying stream has been finalised."""
        return self._finalized

    def _finalize(self, success: bool) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._failed = not success
        if self._started is not None and self._summary.result_consumed_after is None:
            # Materialised results record their true execution time up
            # front; don't overwrite it with caller idle time at drain.
            self._summary.result_consumed_after = (time.perf_counter() - self._started) * 1000
        callback = self._on_success if success else self._on_failure
        self._on_success = None
        self._on_failure = None
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    # eager compatibility surface (materialises the remaining stream)
    # ------------------------------------------------------------------

    def _fill(self) -> None:
        """Buffer every record not yet consumed and switch to list mode.

        Iteration after this keeps working (over the buffer) without
        mutating lists handed out to callers.
        """
        if self._materialized is None:
            self._require_records()
            drained = list(self._peeked)
            self._peeked.clear()
            if not self._finalized:
                try:
                    drained.extend(self._iterator)
                except Exception:
                    self._finalize(success=False)
                    raise
                self._finalize(success=True)
            self._materialized = drained
            self._cursor = 0

    def _materialize(self) -> list[dict[str, Any]]:
        """The not-yet-iterated records, buffering the stream on first use."""
        self._fill()
        if self._cursor == 0:
            return self._materialized
        return self._materialized[self._cursor :]

    @property
    def rows(self) -> list[dict[str, Any]]:
        """All remaining records as a list (deprecated eager access).

        Before any iteration this is the backing list itself (matching the
        old ``QueryResult.rows`` field); after partial iteration it is a
        snapshot of the remainder.
        """
        return self._materialize()

    def __len__(self) -> int:
        return len(self._materialize())

    def __bool__(self) -> bool:
        return self.peek() is not None

    def values(self, column: str | None = None) -> list[Any]:
        """Values of one column (default: the only column)."""
        if column is None:
            if len(self.columns) != 1:
                raise ValueError("values() without a column name requires exactly one column")
            column = self.columns[0]
        return [record[column] for record in self._materialize()]

    def to_table(self) -> str:
        """Render the remaining records as a fixed-width text table."""
        return _render_table(self.columns, self._materialize())


@dataclass
class QueryResult:
    """The eager outcome of executing one query.

    .. deprecated::
        Public code should consume the streaming :class:`Result` returned
        by ``GraphSession.run`` / the ``GraphDatabase`` facade instead;
        ``QueryResult`` remains the internal shape of fully-materialised
        execution (``QueryExecutor.execute``) and a compatibility shim for
        callers that predate the driver API.

    ``columns`` and ``rows`` are empty for write-only queries (no RETURN).
    Rows are plain dictionaries keyed by column name.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def values(self, column: str | None = None) -> list[Any]:
        """Values of one column (default: the only column)."""
        if column is None:
            if len(self.columns) != 1:
                raise ValueError("values() without a column name requires exactly one column")
            column = self.columns[0]
        return [row[column] for row in self.rows]

    def single(self, column: str | None = None) -> Any:
        """The single value of a single-row result."""
        if len(self.rows) != 1:
            raise ValueError(f"expected exactly one row, got {len(self.rows)}")
        values = self.values(column) if (column or len(self.columns) == 1) else None
        if values is not None:
            return values[0]
        return dict(self.rows[0])

    def to_table(self) -> str:
        """Render the result as a fixed-width text table (for examples/benchmarks)."""
        return _render_table(self.columns, self.rows)


def _render_table(columns: list[str], rows: list[dict[str, Any]]) -> str:
    if not columns:
        return "(no results)"
    headers = list(columns)
    body = [[_render_cell(row.get(col)) for col in headers] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, Mapping):
        return "{" + ", ".join(f"{k}: {_render_cell(v)}" for k, v in value.items()) + "}"
    return str(value)
