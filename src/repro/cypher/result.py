"""Query results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping


@dataclass
class QueryStatistics:
    """Counters describing the write effects of one query execution."""

    nodes_created: int = 0
    nodes_deleted: int = 0
    relationships_created: int = 0
    relationships_deleted: int = 0
    labels_added: int = 0
    labels_removed: int = 0
    properties_set: int = 0
    properties_removed: int = 0

    def contains_updates(self) -> bool:
        """True when the query changed anything."""
        return any(
            value
            for value in (
                self.nodes_created,
                self.nodes_deleted,
                self.relationships_created,
                self.relationships_deleted,
                self.labels_added,
                self.labels_removed,
                self.properties_set,
                self.properties_removed,
            )
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order, handy for asserts and reports)."""
        return {
            "nodes_created": self.nodes_created,
            "nodes_deleted": self.nodes_deleted,
            "relationships_created": self.relationships_created,
            "relationships_deleted": self.relationships_deleted,
            "labels_added": self.labels_added,
            "labels_removed": self.labels_removed,
            "properties_set": self.properties_set,
            "properties_removed": self.properties_removed,
        }


@dataclass
class QueryResult:
    """The outcome of executing one query.

    ``columns`` and ``rows`` are empty for write-only queries (no RETURN).
    Rows are plain dictionaries keyed by column name.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def values(self, column: str | None = None) -> list[Any]:
        """Values of one column (default: the only column)."""
        if column is None:
            if len(self.columns) != 1:
                raise ValueError("values() without a column name requires exactly one column")
            column = self.columns[0]
        return [row[column] for row in self.rows]

    def single(self, column: str | None = None) -> Any:
        """The single value of a single-row result."""
        if len(self.rows) != 1:
            raise ValueError(f"expected exactly one row, got {len(self.rows)}")
        values = self.values(column) if (column or len(self.columns) == 1) else None
        if values is not None:
            return values[0]
        return dict(self.rows[0])

    def to_table(self) -> str:
        """Render the result as a fixed-width text table (for examples/benchmarks)."""
        if not self.columns:
            return "(no results)"
        headers = list(self.columns)
        body = [[_render_cell(row.get(col)) for col in headers] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def _render_cell(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, Mapping):
        return "{" + ", ".join(f"{k}: {_render_cell(v)}" for k, v in value.items()) + "}"
    return str(value)
