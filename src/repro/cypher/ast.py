"""Abstract syntax tree for the Cypher subset.

Two families of nodes:

* *expressions* — anything that evaluates to a value within one binding row;
* *clauses* — the pipeline stages of a query (MATCH, WITH, CREATE, …).

All nodes are plain frozen dataclasses; evaluation logic lives in
:mod:`repro.cypher.expressions` and :mod:`repro.cypher.executor` so that
the AST can also be inspected and rewritten (the PG-Trigger legality check
walks it to find label writes, and the APOC/Memgraph translators reuse the
parsed condition/statement text).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value (number, string, boolean or null)."""

    value: Any


@dataclass(frozen=True)
class ListLiteral(Expression):
    """A list literal ``[e1, e2, …]``."""

    items: tuple[Expression, ...]


@dataclass(frozen=True)
class MapLiteral(Expression):
    """A map literal ``{key: expr, …}``."""

    entries: tuple[tuple[str, Expression], ...]


@dataclass(frozen=True)
class Parameter(Expression):
    """A query parameter ``$name``."""

    name: str


@dataclass(frozen=True)
class Variable(Expression):
    """A reference to a bound variable."""

    name: str


@dataclass(frozen=True)
class PropertyAccess(Expression):
    """``subject.key`` property access."""

    subject: Expression
    key: str


@dataclass(frozen=True)
class LabelPredicate(Expression):
    """``subject:Label1:Label2`` — true when the item has all the labels.

    This appears in WHERE clauses and in the conditions of APOC-style
    translations (``nodes:label AND condition``).
    """

    subject: Expression
    labels: tuple[str, ...]


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator application (``NOT x``, ``-x``)."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator application."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: Expression
    negated: bool


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function invocation; ``distinct`` is used by aggregates."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CountStar(Expression):
    """``count(*)``."""


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Searched CASE: ``CASE WHEN cond THEN value … ELSE default END``.

    Simple CASE (``CASE expr WHEN value THEN …``) is normalised by the
    parser into the searched form with equality comparisons.
    """

    whens: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression]


@dataclass(frozen=True)
class ListIndex(Expression):
    """``list[index]``."""

    subject: Expression
    index: Expression


@dataclass(frozen=True)
class ExistsPattern(Expression):
    """``EXISTS (pattern)`` or ``EXISTS { MATCH … [WHERE …] }``."""

    patterns: tuple["PathPattern", ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[var IN list WHERE cond | projection]``."""

    variable: str
    source: Expression
    where: Optional[Expression]
    projection: Optional[Expression]


# ---------------------------------------------------------------------------
# patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    """``(var:Label1:Label2 {prop: expr})``."""

    variable: Optional[str]
    labels: tuple[str, ...] = ()
    properties: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class RelationshipPattern:
    """``-[var:TYPE1|TYPE2 {prop: expr} *min..max]->`` and variants.

    ``direction`` is ``"out"`` (left to right), ``"in"`` (right to left) or
    ``"both"`` (undirected).  ``min_hops``/``max_hops`` are ``None`` for a
    plain single-hop relationship.
    """

    variable: Optional[str]
    types: tuple[str, ...] = ()
    properties: tuple[tuple[str, Expression], ...] = ()
    direction: str = "both"
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None

    @property
    def is_variable_length(self) -> bool:
        """True for ``*`` patterns."""
        return self.min_hops is not None or self.max_hops is not None


@dataclass(frozen=True)
class PathPattern:
    """An alternating sequence node, rel, node, rel, … starting/ending with nodes.

    ``shortest`` is ``"shortestPath"`` when the pattern was wrapped in that
    function (the only supported selector), ``None`` for a plain pattern.
    """

    elements: tuple[Union[NodePattern, RelationshipPattern], ...]
    variable: Optional[str] = None
    shortest: Optional[str] = None

    @property
    def nodes(self) -> tuple[NodePattern, ...]:
        """The node patterns, in order."""
        return tuple(e for e in self.elements if isinstance(e, NodePattern))

    @property
    def relationships(self) -> tuple[RelationshipPattern, ...]:
        """The relationship patterns, in order."""
        return tuple(e for e in self.elements if isinstance(e, RelationshipPattern))


# ---------------------------------------------------------------------------
# clause building blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProjectionItem:
    """One item of a WITH/RETURN projection (``expr AS alias``)."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        return expression_text(self.expression)


@dataclass(frozen=True)
class SortItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


# ---------------------------------------------------------------------------
# clauses
# ---------------------------------------------------------------------------


class Clause:
    """Marker base class for clause nodes."""


@dataclass(frozen=True)
class MatchClause(Clause):
    """``[OPTIONAL] MATCH patterns [WHERE expr]``."""

    patterns: tuple[PathPattern, ...]
    where: Optional[Expression] = None
    optional: bool = False


@dataclass(frozen=True)
class UnwindClause(Clause):
    """``UNWIND expr AS var``."""

    expression: Expression
    variable: str


@dataclass(frozen=True)
class WithClause(Clause):
    """``WITH [DISTINCT] items [ORDER BY …] [SKIP n] [LIMIT n] [WHERE expr]``."""

    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: tuple[SortItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    where: Optional[Expression] = None
    include_wildcard: bool = False


@dataclass(frozen=True)
class ReturnClause(Clause):
    """``RETURN [DISTINCT] items [ORDER BY …] [SKIP n] [LIMIT n]``."""

    items: tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: tuple[SortItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    include_wildcard: bool = False


@dataclass(frozen=True)
class CreateClause(Clause):
    """``CREATE patterns``."""

    patterns: tuple[PathPattern, ...]


@dataclass(frozen=True)
class MergeClause(Clause):
    """``MERGE pattern`` — match-or-create for a single path pattern."""

    pattern: PathPattern


@dataclass(frozen=True)
class SetPropertyItem:
    """``SET subject.key = expr``."""

    subject: str
    key: str
    value: Expression


@dataclass(frozen=True)
class SetLabelsItem:
    """``SET subject:Label1:Label2``."""

    subject: str
    labels: tuple[str, ...]


@dataclass(frozen=True)
class SetFromMapItem:
    """``SET subject += {…}`` (merge) or ``SET subject = {…}`` (replace)."""

    subject: str
    value: Expression
    replace: bool = False


SetItem = Union[SetPropertyItem, SetLabelsItem, SetFromMapItem]


@dataclass(frozen=True)
class SetClause(Clause):
    """``SET item, item, …``."""

    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class RemovePropertyItem:
    """``REMOVE subject.key``."""

    subject: str
    key: str


@dataclass(frozen=True)
class RemoveLabelsItem:
    """``REMOVE subject:Label``."""

    subject: str
    labels: tuple[str, ...]


RemoveItem = Union[RemovePropertyItem, RemoveLabelsItem]


@dataclass(frozen=True)
class RemoveClause(Clause):
    """``REMOVE item, item, …``."""

    items: tuple[RemoveItem, ...]


@dataclass(frozen=True)
class DeleteClause(Clause):
    """``[DETACH] DELETE expr, expr, …``."""

    expressions: tuple[Expression, ...]
    detach: bool = False


@dataclass(frozen=True)
class ForeachClause(Clause):
    """``FOREACH (var IN list | update clauses)``."""

    variable: str
    source: Expression
    body: tuple[Clause, ...]


@dataclass(frozen=True)
class CallClause(Clause):
    """``CALL procedure(args…) [YIELD name [AS alias], …]``.

    Procedures are looked up in the executor's procedure registry; the APOC
    emulation layer registers ``apoc.do.when`` and friends there so that the
    paper's translated triggers are executable.
    """

    procedure: str
    arguments: tuple[Expression, ...]
    yield_items: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class Query:
    """A full query: an ordered sequence of clauses."""

    clauses: tuple[Clause, ...]

    @property
    def is_read_only(self) -> bool:
        """True when the query contains no write clauses."""
        return not any(
            isinstance(c, (CreateClause, MergeClause, SetClause, RemoveClause,
                           DeleteClause, ForeachClause, CallClause))
            for c in self.clauses
        )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def expression_text(expr: Expression) -> str:
    """Render an expression back to approximate query text.

    Used for auto-generated column names (``RETURN n.name`` yields a column
    called ``n.name``) and for diagnostics; it is not guaranteed to be
    re-parseable for every node type.
    """
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        if expr.value is None:
            return "null"
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        return str(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, Parameter):
        return f"${expr.name}"
    if isinstance(expr, PropertyAccess):
        return f"{expression_text(expr.subject)}.{expr.key}"
    if isinstance(expr, LabelPredicate):
        labels = "".join(f":{label}" for label in expr.labels)
        return f"{expression_text(expr.subject)}{labels}"
    if isinstance(expr, FunctionCall):
        args = ", ".join(expression_text(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, CountStar):
        return "count(*)"
    if isinstance(expr, BinaryOp):
        return f"{expression_text(expr.left)} {expr.op} {expression_text(expr.right)}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op} {expression_text(expr.operand)}"
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{expression_text(expr.operand)} {suffix}"
    if isinstance(expr, ListLiteral):
        return "[" + ", ".join(expression_text(i) for i in expr.items) + "]"
    if isinstance(expr, MapLiteral):
        inner = ", ".join(f"{k}: {expression_text(v)}" for k, v in expr.entries)
        return "{" + inner + "}"
    if isinstance(expr, ListIndex):
        return f"{expression_text(expr.subject)}[{expression_text(expr.index)}]"
    if isinstance(expr, CaseExpression):
        return "CASE … END"
    if isinstance(expr, ExistsPattern):
        return "EXISTS { … }"
    if isinstance(expr, ListComprehension):
        return f"[{expr.variable} IN {expression_text(expr.source)} …]"
    return expr.__class__.__name__


def walk_expression(expr: Expression) -> Sequence[Expression]:
    """Yield ``expr`` and every sub-expression (pre-order)."""
    out: list[Expression] = [expr]
    children: tuple[Expression, ...] = ()
    if isinstance(expr, (UnaryOp,)):
        children = (expr.operand,)
    elif isinstance(expr, BinaryOp):
        children = (expr.left, expr.right)
    elif isinstance(expr, IsNull):
        children = (expr.operand,)
    elif isinstance(expr, PropertyAccess):
        children = (expr.subject,)
    elif isinstance(expr, LabelPredicate):
        children = (expr.subject,)
    elif isinstance(expr, FunctionCall):
        children = expr.args
    elif isinstance(expr, ListLiteral):
        children = expr.items
    elif isinstance(expr, MapLiteral):
        children = tuple(v for _, v in expr.entries)
    elif isinstance(expr, ListIndex):
        children = (expr.subject, expr.index)
    elif isinstance(expr, CaseExpression):
        pairs: list[Expression] = []
        for cond, value in expr.whens:
            pairs.extend((cond, value))
        if expr.default is not None:
            pairs.append(expr.default)
        children = tuple(pairs)
    elif isinstance(expr, ExistsPattern):
        extra: list[Expression] = []
        if expr.where is not None:
            extra.append(expr.where)
        for pattern in expr.patterns:
            for element in pattern.elements:
                for _, value in element.properties:
                    extra.append(value)
        children = tuple(extra)
    elif isinstance(expr, ListComprehension):
        parts: list[Expression] = [expr.source]
        if expr.where is not None:
            parts.append(expr.where)
        if expr.projection is not None:
            parts.append(expr.projection)
        children = tuple(parts)
    for child in children:
        out.extend(walk_expression(child))
    return out


def expression_variable_names(expr: Expression) -> set[str]:
    """Row variables an expression may read (conservative superset).

    Collects every :class:`Variable` name plus the element variables of
    EXISTS sub-patterns — those are references into the row too, but
    :func:`walk_expression` does not surface them as Variable nodes.
    Used by the planner (reorder-decline checks) and the executor (match
    memoization keys); both must see the identical dependency set.
    """
    names: set[str] = set()
    for sub in walk_expression(expr):
        if isinstance(sub, Variable):
            names.add(sub.name)
        elif isinstance(sub, ExistsPattern):
            for pattern in sub.patterns:
                for element in pattern.elements:
                    if element.variable is not None:
                        names.add(element.variable)
    return names
