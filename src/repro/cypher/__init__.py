"""openCypher-subset query engine.

Typical usage::

    from repro.cypher import execute
    from repro.graph import PropertyGraph

    graph = PropertyGraph()
    execute(graph, "CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
    result = execute(graph, "MATCH (h:Hospital) RETURN h.name AS name")
    print(result.values("name"))

For transactional execution (and therefore trigger-visible change capture),
construct a :class:`QueryExecutor` with an explicit
:class:`~repro.tx.transaction.Transaction`, or use the higher-level
:class:`repro.triggers.session.GraphSession`.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Mapping

from ..graph.store import PropertyGraph
from ..tx.transaction import Transaction
from .ast import Query, expression_text
from .errors import (
    CypherError,
    CypherRuntimeError,
    CypherSyntaxError,
    CypherTypeError,
    UnsupportedFeatureError,
)
from .executor import ProcedureInvocation, QueryExecutor, query_is_read_only
from .expressions import EvaluationContext, evaluate
from .parser import parse_expression, parse_query
from .planner import (
    PLAN_CACHE,
    AccessPath,
    PlanCache,
    QueryPlan,
    explain,
    plan_query,
)
from .result import QueryResult, QueryStatistics, Result, ResultConsumedError, ResultSummary

__all__ = [
    "AccessPath",
    "CypherError",
    "CypherRuntimeError",
    "CypherSyntaxError",
    "CypherTypeError",
    "EvaluationContext",
    "PLAN_CACHE",
    "PlanCache",
    "ProcedureInvocation",
    "Query",
    "QueryExecutor",
    "QueryPlan",
    "QueryResult",
    "QueryStatistics",
    "Result",
    "ResultConsumedError",
    "ResultSummary",
    "UnsupportedFeatureError",
    "evaluate",
    "execute",
    "explain",
    "expression_text",
    "parse_expression",
    "parse_query",
    "plan_query",
    "query_is_read_only",
]


def execute(
    graph: PropertyGraph,
    query: str | Query,
    parameters: Mapping[str, Any] | None = None,
    transaction: Transaction | None = None,
    bindings: Mapping[str, Any] | None = None,
    clock: Callable[[], _dt.datetime] | None = None,
) -> QueryResult:
    """Execute a single query against ``graph`` and return its result.

    This convenience wrapper creates a fresh :class:`QueryExecutor` per
    call; pass ``transaction`` to make the writes part of a larger unit of
    work (and visible to trigger change capture).
    """
    executor = QueryExecutor(
        graph,
        transaction=transaction,
        parameters=parameters,
        clock=clock,
    )
    return executor.execute(query, bindings=bindings)
