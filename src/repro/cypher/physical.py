"""Physical operators — the vocabulary the planner lowers queries into.

This module is the data model of the *physical plan layer*: the planner
(:mod:`repro.cypher.planner`) turns each clause of a parsed query into a
tree of the operators below, and the executor
(:mod:`repro.cypher.executor`) interprets that tree instead of re-deriving
strategy per clause.  ``EXPLAIN`` output is the ``describe()`` rendering of
these operators, each annotated with the cardinality estimate the planner
used when choosing it.

Operator vocabulary
-------------------

Start operators — how a pattern's candidate set is produced
(:class:`AccessPath`, discriminated by ``kind``):

* ``AllNodesScan`` — every node (no label, no usable index);
* ``LabelScan(L1|L2)`` — the most selective label bucket;
* ``VirtualLabelScan(L)`` — a query-scoped virtual-label id set (the
  trigger engine's transition variables);
* ``IndexSeek(L.p = v)`` — equality probe into an exact-match or ordered
  property index;
* ``IndexSeek(L.p IN [...])`` — union of equality probes, one per list
  element;
* ``IndexRangeSeek(L.p > lo AND L.p <= hi)`` — sorted-index range seek
  over the ordered property index;
* ``RelIndexSeek(T.p = v)`` — equality probe into a relationship-property
  index; the pattern is matched outward from the seeked relationships.

Pattern operators:

* :class:`Expand` — one fixed relationship hop of a path pattern;
* :class:`VarLengthExpand` — a ``-[:R*min..max]->`` hop: DFS frontier
  expansion with relationship-uniqueness, or an interval-containment range
  scan when a :class:`~repro.paths.accelerator.ReachabilityIndex` applies
  (``mode`` records which route the planner expects);
* :class:`ShortestPath` — a ``shortestPath(...)`` pattern: bidirectional
  BFS when both endpoints are bound, single-source BFS otherwise;
* :class:`Filter` — a clause-level WHERE predicate (always re-evaluated,
  whatever the access path already guaranteed).

Join operators (between the disconnected pattern groups of one MATCH):

* :class:`HashJoin` — build a hash table over the new pattern's rows keyed
  by cross-group WHERE equality conjuncts, probe it with each partial row;
* :class:`CartesianProduct` — no usable key: the new pattern's rows are
  materialised once and replayed per partial row (still strictly better
  than re-matching the pattern per row, which is what the nested-loop
  baseline does).

Projection operators:

* :class:`TopK` — heap-based ORDER BY + LIMIT: keeps only ``skip+limit``
  rows in memory instead of sorting the full input;
* :class:`Sort` — full sort (ORDER BY without LIMIT);
* :class:`Aggregate` — grouped aggregation (a pipeline breaker).

Every operator is *advisory*: the executor re-verifies labels, properties
and the WHERE clause on each candidate, so a wrong plan can cost
performance but never change results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..paths.accelerator import reachability_applicable
from .ast import Expression, NodePattern, RelationshipPattern, expression_text

#: Access-path kinds, in decreasing priority.
COMPOSITE = "composite"
INDEX = "index"
IN_LIST = "in"
RANGE = "range"
REL_INDEX = "rel_index"
VIRTUAL = "virtual"
LABEL = "label"
SCAN = "scan"
#: Not selectivity-ranked: chosen only to serve an ORDER BY, never to shrink
#: the candidate set (it emits the whole label in index order).
ORDERED = "ordered"


def format_rows(estimate: float) -> str:
    """Compact human-readable row estimate for EXPLAIN output."""
    if estimate >= 100:
        return str(int(round(estimate)))
    return f"{round(estimate, 2):g}"


def _est(estimate: float) -> str:
    return f" est~{format_rows(estimate)} rows"


@dataclass(frozen=True)
class AccessPath:
    """The start operator of one pattern: how its candidate set is produced.

    One dataclass discriminated by ``kind`` rather than a subclass per
    operator, so plans stay cheap to build and trivially hashable; the
    ``describe()`` rendering is what gives each kind its EXPLAIN name.
    """

    kind: str
    #: Label of the index / virtual-label entry (seek kinds / ``virtual``).
    label: Optional[str] = None
    #: Indexed property (seek kinds only).
    property: Optional[str] = None
    #: Expression producing the looked-up value (``index``: the equality
    #: value; ``in``: the whole list expression).  Always a literal or
    #: parameter (or a list of them), so it never depends on other pattern
    #: variables.
    value: Optional[Expression] = None
    #: Candidate real labels for a ``label`` scan (the executor picks the
    #: most selective one at run time, so counts never go stale).
    labels: tuple[str, ...] = ()
    #: Range bounds (``range`` only); ``None`` means unbounded on that side.
    lower: Optional[Expression] = None
    upper: Optional[Expression] = None
    include_lower: bool = False
    include_upper: bool = False
    #: Relationship type of a ``rel_index`` seek.
    rel_type: Optional[str] = None
    #: Direction of the seeked relationship pattern (``rel_index`` only).
    direction: str = "both"
    #: Properties and value expressions of a ``composite`` seek (aligned).
    properties: tuple[str, ...] = ()
    values: tuple[Expression, ...] = ()
    #: Sort direction of an ``ordered`` scan.
    descending: bool = False
    #: Planner cardinality estimate for this operator's output.
    estimated_rows: float = 0.0

    def describe(self) -> str:
        """One-line human-readable rendering (used by EXPLAIN output)."""
        if self.kind == COMPOSITE:
            pairs = ", ".join(
                f"{prop} = {expression_text(value)}"
                for prop, value in zip(self.properties, self.values)
            )
            return (
                f"CompositeIndexSeek({self.label}({pairs}))"
                + _est(self.estimated_rows)
            )
        if self.kind == ORDERED:
            order = "DESC" if self.descending else "ASC"
            return (
                f"OrderedIndexScan({self.label}.{self.property} {order})"
                + _est(self.estimated_rows)
            )
        if self.kind == INDEX:
            return (
                f"IndexSeek({self.label}.{self.property} = "
                f"{expression_text(self.value)})" + _est(self.estimated_rows)
            )
        if self.kind == IN_LIST:
            return (
                f"IndexSeek({self.label}.{self.property} IN "
                f"{expression_text(self.value)})" + _est(self.estimated_rows)
            )
        if self.kind == RANGE:
            parts = []
            if self.lower is not None:
                op = ">=" if self.include_lower else ">"
                parts.append(
                    f"{self.label}.{self.property} {op} {expression_text(self.lower)}"
                )
            if self.upper is not None:
                op = "<=" if self.include_upper else "<"
                parts.append(
                    f"{self.label}.{self.property} {op} {expression_text(self.upper)}"
                )
            return "IndexRangeSeek(" + " AND ".join(parts) + ")" + _est(self.estimated_rows)
        if self.kind == REL_INDEX:
            return (
                f"RelIndexSeek({self.rel_type}.{self.property} = "
                f"{expression_text(self.value)})" + _est(self.estimated_rows)
            )
        if self.kind == VIRTUAL:
            return f"VirtualLabelScan({self.label})"
        if self.kind == LABEL:
            return "LabelScan(" + "|".join(self.labels) + ")" + _est(self.estimated_rows)
        return "AllNodesScan" + _est(self.estimated_rows)


@dataclass(frozen=True)
class Expand:
    """One relationship hop of a path pattern (EXPLAIN bookkeeping).

    The executor walks the pattern elements directly; this operator records
    the hop's shape and the planner's running cardinality estimate so
    EXPLAIN can show where a plan expects its rows to multiply.
    """

    types: tuple[str, ...] = ()
    direction: str = "both"
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None
    target_labels: tuple[str, ...] = ()
    estimated_rows: float = 0.0

    @property
    def is_variable_length(self) -> bool:
        return self.min_hops is not None or self.max_hops is not None

    def describe(self) -> str:
        spec = ":" + "|".join(self.types) if self.types else ""
        if self.is_variable_length:
            low = self.min_hops if self.min_hops is not None else 1
            high = self.max_hops if self.max_hops is not None else ""
            spec += f"*{low}..{high}"
        left = "<-" if self.direction == "in" else "-"
        right = "->" if self.direction == "out" else "-"
        target = ":" + ":".join(self.target_labels) if self.target_labels else ""
        return f"Expand({left}[{spec}]{right}({target}))" + _est(self.estimated_rows)


def _hop_spec(types: tuple[str, ...], min_hops, max_hops, direction: str) -> str:
    """The ``-[:T*lo..hi]->`` fragment shared by the path operators."""
    spec = ":" + "|".join(types) if types else ""
    low = min_hops if min_hops is not None else 1
    high = max_hops if max_hops is not None else ""
    spec += f"*{low}..{high}"
    left = "<-" if direction == "in" else "-"
    right = "->" if direction == "out" else "-"
    return f"{left}[{spec}]{right}"


@dataclass(frozen=True)
class VarLengthExpand:
    """A variable-length hop of a path pattern (EXPLAIN bookkeeping).

    Like :class:`Expand` this is advisory: the executor walks the pattern
    elements directly and re-derives the route.  ``mode`` records the
    strategy the planner expects — ``"dfs"`` for iterative depth-first
    frontier expansion with relationship-uniqueness, ``"reachability"``
    when a declared :class:`~repro.paths.accelerator.ReachabilityIndex`
    covers the hop and the expansion collapses to an interval range scan.
    The executor may still fall back from ``reachability`` to ``dfs`` at
    run time (index declined on a non-forest shape, stale applicability),
    which costs time, never correctness.
    """

    types: tuple[str, ...] = ()
    direction: str = "both"
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None
    target_labels: tuple[str, ...] = ()
    mode: str = "dfs"
    #: For ``mode="reachability"``: the sub-route the accelerator's cost
    #: model picked at plan time (``"interval"`` or ``"dfs"``) and why.
    #: Advisory — the index re-decides per start node at run time.
    route: Optional[str] = None
    route_reason: Optional[str] = None
    estimated_rows: float = 0.0

    def describe(self) -> str:
        spec = _hop_spec(self.types, self.min_hops, self.max_hops, self.direction)
        target = ":" + ":".join(self.target_labels) if self.target_labels else ""
        mode = self.mode
        if self.route is not None:
            mode += f":{self.route} ({self.route_reason})"
        return (
            f"VarLengthExpand({spec}({target}), {mode})"
            + _est(self.estimated_rows)
        )


@dataclass(frozen=True)
class ShortestPath:
    """A ``shortestPath((a)-[:R*..k]-(b))`` pattern (EXPLAIN bookkeeping).

    The executor picks the search at run time: bidirectional BFS when both
    endpoints are already bound in the row, single-source BFS otherwise.
    Both compute the same pinned winner (fewest hops, then lexicographically
    smallest relationship-id tuple), so the choice is pure strategy.
    """

    types: tuple[str, ...] = ()
    direction: str = "both"
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None
    source_labels: tuple[str, ...] = ()
    target_labels: tuple[str, ...] = ()
    estimated_rows: float = 0.0

    def describe(self) -> str:
        spec = _hop_spec(self.types, self.min_hops, self.max_hops, self.direction)
        source = ":" + ":".join(self.source_labels) if self.source_labels else ""
        target = ":" + ":".join(self.target_labels) if self.target_labels else ""
        return (
            f"ShortestPath(({source}){spec}({target}), bfs)"
            + _est(self.estimated_rows)
        )


@dataclass(frozen=True)
class Filter:
    """A WHERE predicate applied to every candidate row of a MATCH clause."""

    expression: Expression

    def describe(self) -> str:
        return f"Filter({expression_text(self.expression)})"


@dataclass(frozen=True)
class HashJoin:
    """Join a disconnected pattern group through a hash table.

    ``keys`` holds ``(probe, build)`` expression pairs extracted from the
    clause's WHERE equality conjuncts: ``build`` reads only the new
    pattern's variables, ``probe`` only previously bound ones.  The build
    side (``build_pattern`` indexes into the clause's patterns) is matched
    once, bucketed by its key values, and probed with each partial row —
    replacing the nested-loop cartesian whose cost is the *product* of the
    two sides.  Key matching is a pre-filter: the WHERE clause is still
    evaluated on every joined row, so hash collisions or Python-vs-Cypher
    equality differences can only cost time, never correctness.
    """

    build_pattern: int
    keys: tuple[tuple[Expression, Expression], ...]
    #: Variables shared with earlier patterns when this joins a *connected*
    #: pattern (empty for the classic disconnected WHERE-equality join).
    #: The build side is then matched unbound and keyed on these
    #: variables' item identities; the probe re-checks every binding.
    join_variables: tuple[str, ...] = ()
    estimated_rows: float = 0.0

    def describe(self) -> str:
        if self.join_variables:
            rendered = ", ".join(self.join_variables)
            return (
                f"HashJoin(pattern[{self.build_pattern}], shared: {rendered})"
                + _est(self.estimated_rows)
            )
        rendered = ", ".join(
            f"{expression_text(probe)} = {expression_text(build)}"
            for probe, build in self.keys
        )
        return (
            f"HashJoin(pattern[{self.build_pattern}], {rendered})"
            + _est(self.estimated_rows)
        )


@dataclass(frozen=True)
class CartesianProduct:
    """A keyless disconnected join: materialise the build side once.

    Chosen when no cross-group equality conjunct exists.  The joined row
    set is exactly the nested-loop cartesian's; only the re-matching work
    per partial row is saved.
    """

    build_pattern: int
    estimated_rows: float = 0.0

    def describe(self) -> str:
        return (
            f"CartesianProduct(pattern[{self.build_pattern}], materialized)"
            + _est(self.estimated_rows)
        )


@dataclass(frozen=True)
class TopK:
    """Heap-based streaming ORDER BY + LIMIT (+ SKIP).

    Keeps the ``skip + limit`` smallest rows (by the ORDER BY key, with
    input order as the tiebreaker — identical to a stable full sort
    followed by slicing) in a bounded heap while the input streams through,
    so an ORDER BY stops forcing a full materialise-and-sort whenever a
    LIMIT is present.
    """

    order_text: str
    limit: Expression
    skip: Optional[Expression] = None
    estimated_rows: float = 0.0

    def describe(self) -> str:
        skip_text = f" SKIP {expression_text(self.skip)}" if self.skip is not None else ""
        return (
            f"TopK(ORDER BY {self.order_text}{skip_text} "
            f"LIMIT {expression_text(self.limit)})" + _est(self.estimated_rows)
        )


@dataclass(frozen=True)
class Sort:
    """Full sort — ORDER BY without a LIMIT to bound the heap."""

    order_text: str

    def describe(self) -> str:
        return f"Sort(ORDER BY {self.order_text})"


@dataclass(frozen=True)
class Aggregate:
    """Grouped aggregation — inherently a pipeline breaker."""

    aggregate_text: str

    def describe(self) -> str:
        return f"Aggregate({self.aggregate_text})"


def _reachability_route(
    graph, rel_type: str, rel, hop_cap: int
) -> tuple[Optional[str], Optional[str]]:
    """Plan-time (route, reason) annotation for a reachability expansion.

    Builds the index if stale — the first execution would anyway, and a
    built index is what makes the EXPLAIN annotation deterministic.  The
    choice stays advisory: :meth:`ReachabilityIndex.descendants` re-runs
    the cost model per start node.
    """
    index = graph.reachability_index(rel_type)
    if index is None:  # pragma: no cover - applicability already checked
        return None, None
    if not index.ensure(graph):
        return None, None
    min_hops = rel.min_hops if rel.min_hops is not None else 1
    max_hops = rel.max_hops if rel.max_hops is not None else hop_cap
    return index.route_hint(min_hops, max_hops)


#: Operators that can appear in a pattern's physical chain.
PatternOperator = Union[AccessPath, Expand, VarLengthExpand, ShortestPath]
#: Operators that can join two pattern groups.
JoinOperator = Union[HashJoin, CartesianProduct]
#: Operators a WITH/RETURN projection can lower to.
ProjectionOperator = Union[TopK, Sort, Aggregate]


def physical_chain(
    start: AccessPath,
    elements,
    estimator,
    pattern=None,
    graph=None,
    virtual_labels=(),
    hop_cap: int = 15,
) -> tuple[tuple[PatternOperator, ...], float]:
    """Lower a pattern's element sequence into (start, Expand, …) operators.

    Returns the operator chain and the final cardinality estimate, walking
    the same arithmetic as
    :meth:`repro.graph.statistics.CardinalityEstimator.pattern_cardinality`
    but keeping the running estimate per hop so EXPLAIN can show it.
    Variable-length hops lower to :class:`VarLengthExpand` (annotated with
    the reachability-accelerator mode when ``pattern``/``graph`` are given
    and :func:`repro.paths.accelerator.reachability_applicable` says the
    declared index covers the hop), a ``shortestPath`` pattern to a single
    :class:`ShortestPath` operator.

    For a ``rel_index`` start the seek already binds the first
    relationship and both its endpoints, so the chain resumes after them.
    """
    if pattern is not None and getattr(pattern, "shortest", None) is not None:
        source, rel, target = elements
        estimate = start.estimated_rows
        if target.labels:
            estimate *= estimator.label_fraction(target.labels)
        return (
            (
                start,
                ShortestPath(
                    types=rel.types,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                    source_labels=source.labels,
                    target_labels=target.labels,
                    estimated_rows=estimate,
                ),
            ),
            estimate,
        )
    operators: list[PatternOperator] = [start]
    estimate = start.estimated_rows
    first_hop = 1
    if start.kind == REL_INDEX:
        # elements[0]/[1]/[2] are bound by the seek itself; account for the
        # endpoint label filters, then continue expanding from elements[3].
        for node in (elements[0], elements[2]):
            if node.labels:
                estimate *= estimator.label_fraction(node.labels)
        first_hop = 3
    for index in range(first_hop, len(elements) - 1, 2):
        rel = elements[index]
        node = elements[index + 1]
        assert isinstance(rel, RelationshipPattern)
        assert isinstance(node, NodePattern)
        if rel.is_variable_length:
            estimate *= estimator.variable_length_cardinality(
                rel.types, rel.min_hops, rel.max_hops, hop_cap=hop_cap
            )
            if node.labels:
                estimate *= estimator.label_fraction(node.labels)
            mode, route, route_reason = "dfs", None, None
            if graph is not None and pattern is not None:
                rel_type = reachability_applicable(
                    graph, pattern, rel, elements, index, virtual_labels
                )
                if rel_type:
                    mode = "reachability"
                    route, route_reason = _reachability_route(
                        graph, rel_type, rel, hop_cap
                    )
            operators.append(
                VarLengthExpand(
                    types=rel.types,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                    target_labels=node.labels,
                    mode=mode,
                    route=route,
                    route_reason=route_reason,
                    estimated_rows=estimate,
                )
            )
            continue
        factor = estimator.expansion_factor(rel.types)
        hops = rel.min_hops if rel.min_hops is not None else 1
        estimate *= factor ** max(int(hops), 1)
        if node.labels:
            estimate *= estimator.label_fraction(node.labels)
        operators.append(
            Expand(
                types=rel.types,
                direction=rel.direction,
                min_hops=rel.min_hops,
                max_hops=rel.max_hops,
                target_labels=node.labels,
                estimated_rows=estimate,
            )
        )
    return tuple(operators), estimate
