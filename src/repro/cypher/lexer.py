"""Tokenizer for the Cypher subset.

The lexer is deliberately simple: a single pass producing a flat token
list.  Keywords are recognised case-insensitively (as in openCypher) but
identifiers preserve their original case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import CypherSyntaxError

#: Keywords recognised by the parser.  Multi-word constructs (e.g. ``ORDER
#: BY``, ``IS NOT NULL``) are assembled by the parser from single-word
#: keyword tokens.
KEYWORDS = {
    "MATCH", "OPTIONAL", "WHERE", "WITH", "RETURN", "CREATE", "MERGE", "SET",
    "REMOVE", "DELETE", "DETACH", "UNWIND", "FOREACH", "AS", "AND", "OR",
    "XOR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE", "ORDER", "BY", "ASC",
    "ASCENDING", "DESC", "DESCENDING", "LIMIT", "SKIP", "DISTINCT", "EXISTS",
    "CASE", "WHEN", "THEN", "ELSE", "END", "CONTAINS", "STARTS", "ENDS",
    "ON", "COUNT", "UNION", "ALL", "CALL", "YIELD",
}


class TokenType(enum.Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    PARAMETER = "parameter"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    type: TokenType
    value: str
    position: int
    line: int

    def is_keyword(self, *names: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.value!r})"


_OPERATORS = [
    "<=", ">=", "<>", "!=", "=~", "+=", "..",
    "=", "<", ">", "+", "-", "*", "/", "%", "^", "|",
]
_PUNCTUATION = set("()[]{},.:;")


class Lexer:
    """Converts query text into a list of :class:`Token`."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1

    def tokenize(self) -> list[Token]:
        """Return the full token list, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                break
            tokens.append(self._next_token())
        tokens.append(Token(TokenType.EOF, "", self.pos, self.line))
        return tokens

    # ------------------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch.isspace():
                self.pos += 1
            elif text.startswith("//", self.pos):
                end = text.find("\n", self.pos)
                self.pos = len(text) if end == -1 else end
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end == -1:
                    raise CypherSyntaxError("unterminated block comment", self.pos, self.line)
                self.line += text.count("\n", self.pos, end)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        text = self.text
        start = self.pos
        ch = text[start]

        if ch in "'\"":
            return self._string(ch)
        if ch.isdigit():
            return self._number()
        if ch == "$":
            return self._parameter()
        if ch == "`":
            return self._backquoted_identifier()
        if ch.isalpha() or ch == "_":
            return self._identifier_or_keyword()

        for op in _OPERATORS:
            if text.startswith(op, start):
                # ``..`` only appears inside variable-length bounds; make
                # sure a float like ``1.5`` is not split as ``1`` ``.`` ``5``.
                self.pos += len(op)
                return Token(TokenType.OPERATOR, op, start, self.line)
        if ch in _PUNCTUATION:
            self.pos += 1
            return Token(TokenType.PUNCTUATION, ch, start, self.line)
        raise CypherSyntaxError(f"unexpected character {ch!r}", start, self.line)

    def _string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        chars: list[str] = []
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch == "\\" and self.pos + 1 < len(text):
                escaped = text[self.pos + 1]
                mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", "'": "'", '"': '"'}
                chars.append(mapping.get(escaped, escaped))
                self.pos += 2
                continue
            if ch == quote:
                self.pos += 1
                return Token(TokenType.STRING, "".join(chars), start, self.line)
            if ch == "\n":
                self.line += 1
            chars.append(ch)
            self.pos += 1
        raise CypherSyntaxError("unterminated string literal", start, self.line)

    def _number(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and text[self.pos].isdigit():
            self.pos += 1
        is_float = False
        # A dot starts a fractional part only when followed by a digit; this
        # keeps the ``1..3`` range syntax and ``n.prop`` access unambiguous.
        if (
            self.pos < len(text)
            and text[self.pos] == "."
            and self.pos + 1 < len(text)
            and text[self.pos + 1].isdigit()
        ):
            is_float = True
            self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1
        if self.pos < len(text) and text[self.pos] in "eE":
            lookahead = self.pos + 1
            if lookahead < len(text) and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < len(text) and text[lookahead].isdigit():
                is_float = True
                self.pos = lookahead
                while self.pos < len(text) and text[self.pos].isdigit():
                    self.pos += 1
        value = text[start:self.pos]
        return Token(TokenType.FLOAT if is_float else TokenType.INTEGER, value, start, self.line)

    def _parameter(self) -> Token:
        start = self.pos
        self.pos += 1
        text = self.text
        name_start = self.pos
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        if self.pos == name_start:
            raise CypherSyntaxError("empty parameter name", start, self.line)
        return Token(TokenType.PARAMETER, text[name_start:self.pos], start, self.line)

    def _backquoted_identifier(self) -> Token:
        start = self.pos
        end = self.text.find("`", start + 1)
        if end == -1:
            raise CypherSyntaxError("unterminated backquoted identifier", start, self.line)
        value = self.text[start + 1:end]
        self.pos = end + 1
        return Token(TokenType.IDENTIFIER, value, start, self.line)

    def _identifier_or_keyword(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum() or text[self.pos] == "_"):
            self.pos += 1
        word = text[start:self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, start, self.line)
        return Token(TokenType.IDENTIFIER, word, start, self.line)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens (convenience wrapper)."""
    return Lexer(text).tokenize()
