"""Expression evaluation for the Cypher subset.

The evaluator is a straightforward tree-walker over the AST defined in
:mod:`repro.cypher.ast`.  It follows openCypher's three-valued logic:
``null`` propagates through comparisons and arithmetic, ``AND``/``OR``
use Kleene logic, and rows whose WHERE predicate evaluates to ``null`` are
filtered out (the executor treats only ``True`` as passing).

Node and relationship values flowing through expressions are immutable
snapshots; property access re-reads the *current* state from the store when
the item still exists (so a trigger that updates a property and then reads
it through the same variable sees the update), falling back to the snapshot
for deleted items (so DELETE-event triggers can still inspect ``OLD``).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from ..graph.model import Node, Relationship
from ..graph.store import PropertyGraph
from .ast import (
    BinaryOp,
    CaseExpression,
    CountStar,
    ExistsPattern,
    Expression,
    FunctionCall,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    Literal,
    MapLiteral,
    Parameter,
    PropertyAccess,
    UnaryOp,
    Variable,
)
from .errors import CypherRuntimeError, CypherTypeError
from .functions import SCALAR_FUNCTIONS, is_aggregate_function


@dataclass
class EvaluationContext:
    """Everything an expression needs besides the current row.

    Attributes:
        graph: the store used to refresh snapshots and evaluate EXISTS patterns.
        parameters: query parameters (``$name``).
        clock: callable returning the current datetime; injectable so tests
            and benchmarks are deterministic.
        pattern_matcher: callback used to evaluate ``EXISTS`` patterns; the
            executor injects its matcher to avoid a circular dependency.
        aggregate_lookup: values of aggregate sub-expressions, keyed by AST
            node identity; populated by the executor during WITH/RETURN
            aggregation.
    """

    graph: PropertyGraph
    parameters: Mapping[str, Any] = field(default_factory=dict)
    clock: Callable[[], _dt.datetime] = _dt.datetime.now
    pattern_matcher: Optional[Callable[[ExistsPattern, dict], bool]] = None
    aggregate_lookup: Optional[dict[int, Any]] = None

    # -- snapshot refreshing --------------------------------------------

    def refresh_node(self, node: Node) -> Node:
        """Return the live version of ``node`` or the snapshot if deleted."""
        if self.graph.has_node(node.id):
            return self.graph.node(node.id)
        return node

    def refresh_relationship(self, rel: Relationship) -> Relationship:
        """Return the live version of ``rel`` or the snapshot if deleted."""
        if self.graph.has_relationship(rel.id):
            return self.graph.relationship(rel.id)
        return rel

    def refresh_item(self, item: Node | Relationship) -> Node | Relationship:
        """Refresh either kind of item."""
        if isinstance(item, Node):
            return self.refresh_node(item)
        return self.refresh_relationship(item)

    def node_by_id(self, node_id: int) -> Node | None:
        """Fetch a node by id, or ``None`` when it does not exist."""
        if self.graph.has_node(node_id):
            return self.graph.node(node_id)
        return None


def evaluate(expr: Expression, row: Mapping[str, Any], context: EvaluationContext) -> Any:
    """Evaluate ``expr`` against one binding ``row``.

    Dispatch is a ``type(expr)``-keyed table (expression evaluation sits on
    the trigger-condition and MATCH-filter hot paths); unexpected subclasses
    fall back to the isinstance-based path below.
    """
    handler = _DISPATCH.get(type(expr))
    if handler is not None:
        return handler(expr, row, context)
    return _evaluate_fallback(expr, row, context)


def _evaluate_fallback(expr: Expression, row: Mapping[str, Any], context: EvaluationContext) -> Any:
    for node_type, handler in _DISPATCH.items():
        if isinstance(expr, node_type):
            return handler(expr, row, context)
    raise CypherTypeError(f"cannot evaluate expression of type {type(expr).__name__}")


def _evaluate_literal(expr: Literal, row, context) -> Any:
    return expr.value


def _evaluate_parameter(expr: Parameter, row, context) -> Any:
    if expr.name not in context.parameters:
        raise CypherRuntimeError(f"missing query parameter ${expr.name}")
    return context.parameters[expr.name]


def _evaluate_variable(expr: Variable, row, context) -> Any:
    if expr.name in row:
        return row[expr.name]
    if expr.name in context.parameters:
        return context.parameters[expr.name]
    raise CypherRuntimeError(f"unknown variable {expr.name!r}")


def _evaluate_list_literal(expr: ListLiteral, row, context) -> Any:
    return [evaluate(item, row, context) for item in expr.items]


def _evaluate_map_literal(expr: MapLiteral, row, context) -> Any:
    return {key: evaluate(value, row, context) for key, value in expr.entries}


def _evaluate_is_null(expr: IsNull, row, context) -> Any:
    value = evaluate(expr.operand, row, context)
    return (value is not None) if expr.negated else (value is None)


def _evaluate_case(expr: CaseExpression, row, context) -> Any:
    for condition, value in expr.whens:
        if evaluate(condition, row, context) is True:
            return evaluate(value, row, context)
    if expr.default is not None:
        return evaluate(expr.default, row, context)
    return None


def _evaluate_exists(expr: ExistsPattern, row, context) -> Any:
    if context.pattern_matcher is None:
        raise CypherRuntimeError("EXISTS patterns require a query execution context")
    return context.pattern_matcher(expr, dict(row))


def _evaluate_count_star(expr: CountStar, row, context) -> Any:
    return _aggregate_value(expr, context)


def _evaluate_function_call(expr: FunctionCall, row, context) -> Any:
    if is_aggregate_function(expr.name):
        return _aggregate_value(expr, context)
    return _evaluate_scalar_call(expr, row, context)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _aggregate_value(expr: Expression, context: EvaluationContext) -> Any:
    if context.aggregate_lookup is None or id(expr) not in context.aggregate_lookup:
        raise CypherRuntimeError(
            "aggregate functions are only allowed in WITH and RETURN projections"
        )
    return context.aggregate_lookup[id(expr)]


def _evaluate_property(expr: PropertyAccess, row, context) -> Any:
    subject = evaluate(expr.subject, row, context)
    if subject is None:
        return None
    if isinstance(subject, (Node, Relationship)):
        # Snapshots are read as bound: a trigger's OLD variable must keep the
        # pre-event values even though the stored item has since changed.
        # Variables bound by MATCH/SET always hold current snapshots.
        return subject.properties.get(expr.key)
    if isinstance(subject, Mapping):
        return subject.get(expr.key)
    raise CypherTypeError(
        f"cannot access property {expr.key!r} on value of type {type(subject).__name__}"
    )


def _evaluate_label_predicate(expr: LabelPredicate, row, context) -> Any:
    subject = evaluate(expr.subject, row, context)
    if subject is None:
        return None
    if isinstance(subject, Node):
        return all(label in subject.labels for label in expr.labels)
    if isinstance(subject, Relationship):
        return all(label == subject.type for label in expr.labels)
    raise CypherTypeError("label predicate requires a node or relationship")


def _evaluate_unary(expr: UnaryOp, row, context) -> Any:
    value = evaluate(expr.operand, row, context)
    if expr.op == "NOT":
        if value is None:
            return None
        return not _as_boolean(value)
    if expr.op == "-":
        return None if value is None else -value
    raise CypherTypeError(f"unknown unary operator {expr.op}")


def _as_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise CypherTypeError(f"expected a boolean, got {type(value).__name__}: {value!r}")


def _evaluate_binary(expr: BinaryOp, row, context) -> Any:
    op = expr.op
    if op in ("AND", "OR", "XOR"):
        return _evaluate_logical(op, expr, row, context)

    left = evaluate(expr.left, row, context)
    right = evaluate(expr.right, row, context)

    if op == "IN":
        if right is None:
            return None
        return _value_in_list(left, right)
    if left is None or right is None:
        return None
    if op == "=":
        return _values_equal(left, right)
    if op == "<>":
        return not _values_equal(left, right)
    if op in ("<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "+":
        if isinstance(left, list) and isinstance(right, list):
            return left + right
        if isinstance(left, str) or isinstance(right, str):
            return f"{left}{right}"
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise CypherRuntimeError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # openCypher integer division truncates toward zero.
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            raise CypherRuntimeError("division by zero")
        return left % right
    if op == "^":
        return float(left) ** float(right)
    if op == "CONTAINS":
        return str(right) in str(left)
    if op == "STARTS WITH":
        return str(left).startswith(str(right))
    if op == "ENDS WITH":
        return str(left).endswith(str(right))
    raise CypherTypeError(f"unknown binary operator {op}")


def _evaluate_logical(op: str, expr: BinaryOp, row, context) -> Any:
    left = evaluate(expr.left, row, context)
    left = None if left is None else _as_boolean(left)
    # Short-circuit where three-valued logic allows it.
    if op == "AND" and left is False:
        return False
    if op == "OR" and left is True:
        return True
    right = evaluate(expr.right, row, context)
    right = None if right is None else _as_boolean(right)
    if op == "AND":
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False
    # XOR
    if left is None or right is None:
        return None
    return left != right


def _values_equal(left: Any, right: Any) -> bool:
    if isinstance(left, (Node, Relationship)) and isinstance(right, (Node, Relationship)):
        return type(left) is type(right) and left.id == right.id
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right


def _compare(op: str, left: Any, right: Any) -> Any:
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    except TypeError:
        raise CypherTypeError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from None


def _value_in_list(value: Any, container: Any) -> Any:
    if not isinstance(container, (list, tuple)):
        raise CypherTypeError("IN requires a list on its right-hand side")
    found_null = False
    for element in container:
        if element is None or value is None:
            found_null = True
            continue
        if _values_equal(value, element):
            return True
    if found_null:
        return None
    return False


def _evaluate_list_index(expr: ListIndex, row, context) -> Any:
    subject = evaluate(expr.subject, row, context)
    index = evaluate(expr.index, row, context)
    if subject is None or index is None:
        return None
    if isinstance(subject, Mapping):
        return subject.get(index)
    if isinstance(subject, (list, tuple)):
        position = int(index)
        if -len(subject) <= position < len(subject):
            return subject[position]
        return None
    raise CypherTypeError("indexing requires a list or map")


def _evaluate_list_comprehension(expr: ListComprehension, row, context) -> Any:
    source = evaluate(expr.source, row, context)
    if source is None:
        return None
    if not isinstance(source, (list, tuple)):
        raise CypherTypeError("list comprehension requires a list source")
    result = []
    scope = dict(row)
    for element in source:
        scope[expr.variable] = element
        if expr.where is not None and evaluate(expr.where, scope, context) is not True:
            continue
        if expr.projection is not None:
            result.append(evaluate(expr.projection, scope, context))
        else:
            result.append(element)
    return result


def _evaluate_scalar_call(expr: FunctionCall, row, context) -> Any:
    implementation = SCALAR_FUNCTIONS.get(expr.name)
    if implementation is None:
        raise CypherRuntimeError(f"unknown function {expr.name}()")
    args = [evaluate(argument, row, context) for argument in expr.args]
    return implementation(args, context)


#: type(expr) -> handler table backing :func:`evaluate`'s fast dispatch.
_DISPATCH: dict[type, Any] = {
    Literal: _evaluate_literal,
    Parameter: _evaluate_parameter,
    Variable: _evaluate_variable,
    ListLiteral: _evaluate_list_literal,
    MapLiteral: _evaluate_map_literal,
    PropertyAccess: _evaluate_property,
    LabelPredicate: _evaluate_label_predicate,
    UnaryOp: _evaluate_unary,
    BinaryOp: _evaluate_binary,
    IsNull: _evaluate_is_null,
    ListIndex: _evaluate_list_index,
    CaseExpression: _evaluate_case,
    ListComprehension: _evaluate_list_comprehension,
    ExistsPattern: _evaluate_exists,
    CountStar: _evaluate_count_star,
    FunctionCall: _evaluate_function_call,
}
