"""Scalar and aggregate functions for the Cypher subset.

The registry exposes two lookup tables:

* :data:`SCALAR_FUNCTIONS` — name -> callable(args, context) evaluated per row;
* :data:`AGGREGATE_FUNCTIONS` — name -> aggregator factory used by
  WITH/RETURN grouping.

Functions follow openCypher null semantics: most scalar functions return
``null`` when any argument is ``null``.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Mapping
from typing import Any, Callable, Sequence

from ..graph.model import Node, Relationship
from ..paths import Path
from .errors import CypherRuntimeError, CypherTypeError


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _require_args(name: str, args: Sequence[Any], minimum: int, maximum: int | None = None) -> None:
    maximum = minimum if maximum is None else maximum
    if not (minimum <= len(args) <= maximum):
        raise CypherTypeError(
            f"function {name}() expects between {minimum} and {maximum} arguments, "
            f"got {len(args)}"
        )


def _fn_id(args, context):
    _require_args("id", args, 1)
    item = args[0]
    if item is None:
        return None
    if isinstance(item, (Node, Relationship)):
        return item.id
    raise CypherTypeError("id() expects a node or relationship")


def _fn_labels(args, context):
    _require_args("labels", args, 1)
    item = args[0]
    if item is None:
        return None
    if isinstance(item, Node):
        return sorted(item.labels)
    raise CypherTypeError("labels() expects a node")


def _fn_type(args, context):
    _require_args("type", args, 1)
    item = args[0]
    if item is None:
        return None
    if isinstance(item, Relationship):
        return item.type
    raise CypherTypeError("type() expects a relationship")


def _fn_keys(args, context):
    _require_args("keys", args, 1)
    item = args[0]
    if item is None:
        return None
    if isinstance(item, (Node, Relationship)):
        return sorted(item.properties)
    if isinstance(item, dict):
        return sorted(item)
    raise CypherTypeError("keys() expects a node, relationship or map")


def _fn_properties(args, context):
    _require_args("properties", args, 1)
    item = args[0]
    if item is None:
        return None
    if isinstance(item, (Node, Relationship)):
        return dict(item.properties)
    if isinstance(item, dict):
        return dict(item)
    raise CypherTypeError("properties() expects a node, relationship or map")


def _fn_exists(args, context):
    _require_args("exists", args, 1)
    return args[0] is not None


def _fn_coalesce(args, context):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_size(args, context):
    _require_args("size", args, 1)
    value = args[0]
    if value is None:
        return None
    if isinstance(value, Path):
        return value.length
    if isinstance(value, (list, tuple, str, dict)):
        return len(value)
    raise CypherTypeError("size() expects a list, string or map")


def _fn_length(args, context):
    _require_args("length", args, 1)
    value = args[0]
    if isinstance(value, Path):
        # openCypher: the number of relationships in the path.
        return value.length
    return _fn_size(args, context)


def _fn_head(args, context):
    _require_args("head", args, 1)
    value = args[0]
    if not value:
        return None
    return value[0]


def _fn_last(args, context):
    _require_args("last", args, 1)
    value = args[0]
    if not value:
        return None
    return value[-1]


def _fn_abs(args, context):
    _require_args("abs", args, 1)
    value = args[0]
    return None if value is None else abs(value)


def _fn_round(args, context):
    _require_args("round", args, 1, 2)
    value = args[0]
    if value is None:
        return None
    digits = args[1] if len(args) > 1 else 0
    return round(value, int(digits))


def _fn_floor(args, context):
    _require_args("floor", args, 1)
    value = args[0]
    if value is None:
        return None
    import math

    return float(math.floor(value))


def _fn_ceil(args, context):
    _require_args("ceil", args, 1)
    value = args[0]
    if value is None:
        return None
    import math

    return float(math.ceil(value))


def _fn_sign(args, context):
    _require_args("sign", args, 1)
    value = args[0]
    if value is None:
        return None
    return (value > 0) - (value < 0)


def _fn_to_integer(args, context):
    _require_args("tointeger", args, 1)
    value = args[0]
    if value is None:
        return None
    try:
        return int(float(value)) if isinstance(value, str) else int(value)
    except (TypeError, ValueError):
        return None


def _fn_to_float(args, context):
    _require_args("tofloat", args, 1)
    value = args[0]
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _fn_to_string(args, context):
    _require_args("tostring", args, 1)
    value = args[0]
    if value is None:
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _fn_to_upper(args, context):
    _require_args("toupper", args, 1)
    value = args[0]
    return None if value is None else str(value).upper()


def _fn_to_lower(args, context):
    _require_args("tolower", args, 1)
    value = args[0]
    return None if value is None else str(value).lower()


def _fn_trim(args, context):
    _require_args("trim", args, 1)
    value = args[0]
    return None if value is None else str(value).strip()


def _fn_split(args, context):
    _require_args("split", args, 2)
    value, separator = args
    if value is None or separator is None:
        return None
    return str(value).split(str(separator))


def _fn_substring(args, context):
    _require_args("substring", args, 2, 3)
    value = args[0]
    if value is None:
        return None
    start = int(args[1])
    if len(args) == 3:
        return str(value)[start:start + int(args[2])]
    return str(value)[start:]


def _fn_replace(args, context):
    _require_args("replace", args, 3)
    value, search, replacement = args
    if value is None:
        return None
    return str(value).replace(str(search), str(replacement))


def _fn_datetime(args, context):
    _require_args("datetime", args, 0, 1)
    if not args:
        return context.clock()
    value = args[0]
    if value is None:
        return None
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, str):
        return _dt.datetime.fromisoformat(value)
    raise CypherTypeError("datetime() expects an ISO string")


def _fn_date(args, context):
    _require_args("date", args, 0, 1)
    if not args:
        return context.clock().date()
    value = args[0]
    if value is None:
        return None
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, str):
        return _dt.date.fromisoformat(value)
    raise CypherTypeError("date() expects an ISO string")


def _fn_timestamp(args, context):
    _require_args("timestamp", args, 0, 0)
    return int(context.clock().timestamp() * 1000)


def _fn_range(args, context):
    _require_args("range", args, 2, 3)
    start, stop = int(args[0]), int(args[1])
    step = int(args[2]) if len(args) == 3 else 1
    if step == 0:
        raise CypherRuntimeError("range() step must not be zero")
    # openCypher range() is inclusive of the upper bound.
    if step > 0:
        return list(range(start, stop + 1, step))
    return list(range(start, stop - 1, step))


def _fn_nodes(args, context):
    _require_args("nodes", args, 1)
    path = args[0]
    if path is None:
        return None
    if isinstance(path, Mapping) and "nodes" in path:
        return list(path["nodes"])
    raise CypherTypeError("nodes() expects a path")


def _fn_relationships(args, context):
    _require_args("relationships", args, 1)
    path = args[0]
    if path is None:
        return None
    if isinstance(path, Mapping) and "relationships" in path:
        return list(path["relationships"])
    raise CypherTypeError("relationships() expects a path")


def _fn_startnode(args, context):
    _require_args("startnode", args, 1)
    rel = args[0]
    if rel is None:
        return None
    if isinstance(rel, Relationship):
        return context.node_by_id(rel.start)
    raise CypherTypeError("startNode() expects a relationship")


def _fn_endnode(args, context):
    _require_args("endnode", args, 1)
    rel = args[0]
    if rel is None:
        return None
    if isinstance(rel, Relationship):
        return context.node_by_id(rel.end)
    raise CypherTypeError("endNode() expects a relationship")


SCALAR_FUNCTIONS: dict[str, Callable[[Sequence[Any], Any], Any]] = {
    "id": _fn_id,
    "labels": _fn_labels,
    "type": _fn_type,
    "keys": _fn_keys,
    "properties": _fn_properties,
    "exists": _fn_exists,
    "coalesce": _fn_coalesce,
    "size": _fn_size,
    "length": _fn_length,
    "head": _fn_head,
    "last": _fn_last,
    "abs": _fn_abs,
    "round": _fn_round,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "sign": _fn_sign,
    "tointeger": _fn_to_integer,
    "tofloat": _fn_to_float,
    "tostring": _fn_to_string,
    "toupper": _fn_to_upper,
    "tolower": _fn_to_lower,
    "trim": _fn_trim,
    "split": _fn_split,
    "substring": _fn_substring,
    "replace": _fn_replace,
    "datetime": _fn_datetime,
    "date": _fn_date,
    "timestamp": _fn_timestamp,
    "range": _fn_range,
    "nodes": _fn_nodes,
    "relationships": _fn_relationships,
    "startnode": _fn_startnode,
    "endnode": _fn_endnode,
}


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------


class Aggregator:
    """Base class for aggregate accumulators.

    One instance is created per output group and fed one value per input
    row via :meth:`update`; :meth:`result` produces the aggregated value.
    ``null`` inputs are skipped, as in openCypher.
    """

    def __init__(self, distinct: bool = False) -> None:
        self.distinct = distinct
        self._seen: set | None = set() if distinct else None

    def _admit(self, value: Any) -> bool:
        if value is None:
            return False
        if self._seen is None:
            return True
        key = tuple(value) if isinstance(value, list) else value
        if isinstance(key, (Node, Relationship)):
            key = (type(key).__name__, key.id)
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def update(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAggregator(Aggregator):
    """``count(expr)`` / ``count(*)`` (with ``value`` always non-null)."""

    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._count = 0

    def update(self, value: Any) -> None:
        if self._admit(value):
            self._count += 1

    def result(self) -> int:
        return self._count


class SumAggregator(Aggregator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._total = 0

    def update(self, value: Any) -> None:
        if self._admit(value):
            self._total += value

    def result(self) -> Any:
        return self._total


class AvgAggregator(Aggregator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._total = 0.0
        self._count = 0

    def update(self, value: Any) -> None:
        if self._admit(value):
            self._total += value
            self._count += 1

    def result(self) -> Any:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAggregator(Aggregator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._best = None

    def update(self, value: Any) -> None:
        if self._admit(value) and (self._best is None or value < self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


class MaxAggregator(Aggregator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._best = None

    def update(self, value: Any) -> None:
        if self._admit(value) and (self._best is None or value > self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


class CollectAggregator(Aggregator):
    def __init__(self, distinct: bool = False) -> None:
        super().__init__(distinct)
        self._values: list[Any] = []

    def update(self, value: Any) -> None:
        if self._admit(value):
            self._values.append(value)

    def result(self) -> list[Any]:
        return self._values


AGGREGATE_FUNCTIONS: dict[str, Callable[[bool], Aggregator]] = {
    "count": CountAggregator,
    "sum": SumAggregator,
    "avg": AvgAggregator,
    "min": MinAggregator,
    "max": MaxAggregator,
    "collect": CollectAggregator,
}


def is_aggregate_function(name: str) -> bool:
    """True when ``name`` (case-insensitive) is an aggregate function."""
    return name.lower() in AGGREGATE_FUNCTIONS
