"""Recursive-descent parser for the Cypher subset.

The grammar follows openCypher where the two overlap; constructs outside
the supported subset raise
:class:`~repro.cypher.errors.UnsupportedFeatureError` so that callers never
get silently wrong results.

The entry points are :func:`parse_query` (a full clause pipeline) and
:func:`parse_expression` (a standalone expression, used by the trigger
engine for WHEN conditions that are plain predicates).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .ast import (
    BinaryOp,
    CallClause,
    CaseExpression,
    Clause,
    CountStar,
    CreateClause,
    DeleteClause,
    ExistsPattern,
    Expression,
    ForeachClause,
    FunctionCall,
    IsNull,
    Literal,
    ListComprehension,
    ListIndex,
    ListLiteral,
    LabelPredicate,
    MapLiteral,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PathPattern,
    ProjectionItem,
    PropertyAccess,
    Query,
    RelationshipPattern,
    RemoveClause,
    RemoveLabelsItem,
    RemovePropertyItem,
    ReturnClause,
    SetClause,
    SetFromMapItem,
    SetLabelsItem,
    SetPropertyItem,
    SortItem,
    UnaryOp,
    UnwindClause,
    Variable,
    WithClause,
)
from .errors import CypherSyntaxError, UnsupportedFeatureError
from .lexer import Token, TokenType, tokenize


class Parser:
    """Token-stream parser producing :class:`~repro.cypher.ast.Query` trees."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def at_keyword(self, *names: str) -> bool:
        return self.current.is_keyword(*names)

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.at_keyword(*names):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        if not self.at_keyword(*names):
            raise CypherSyntaxError(
                f"expected {' or '.join(names)}, found {self.current.value!r}",
                self.current.position,
                self.current.line,
            )
        return self.advance()

    def at_punct(self, value: str) -> bool:
        token = self.current
        return token.type in (TokenType.PUNCTUATION, TokenType.OPERATOR) and token.value == value

    def accept_punct(self, value: str) -> bool:
        if self.at_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            raise CypherSyntaxError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
                self.current.line,
            )
        return self.advance()

    def expect_identifier(self) -> str:
        token = self.current
        if token.type == TokenType.IDENTIFIER:
            self.advance()
            return token.value
        # Allow non-reserved keywords to double as identifiers (e.g. a
        # property named ``count`` or a variable named ``end``).
        if token.type == TokenType.KEYWORD:
            self.advance()
            return token.value.lower()
        raise CypherSyntaxError(
            f"expected identifier, found {token.value!r}", token.position, token.line
        )

    # ------------------------------------------------------------------
    # queries and clauses
    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        """Parse a complete query (sequence of clauses up to EOF)."""
        clauses: list[Clause] = []
        while self.current.type != TokenType.EOF:
            if self.accept_punct(";"):
                continue
            clauses.append(self.parse_clause())
        if not clauses:
            raise CypherSyntaxError("empty query")
        return Query(clauses=tuple(clauses))

    def parse_clause(self) -> Clause:
        """Parse a single clause."""
        token = self.current
        if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
            return self._parse_match()
        if token.is_keyword("UNWIND"):
            return self._parse_unwind()
        if token.is_keyword("WITH"):
            return self._parse_with()
        if token.is_keyword("RETURN"):
            return self._parse_return()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("MERGE"):
            return self._parse_merge()
        if token.is_keyword("SET"):
            return self._parse_set()
        if token.is_keyword("REMOVE"):
            return self._parse_remove()
        if token.is_keyword("DELETE") or token.is_keyword("DETACH"):
            return self._parse_delete()
        if token.is_keyword("FOREACH"):
            return self._parse_foreach()
        if token.is_keyword("CALL"):
            return self._parse_call()
        if token.is_keyword("UNION"):
            raise UnsupportedFeatureError("UNION queries are not supported by this subset")
        raise CypherSyntaxError(
            f"unexpected token {token.value!r} at start of clause", token.position, token.line
        )

    def _parse_match(self) -> MatchClause:
        optional = bool(self.accept_keyword("OPTIONAL"))
        self.expect_keyword("MATCH")
        patterns = self._parse_pattern_list()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return MatchClause(patterns=tuple(patterns), where=where, optional=optional)

    def _parse_unwind(self) -> UnwindClause:
        self.expect_keyword("UNWIND")
        expression = self.parse_expression()
        self.expect_keyword("AS")
        variable = self.expect_identifier()
        return UnwindClause(expression=expression, variable=variable)

    def _parse_projection(self) -> tuple[tuple[ProjectionItem, ...], bool, bool]:
        """Parse ``[DISTINCT] item, item…`` returning (items, distinct, wildcard)."""
        distinct = bool(self.accept_keyword("DISTINCT"))
        include_wildcard = False
        items: list[ProjectionItem] = []
        while True:
            if self.at_punct("*"):
                self.advance()
                include_wildcard = True
            else:
                expression = self.parse_expression()
                alias = None
                if self.accept_keyword("AS"):
                    alias = self.expect_identifier()
                items.append(ProjectionItem(expression=expression, alias=alias))
            if not self.accept_punct(","):
                break
        return tuple(items), distinct, include_wildcard

    def _parse_order_skip_limit(self):
        order_by: list[SortItem] = []
        skip = None
        limit = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                descending = False
                if self.accept_keyword("DESC", "DESCENDING"):
                    descending = True
                elif self.accept_keyword("ASC", "ASCENDING"):
                    descending = False
                order_by.append(SortItem(expression=expression, descending=descending))
                if not self.accept_punct(","):
                    break
        if self.accept_keyword("SKIP"):
            skip = self.parse_expression()
        if self.accept_keyword("LIMIT"):
            limit = self.parse_expression()
        return tuple(order_by), skip, limit

    def _parse_with(self) -> WithClause:
        self.expect_keyword("WITH")
        items, distinct, wildcard = self._parse_projection()
        order_by, skip, limit = self._parse_order_skip_limit()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        return WithClause(
            items=items,
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
            where=where,
            include_wildcard=wildcard,
        )

    def _parse_return(self) -> ReturnClause:
        self.expect_keyword("RETURN")
        items, distinct, wildcard = self._parse_projection()
        order_by, skip, limit = self._parse_order_skip_limit()
        return ReturnClause(
            items=items,
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
            include_wildcard=wildcard,
        )

    def _parse_create(self) -> CreateClause:
        self.expect_keyword("CREATE")
        patterns = self._parse_pattern_list()
        return CreateClause(patterns=tuple(patterns))

    def _parse_merge(self) -> MergeClause:
        self.expect_keyword("MERGE")
        pattern = self._parse_path_pattern()
        if self.at_keyword("ON"):
            raise UnsupportedFeatureError(
                "MERGE … ON CREATE/ON MATCH is not supported by this subset"
            )
        return MergeClause(pattern=pattern)

    def _parse_set(self) -> SetClause:
        self.expect_keyword("SET")
        items: list = []
        while True:
            subject = self.expect_identifier()
            if self.accept_punct("."):
                key = self.expect_identifier()
                self.expect_punct("=")
                value = self.parse_expression()
                items.append(SetPropertyItem(subject=subject, key=key, value=value))
            elif self.at_punct(":"):
                labels = []
                while self.accept_punct(":"):
                    labels.append(self.expect_identifier())
                items.append(SetLabelsItem(subject=subject, labels=tuple(labels)))
            elif self.at_punct("+="):
                self.advance()
                value = self.parse_expression()
                items.append(SetFromMapItem(subject=subject, value=value, replace=False))
            elif self.at_punct("="):
                self.advance()
                value = self.parse_expression()
                items.append(SetFromMapItem(subject=subject, value=value, replace=True))
            else:
                raise CypherSyntaxError(
                    f"malformed SET item near {self.current.value!r}",
                    self.current.position,
                    self.current.line,
                )
            if not self.accept_punct(","):
                break
        return SetClause(items=tuple(items))

    def _parse_remove(self) -> RemoveClause:
        self.expect_keyword("REMOVE")
        items: list = []
        while True:
            subject = self.expect_identifier()
            if self.accept_punct("."):
                key = self.expect_identifier()
                items.append(RemovePropertyItem(subject=subject, key=key))
            elif self.at_punct(":"):
                labels = []
                while self.accept_punct(":"):
                    labels.append(self.expect_identifier())
                items.append(RemoveLabelsItem(subject=subject, labels=tuple(labels)))
            else:
                raise CypherSyntaxError(
                    f"malformed REMOVE item near {self.current.value!r}",
                    self.current.position,
                    self.current.line,
                )
            if not self.accept_punct(","):
                break
        return RemoveClause(items=tuple(items))

    def _parse_delete(self) -> DeleteClause:
        detach = bool(self.accept_keyword("DETACH"))
        self.expect_keyword("DELETE")
        expressions = [self.parse_expression()]
        while self.accept_punct(","):
            expressions.append(self.parse_expression())
        return DeleteClause(expressions=tuple(expressions), detach=detach)

    def _parse_foreach(self) -> ForeachClause:
        self.expect_keyword("FOREACH")
        self.expect_punct("(")
        variable = self.expect_identifier()
        self.expect_keyword("IN")
        source = self.parse_expression()
        self.expect_punct("|")
        body: list[Clause] = []
        while not self.at_punct(")"):
            body.append(self.parse_clause())
        self.expect_punct(")")
        if not body:
            raise CypherSyntaxError("FOREACH requires at least one update clause")
        return ForeachClause(variable=variable, source=source, body=tuple(body))

    def _parse_call(self) -> CallClause:
        self.expect_keyword("CALL")
        name_parts = [self.expect_identifier()]
        while self.accept_punct("."):
            name_parts.append(self.expect_identifier())
        procedure = ".".join(name_parts)
        arguments: list[Expression] = []
        self.expect_punct("(")
        if not self.at_punct(")"):
            arguments.append(self.parse_expression())
            while self.accept_punct(","):
                arguments.append(self.parse_expression())
        self.expect_punct(")")
        yield_items: list[tuple[str, str]] = []
        if self.accept_keyword("YIELD"):
            while True:
                name = self.expect_identifier()
                alias = name
                if self.accept_keyword("AS"):
                    alias = self.expect_identifier()
                yield_items.append((name, alias))
                if not self.accept_punct(","):
                    break
        return CallClause(
            procedure=procedure, arguments=tuple(arguments), yield_items=tuple(yield_items)
        )

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------

    def _parse_pattern_list(self) -> list[PathPattern]:
        patterns = [self._parse_path_pattern()]
        while self.accept_punct(","):
            patterns.append(self._parse_path_pattern())
        return patterns

    def _parse_path_pattern(self) -> PathPattern:
        variable = None
        # Named path: ``p = (a)-[r]->(b)``
        if (
            self.current.type == TokenType.IDENTIFIER
            and self.peek().type == TokenType.OPERATOR
            and self.peek().value == "="
        ):
            variable = self.expect_identifier()
            self.expect_punct("=")
        if (
            self.current.type == TokenType.IDENTIFIER
            and self.current.value.lower() in {"shortestpath", "allshortestpaths"}
            and self.peek().value == "("
        ):
            return self._parse_shortest_path(variable)
        elements: list = [self._parse_node_pattern()]
        while self.at_punct("-") or self.at_punct("<"):
            elements.append(self._parse_relationship_pattern())
            elements.append(self._parse_node_pattern())
        return PathPattern(elements=tuple(elements), variable=variable)

    def _parse_shortest_path(self, variable: Optional[str]) -> PathPattern:
        token = self.advance()
        if token.value.lower() == "allshortestpaths":
            raise UnsupportedFeatureError(
                f"{token.value!r} (line {token.line}, offset {token.position}) is not "
                "supported; shortestPath returns the deterministic single winner"
            )
        self.expect_punct("(")
        inner = self.current
        elements: list = [self._parse_node_pattern()]
        while self.at_punct("-") or self.at_punct("<"):
            elements.append(self._parse_relationship_pattern())
            elements.append(self._parse_node_pattern())
        self.expect_punct(")")
        if len(elements) != 3:
            raise CypherSyntaxError(
                "shortestPath requires a single-relationship pattern "
                "(a)-[:TYPE*..k]-(b)",
                inner.position,
                inner.line,
            )
        rel = elements[1]
        if not rel.is_variable_length:
            # Neo4j also rejects fixed single hops inside shortestPath;
            # treat ``-[:R]-`` as the equivalent ``-[:R*1..1]-``.
            rel = replace(rel, min_hops=1, max_hops=1)
            elements[1] = rel
        return PathPattern(
            elements=tuple(elements), variable=variable, shortest="shortestPath"
        )

    def _parse_node_pattern(self) -> NodePattern:
        self.expect_punct("(")
        variable = None
        labels: list[str] = []
        properties: tuple[tuple[str, Expression], ...] = ()
        if self.current.type == TokenType.IDENTIFIER or (
            self.current.type == TokenType.KEYWORD and not self.at_punct(")")
            and self.current.value not in {"WHERE"}
        ):
            if not self.at_punct(":") and not self.at_punct(")") and not self.at_punct("{"):
                variable = self.expect_identifier()
        while self.accept_punct(":"):
            labels.append(self._parse_label_name())
        if self.at_punct("{"):
            properties = self._parse_map_entries()
        self.expect_punct(")")
        return NodePattern(variable=variable, labels=tuple(labels), properties=properties)

    def _parse_label_name(self) -> str:
        token = self.current
        if token.type == TokenType.STRING:
            self.advance()
            return token.value
        return self.expect_identifier()

    def _parse_relationship_pattern(self) -> RelationshipPattern:
        direction = "both"
        pointing_left = False
        if self.at_punct("<"):
            self.advance()
            pointing_left = True
        self.expect_punct("-")
        variable = None
        types: list[str] = []
        properties: tuple[tuple[str, Expression], ...] = ()
        min_hops = None
        max_hops = None
        if self.accept_punct("["):
            if self.current.type == TokenType.IDENTIFIER and not self.at_punct(":"):
                variable = self.expect_identifier()
            elif self.current.type == TokenType.KEYWORD and self.peek().value in {":", "]", "*"}:
                variable = self.expect_identifier()
            while self.accept_punct(":"):
                types.append(self._parse_label_name())
                while self.accept_punct("|"):
                    self.accept_punct(":")
                    types.append(self._parse_label_name())
            if self.accept_punct("*"):
                min_hops, max_hops = self._parse_hop_range()
            if self.at_punct("{"):
                properties = self._parse_map_entries()
            self.expect_punct("]")
        self.expect_punct("-")
        pointing_right = False
        if self.at_punct(">"):
            arrow = self.advance()
            pointing_right = True
            if pointing_left:
                raise CypherSyntaxError(
                    "relationship cannot point in both directions",
                    arrow.position,
                    arrow.line,
                )
        if pointing_left:
            direction = "in"
        elif pointing_right:
            direction = "out"
        return RelationshipPattern(
            variable=variable,
            types=tuple(types),
            properties=properties,
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
        )

    def _parse_hop_range(self) -> tuple[int, Optional[int]]:
        """Parse the ``*``, ``*n``, ``*n..m``, ``*..m`` hop bounds."""
        min_hops = 1
        max_hops: Optional[int] = None
        if self.current.type == TokenType.INTEGER:
            min_hops = int(self.advance().value)
            max_hops = min_hops
        if self.at_punct(".."):
            self.advance()
            max_hops = None
            if self.current.type == TokenType.INTEGER:
                max_hops = int(self.advance().value)
        return min_hops, max_hops

    def _parse_map_entries(self) -> tuple[tuple[str, Expression], ...]:
        self.expect_punct("{")
        entries: list[tuple[str, Expression]] = []
        if not self.at_punct("}"):
            while True:
                key = self._parse_map_key()
                self.expect_punct(":")
                entries.append((key, self.parse_expression()))
                if not self.accept_punct(","):
                    break
        self.expect_punct("}")
        return tuple(entries)

    def _parse_map_key(self) -> str:
        token = self.current
        if token.type == TokenType.STRING:
            self.advance()
            return token.value
        return self.expect_identifier()

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        """Parse an expression (entry point also used standalone)."""
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_xor()
        while self.at_keyword("OR"):
            self.advance()
            left = BinaryOp(op="OR", left=left, right=self._parse_xor())
        return left

    def _parse_xor(self) -> Expression:
        left = self._parse_and()
        while self.at_keyword("XOR"):
            self.advance()
            left = BinaryOp(op="XOR", left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.at_keyword("AND"):
            self.advance()
            left = BinaryOp(op="AND", left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while True:
            token = self.current
            if token.type == TokenType.OPERATOR and token.value in ("=", "<>", "!=", "<", ">", "<=", ">="):
                op = "<>" if token.value == "!=" else token.value
                self.advance()
                left = BinaryOp(op=op, left=left, right=self._parse_additive())
            elif token.is_keyword("IN"):
                self.advance()
                left = BinaryOp(op="IN", left=left, right=self._parse_additive())
            elif token.is_keyword("CONTAINS"):
                self.advance()
                left = BinaryOp(op="CONTAINS", left=left, right=self._parse_additive())
            elif token.is_keyword("STARTS"):
                self.advance()
                self.expect_keyword("WITH")
                left = BinaryOp(op="STARTS WITH", left=left, right=self._parse_additive())
            elif token.is_keyword("ENDS"):
                self.advance()
                self.expect_keyword("WITH")
                left = BinaryOp(op="ENDS WITH", left=left, right=self._parse_additive())
            elif token.is_keyword("IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                left = IsNull(operand=left, negated=negated)
            else:
                return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.current.type == TokenType.OPERATOR and self.current.value in ("+", "-"):
            op = self.advance().value
            left = BinaryOp(op=op, left=left, right=self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_power()
        while self.current.type == TokenType.OPERATOR and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = BinaryOp(op=op, left=left, right=self._parse_power())
        return left

    def _parse_power(self) -> Expression:
        left = self._parse_unary()
        while self.current.type == TokenType.OPERATOR and self.current.value == "^":
            self.advance()
            left = BinaryOp(op="^", left=left, right=self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self.current.type == TokenType.OPERATOR and self.current.value in ("-", "+"):
            op = self.advance().value
            operand = self._parse_unary()
            if op == "+":
                return operand
            return UnaryOp(op="-", operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expression:
        expression = self._parse_atom()
        while True:
            if self.at_punct(".") and self.peek().type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
                self.advance()
                key = self.expect_identifier()
                expression = PropertyAccess(subject=expression, key=key)
            elif self.at_punct(":"):
                labels = []
                while self.accept_punct(":"):
                    labels.append(self._parse_label_name())
                expression = LabelPredicate(subject=expression, labels=tuple(labels))
            elif self.at_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expression = ListIndex(subject=expression, index=index)
            else:
                return expression

    def _parse_atom(self) -> Expression:
        token = self.current

        if token.type == TokenType.INTEGER:
            self.advance()
            return Literal(int(token.value))
        if token.type == TokenType.FLOAT:
            self.advance()
            return Literal(float(token.value))
        if token.type == TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type == TokenType.PARAMETER:
            self.advance()
            return Parameter(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_keyword("COUNT"):
            return self._parse_count()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            return self._parse_exists()
        if token.is_keyword("ALL", "NOT"):
            # ALL is only a keyword in FOR ALL / YIELD contexts; as an atom it
            # behaves like an identifier-based function (e.g. ``all(...)``).
            return self._parse_identifier_atom()
        if self.at_punct("["):
            return self._parse_list_or_comprehension()
        if self.at_punct("{"):
            entries = self._parse_map_entries()
            return MapLiteral(entries=entries)
        if self.at_punct("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self._parse_identifier_atom()
        raise CypherSyntaxError(
            f"unexpected token {token.value!r} in expression", token.position, token.line
        )

    def _parse_identifier_atom(self) -> Expression:
        name = self.expect_identifier()
        if self.at_punct("("):
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            args: list[Expression] = []
            if not self.at_punct(")"):
                args.append(self.parse_expression())
                while self.accept_punct(","):
                    args.append(self.parse_expression())
            self.expect_punct(")")
            return FunctionCall(name=name.lower(), args=tuple(args), distinct=distinct)
        return Variable(name)

    def _parse_count(self) -> Expression:
        self.expect_keyword("COUNT")
        self.expect_punct("(")
        if self.at_punct("*"):
            self.advance()
            self.expect_punct(")")
            return CountStar()
        distinct = bool(self.accept_keyword("DISTINCT"))
        argument = self.parse_expression()
        self.expect_punct(")")
        return FunctionCall(name="count", args=(argument,), distinct=distinct)

    def _parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        subject: Optional[Expression] = None
        if not self.at_keyword("WHEN"):
            subject = self.parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            if subject is not None:
                condition = BinaryOp(op="=", left=subject, right=condition)
            self.expect_keyword("THEN")
            value = self.parse_expression()
            whens.append((condition, value))
        default = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expression()
        self.expect_keyword("END")
        if not whens:
            raise CypherSyntaxError("CASE requires at least one WHEN branch")
        return CaseExpression(whens=tuple(whens), default=default)

    def _parse_exists(self) -> Expression:
        self.expect_keyword("EXISTS")
        if self.at_punct("{"):
            self.advance()
            where = None
            patterns: list[PathPattern] = []
            if self.accept_keyword("MATCH"):
                patterns = self._parse_pattern_list()
                if self.accept_keyword("WHERE"):
                    where = self.parse_expression()
            else:
                patterns = self._parse_pattern_list()
                if self.accept_keyword("WHERE"):
                    where = self.parse_expression()
            self.expect_punct("}")
            return ExistsPattern(patterns=tuple(patterns), where=where)
        if self.at_punct("("):
            # Either ``EXISTS (pattern)`` or ``exists(expr)``; try the pattern
            # first and fall back to the property-existence function.
            saved = self.pos
            try:
                pattern = self._parse_path_pattern()
                return ExistsPattern(patterns=(pattern,), where=None)
            except CypherSyntaxError:
                self.pos = saved
            self.expect_punct("(")
            argument = self.parse_expression()
            self.expect_punct(")")
            return FunctionCall(name="exists", args=(argument,))
        raise CypherSyntaxError("EXISTS must be followed by a pattern or block")

    def _parse_list_or_comprehension(self) -> Expression:
        self.expect_punct("[")
        if self.at_punct("]"):
            self.advance()
            return ListLiteral(items=())
        # Detect a list comprehension: ``[x IN list … ]``.
        if (
            self.current.type == TokenType.IDENTIFIER
            and self.peek().is_keyword("IN")
        ):
            variable = self.expect_identifier()
            self.expect_keyword("IN")
            source = self.parse_expression()
            where = None
            projection = None
            if self.accept_keyword("WHERE"):
                where = self.parse_expression()
            if self.accept_punct("|"):
                projection = self.parse_expression()
            self.expect_punct("]")
            return ListComprehension(
                variable=variable, source=source, where=where, projection=projection
            )
        items = [self.parse_expression()]
        while self.accept_punct(","):
            items.append(self.parse_expression())
        self.expect_punct("]")
        return ListLiteral(items=tuple(items))


def parse_query(text: str) -> Query:
    """Parse ``text`` into a :class:`~repro.cypher.ast.Query`."""
    return Parser(text).parse_query()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (must consume the entire input)."""
    parser = Parser(text)
    expression = parser.parse_expression()
    if parser.current.type != TokenType.EOF:
        raise CypherSyntaxError(
            f"unexpected trailing input near {parser.current.value!r}",
            parser.current.position,
            parser.current.line,
        )
    return expression
