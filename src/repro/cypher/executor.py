"""Streaming (Volcano-style) executor for the Cypher subset.

The executor processes a query as a *pull pipeline* over binding rows
(plain dictionaries mapping variable names to values).  Each clause is a
row-iterator stage wired to the previous one; nothing is computed until a
consumer pulls, so ``LIMIT``/``single()`` terminate early and read-only
queries run in near-constant memory regardless of how wide the
intermediate row sets would be.

:meth:`QueryExecutor.stream` exposes the pipeline as ``(columns, row
iterator)``; :meth:`QueryExecutor.execute` drains it into the eager
:class:`~repro.cypher.result.QueryResult` for callers that want the whole
answer at once (the trigger engine, the compatibility emulators, tests).

Not every clause can stream.  The following are *pipeline breakers* that
drain their input (and, for clauses with side effects, compute their
entire output) at pipeline-construction time, preserving the exact
semantics of the fully-materialising executor this replaced:

* write clauses (CREATE/MERGE/SET/REMOVE/DELETE/FOREACH) — their effects
  must be applied even when a downstream LIMIT stops pulling, and later
  clauses must observe a graph state as if the clause had run to
  completion;
* CALL — procedures may have side effects (the APOC emulation's
  ``apoc.do.when`` runs write subqueries);
* projections with aggregation, ORDER BY, or ``*`` wildcards — they need
  the complete input (the wildcard also needs it to discover columns).

Construction with ``eager=True`` materialises every stage clause-by-
clause, reproducing the pre-pipeline behaviour exactly; the property
tests and the P6 benchmark use it as the comparison baseline.

Writes go through a :class:`~repro.tx.transaction.Transaction` so that the
transaction's delta captures every change (which is what the PG-Trigger
engine consumes).  When the caller passes a bare graph, a throwaway
transaction is created internally.

Two extension points exist for the trigger and compatibility layers:

* ``virtual_labels`` — a mapping ``label -> set of node/relationship ids``
  that behaves as an additional, query-scoped label.  The trigger engine
  uses it to expose the set-granularity transition variables (``NEWNODES``,
  ``OLDRELS``, …) to conditions written as patterns, e.g.
  ``MATCH (pn:NEWNODES)-[:TreatedAt]-(h)``.
* ``procedures`` — a registry of callables for ``CALL name(args) YIELD …``
  clauses; the APOC emulation registers ``apoc.do.when`` and friends.
"""

from __future__ import annotations

import datetime as _dt
import heapq
import itertools
from dataclasses import replace as _dc_replace
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..graph.model import Node, Relationship
from ..graph.store import PropertyGraph
from ..paths import (
    Path,
    bidirectional_shortest,
    reachability_applicable,
    single_source_shortest,
)
from ..tx.transaction import Transaction
from .ast import (
    CallClause,
    Clause,
    CountStar,
    CreateClause,
    DeleteClause,
    ExistsPattern,
    Expression,
    ForeachClause,
    FunctionCall,
    MatchClause,
    MergeClause,
    NodePattern,
    PathPattern,
    ProjectionItem,
    Query,
    RelationshipPattern,
    RemoveClause,
    RemoveLabelsItem,
    RemovePropertyItem,
    ReturnClause,
    SetClause,
    SetFromMapItem,
    SetLabelsItem,
    SetPropertyItem,
    UnwindClause,
    WithClause,
    expression_variable_names,
    walk_expression,
)
from .errors import CypherError, CypherRuntimeError, CypherTypeError, UnsupportedFeatureError
from .expressions import EvaluationContext, evaluate
from .functions import AGGREGATE_FUNCTIONS, is_aggregate_function
from .physical import HashJoin, JoinOperator
from .planner import (
    AGGREGATE,
    COMPOSITE,
    IN_LIST,
    INDEX,
    ORDERED,
    PLAN_CACHE,
    RANGE,
    REL_INDEX,
    SORT,
    STREAM,
    TOPK,
    WILDCARD,
    AccessPath,
    ProjectionPlan,
    QueryPlan,
)
from .result import QueryResult, QueryStatistics

#: Signature of a registered procedure: ``(arguments, invocation) -> rows``.
#: ``arguments`` are the evaluated argument values; ``invocation`` is a
#: :class:`ProcedureInvocation` giving access to the executor and row.
ProcedureCallable = Callable[[Sequence[Any], "ProcedureInvocation"], Iterable[Mapping[str, Any]]]

#: Default bound applied to unbounded variable-length patterns (``[*]``);
#: prevents accidental exponential blow-ups on dense graphs.
DEFAULT_MAX_HOPS = 15

#: Sentinel distinguishing "no first row" from a row when peeking a
#: pipeline to finalise the presorted flag.
_NO_ROW = object()


class ProcedureInvocation:
    """Context handed to procedure implementations."""

    def __init__(self, executor: "QueryExecutor", row: dict[str, Any]) -> None:
        self.executor = executor
        self.row = row

    @property
    def graph(self) -> PropertyGraph:
        """The graph being queried."""
        return self.executor.graph

    @property
    def transaction(self) -> Transaction:
        """The transaction write statements should go through."""
        return self.executor.transaction

    def run_subquery(
        self, text: str, parameters: Mapping[str, Any] | None = None
    ) -> QueryResult:
        """Execute a nested query sharing this execution's transaction."""
        merged = dict(self.executor.parameters)
        merged.update(parameters or {})
        nested = QueryExecutor(
            self.executor.graph,
            transaction=self.executor.transaction,
            parameters=merged,
            clock=self.executor.clock,
            procedures=self.executor.procedures,
            virtual_labels=self.executor.virtual_labels,
        )
        result = nested.execute(text)
        self.executor.statistics_merge(nested.last_statistics)
        return result


class QueryExecutor:
    """Executes parsed queries against a property graph."""

    def __init__(
        self,
        graph: PropertyGraph,
        transaction: Transaction | None = None,
        parameters: Mapping[str, Any] | None = None,
        clock: Callable[[], _dt.datetime] | None = None,
        procedures: Mapping[str, ProcedureCallable] | None = None,
        virtual_labels: Mapping[str, set[int]] | None = None,
        max_hops: int = DEFAULT_MAX_HOPS,
        eager: bool = False,
        join_ordering: bool = True,
        memoize_match: bool = False,
        memoize_skip_variables: Iterable[str] = (),
        naive_paths: bool = False,
    ) -> None:
        self.graph = graph
        self.transaction = transaction or Transaction(graph)
        self.parameters = dict(parameters or {})
        self.clock = clock or _dt.datetime.now
        self.procedures = dict(procedures or {})
        self.virtual_labels = {k: set(v) for k, v in (virtual_labels or {}).items()}
        self.max_hops = max_hops
        #: Materialise every pipeline stage clause-by-clause (the
        #: pre-streaming behaviour); baseline for equivalence tests/benchmarks.
        self.eager = eager
        #: Apply the planner's cost-based multi-pattern join order.  Off, a
        #: multi-pattern MATCH joins its patterns in clause order — the
        #: naive baseline the differential tests compare against.
        self.join_ordering = join_ordering
        #: Memoise pattern extensions across input rows (see
        #: :meth:`_iter_pattern_memoized`).  Only sound while the graph
        #: cannot change under this executor — the trigger engine enables
        #: it for its read-only batched condition passes.
        self.memoize_match = memoize_match
        #: Variables known to differ on every input row (the trigger
        #: engine passes its transition-variable names): a pattern
        #: depending on one can never get a memo hit, so it stays on the
        #: live path instead of filling the memo with dead entries.
        self.memoize_skip_variables = frozenset(memoize_skip_variables)
        #: Force the recursive path enumerator (and per-start shortest-path
        #: enumeration) instead of the iterative/accelerated routes.  The
        #: differential property suites treat this executor as ground truth.
        self.naive_paths = naive_paths
        self.last_statistics = QueryStatistics()
        self._plan: QueryPlan | None = None
        self._base_context: EvaluationContext | None = None
        self._match_memo: dict[tuple, _MatchMemo] = {}
        self._match_deps: dict[int, tuple[str, ...]] = {}
        #: Whether a ``presorted`` projection may trust its input order.
        #: Armed per :meth:`_stream_rows` pass and cleared the moment an
        #: ``OrderedIndexScan`` start falls back to an unordered scan.
        self._presorted_ok = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query | str,
        parameters: Mapping[str, Any] | None = None,
        bindings: Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute ``query`` (text or parsed) and return its eager result.

        Drains the streaming pipeline built by :meth:`stream`, so eager and
        streaming execution share one code path.  ``bindings`` pre-populates
        the initial row; the trigger engine uses this to expose transition
        variables (``NEW``, ``OLD``, …) to condition and action statements.
        """
        columns, rows = self.stream(query, parameters=parameters, bindings=bindings)
        result = QueryResult(statistics=self.last_statistics)
        result.columns = columns
        result.rows = list(rows)
        return result

    def stream(
        self,
        query: Query | str,
        parameters: Mapping[str, Any] | None = None,
        bindings: Mapping[str, Any] | None = None,
    ) -> tuple[list[str], Iterator[dict[str, Any]]]:
        """Build the pull pipeline for ``query`` and return ``(columns, rows)``.

        The returned iterator is lazy for streamable clause chains: pulling
        one row does the minimum matching work needed to produce it.
        Pipeline-breaker clauses (writes, CALL, aggregation/ORDER BY/``*``
        projections — see the module docstring) run during this call, so a
        query with side effects has applied all of them by the time
        ``stream`` returns, whether or not the iterator is ever consumed.
        """
        return self._stream_rows(query, parameters, [dict(bindings or {})])

    def stream_batch(
        self,
        query: Query | str,
        rows: Iterable[Mapping[str, Any]],
        parameters: Mapping[str, Any] | None = None,
    ) -> tuple[list[str], Iterator[dict[str, Any]]]:
        """Run one pipeline pass over many initial rows (UNWIND-style).

        Exactly :meth:`stream`, except the pipeline starts from every row
        of ``rows`` instead of a single bindings row.  Because every
        streamable stage maps each input row independently and in order,
        the output of a read-only Match/Unwind pipeline is the ordered
        concatenation of what per-row executions would have produced —
        which is what the trigger engine's batched condition evaluation
        relies on.
        """
        return self._stream_rows(query, parameters, [dict(row) for row in rows])

    def _stream_rows(
        self,
        query: Query | str,
        parameters: Mapping[str, Any] | None,
        initial_rows: list[dict[str, Any]],
    ) -> tuple[list[str], Iterator[dict[str, Any]]]:
        if isinstance(query, str):
            query, self._plan = PLAN_CACHE.get(
                query, self.graph, frozenset(self.virtual_labels)
            )
        else:
            self._plan = PLAN_CACHE.get_for_parsed(
                query, self.graph, frozenset(self.virtual_labels)
            )
        if parameters:
            self.parameters.update(parameters)
        self.last_statistics = QueryStatistics()
        # A batch pass concatenates per-row outputs, so only a single
        # initial row can arrive globally ordered; the eager baseline
        # always re-sorts (it is the differential ground truth).
        self._presorted_ok = len(initial_rows) == 1 and not self.eager
        rows: Iterator[dict[str, Any]] = iter(initial_rows)
        for index, clause in enumerate(query.clauses):
            if isinstance(clause, ReturnClause):
                if index != len(query.clauses) - 1:
                    raise UnsupportedFeatureError("RETURN must be the final clause")
                return self._stream_projection(clause, rows)
            rows = self._stream_clause(clause, rows)
        # No RETURN: drain now so the query's effects are fully applied at
        # statement execution time, exactly as in the eager executor.
        for _ in rows:
            pass
        return [], iter(())

    @property
    def last_plan(self) -> QueryPlan | None:
        """The :class:`QueryPlan` chosen by the most recent execution."""
        return self._plan

    def plan_description(self, query: Query | str) -> str:
        """EXPLAIN-style description of the access paths chosen for ``query``.

        Uses the same global plan cache as :meth:`execute`, so this is also
        the way tests assert that an indexed workload actually takes a
        ``PropertyIndex`` lookup.
        """
        if isinstance(query, str):
            _, plan = PLAN_CACHE.get(query, self.graph, frozenset(self.virtual_labels))
        else:
            plan = PLAN_CACHE.get_for_parsed(
                query, self.graph, frozenset(self.virtual_labels)
            )
        return plan.plan_description()

    def statistics_merge(self, other: QueryStatistics) -> None:
        """Fold the statistics of a nested execution into this one."""
        stats = self.last_statistics
        stats.nodes_created += other.nodes_created
        stats.nodes_deleted += other.nodes_deleted
        stats.relationships_created += other.relationships_created
        stats.relationships_deleted += other.relationships_deleted
        stats.labels_added += other.labels_added
        stats.labels_removed += other.labels_removed
        stats.properties_set += other.properties_set
        stats.properties_removed += other.properties_removed

    # ------------------------------------------------------------------
    # clause dispatch
    # ------------------------------------------------------------------

    def _stream_clause(
        self, clause: Clause, rows: Iterator[dict]
    ) -> Iterator[dict]:
        """Wire one clause stage onto the pipeline.

        Streamable clauses return a lazy generator over ``rows``; breaker
        clauses drain ``rows`` and run to completion right here (see the
        module docstring for which ones and why).
        """
        if isinstance(clause, MatchClause):
            out: Iterator[dict] = self._iter_match(clause, rows)
        elif isinstance(clause, UnwindClause):
            out = self._iter_unwind(clause, rows)
        elif isinstance(clause, WithClause):
            out = self._stream_with(clause, rows)
        else:
            out = iter(self._execute_breaker(clause, list(rows)))
        if self.eager:
            out = iter(list(out))
        return out

    def _execute_breaker(self, clause: Clause, rows: list[dict]) -> list[dict]:
        """Run a pipeline-breaker clause eagerly over its materialised input."""
        if isinstance(clause, CreateClause):
            return self._execute_create(clause, rows)
        if isinstance(clause, MergeClause):
            return self._execute_merge(clause, rows)
        if isinstance(clause, SetClause):
            return self._execute_set(clause, rows)
        if isinstance(clause, RemoveClause):
            return self._execute_remove(clause, rows)
        if isinstance(clause, DeleteClause):
            return self._execute_delete(clause, rows)
        if isinstance(clause, ForeachClause):
            return self._execute_foreach(clause, rows)
        if isinstance(clause, CallClause):
            return self._execute_call(clause, rows)
        raise UnsupportedFeatureError(f"clause {type(clause).__name__} is not supported")

    def _execute_clause(self, clause: Clause, rows: list[dict]) -> list[dict]:
        """Eager list-in/list-out execution of one clause (FOREACH bodies)."""
        return list(self._stream_clause(clause, iter(rows)))

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    def _context(self, aggregate_lookup: Optional[dict[int, Any]] = None) -> EvaluationContext:
        if aggregate_lookup is None:
            # The no-aggregate context is immutable and row-independent
            # (``parameters`` is shared by reference), so one instance
            # serves every evaluation of this executor.
            if self._base_context is None:
                self._base_context = EvaluationContext(
                    graph=self.graph,
                    parameters=self.parameters,
                    clock=self.clock,
                    pattern_matcher=self._exists_matcher,
                )
            return self._base_context
        return EvaluationContext(
            graph=self.graph,
            parameters=self.parameters,
            clock=self.clock,
            pattern_matcher=self._exists_matcher,
            aggregate_lookup=aggregate_lookup,
        )

    def _evaluate(self, expr: Expression, row: Mapping[str, Any],
                  aggregate_lookup: Optional[dict[int, Any]] = None) -> Any:
        return evaluate(expr, row, self._context(aggregate_lookup))

    def _exists_matcher(self, exists: ExistsPattern, row: dict[str, Any]) -> bool:
        # Pulls the lazy pattern pipeline and stops at the first surviving
        # row: EXISTS never needs more than one witness.
        for candidate in self._iter_patterns(exists.patterns, dict(row)):
            if exists.where is None or self._evaluate(exists.where, candidate) is True:
                return True
        return False

    def _iter_patterns(
        self, patterns: Sequence[PathPattern], row: dict
    ) -> Iterator[dict]:
        """Lazily join several path patterns, nested-loop style."""
        if not patterns:
            yield row
            return
        for extended in self._iter_pattern(patterns[0], row):
            yield from self._iter_patterns(patterns[1:], extended)

    # ------------------------------------------------------------------
    # MATCH
    # ------------------------------------------------------------------

    def _iter_match(self, clause: MatchClause, rows: Iterator[dict]) -> Iterator[dict]:
        steps = self._match_steps(clause)
        # Hash-join build tables live per MATCH *stage*: one pipeline pass
        # over (possibly many) input rows shares them, keyed by the build
        # pattern's dependency bindings so rows differing in a dependency
        # can never alias (same contract as the match memo).
        join_state: dict[tuple, _JoinTable] = {}
        for row in rows:
            yield from self._iter_match_row(clause, steps, row, join_state)

    def _match_steps(
        self, clause: MatchClause
    ) -> list[tuple[PathPattern, Optional[JoinOperator]]]:
        """The clause's patterns in planned order, with per-step join operators.

        Multi-pattern clauses join their patterns in the planner's
        cost-based order (the patterns form a commutative conjunction, so
        the row *set* is order-independent), and disconnected steps carry
        the planner's HashJoin/CartesianProduct operator.
        ``join_ordering=False`` keeps the naive clause order and pure
        nested-loop joins — the differential baseline.  Resolved once per
        MATCH stage, not per input row.
        """
        if self.join_ordering and self._plan is not None and self._plan.has_join_orders:
            join_order = self._plan.join_order_for(clause)
            if join_order is not None:
                if join_order.steps:
                    return [
                        (clause.patterns[step.pattern_index], step.operator)
                        for step in join_order.steps
                    ]
                return [(clause.patterns[index], None) for index in join_order.order]
        return [(pattern, None) for pattern in clause.patterns]

    def _iter_match_row(
        self,
        clause: MatchClause,
        steps: Sequence[tuple[PathPattern, Optional[JoinOperator]]],
        row: dict,
        join_state: dict,
    ) -> Iterator[dict]:
        """All bindings one input row produces for a MATCH clause, lazily."""
        produced = False
        for candidate in self._iter_join_steps(steps, 0, dict(row), join_state):
            if clause.where is not None and self._evaluate(clause.where, candidate) is not True:
                continue
            produced = True
            yield candidate
        if not produced and clause.optional:
            padded = dict(row)
            for name in _pattern_variables(clause.patterns):
                padded.setdefault(name, None)
            yield padded

    def _iter_join_steps(
        self,
        steps: Sequence[tuple[PathPattern, Optional[JoinOperator]]],
        index: int,
        row: dict,
        join_state: dict,
    ) -> Iterator[dict]:
        """Lazily join the clause's patterns step by step.

        Connected steps (operator ``None``) nested-loop through
        :meth:`_iter_pattern`, starting from the bound values in ``row``.
        Disconnected steps interpret their HashJoin/CartesianProduct
        operator: the pattern's extensions are matched once, stored as
        row *deltas* (optionally bucketed by build-key values), and
        replayed onto every partial row — the key match is only a
        pre-filter, since :meth:`_iter_match_row` still evaluates the full
        WHERE on each joined candidate.
        """
        if index >= len(steps):
            yield row
            return
        pattern, operator = steps[index]
        if operator is None:
            for extended in self._iter_pattern(pattern, row):
                yield from self._iter_join_steps(steps, index + 1, extended, join_state)
            return
        join_variables = getattr(operator, "join_variables", ())
        if join_variables and not self._connected_probe_ok(
            pattern, row, join_variables
        ):
            # This probe row cannot use the shared-variable hash join: a
            # join variable is unbound/non-node (OPTIONAL MATCH padding —
            # unbound matches *everything*, which a hash key cannot
            # express) or the row binds a pattern variable the planner
            # thought free (the unbound build would ignore the anchor).
            # The nested loop is always row-set-correct.
            for extended in self._iter_pattern(pattern, row):
                yield from self._iter_join_steps(steps, index + 1, extended, join_state)
            return
        table = self._join_build_table(pattern, operator, row, join_state)
        for delta in table.probe(self, row):
            if join_variables and not _delta_joins(row, delta, join_variables):
                # Connected joins have no WHERE equality re-verifying the
                # key downstream, so the bucket match is re-checked here by
                # identity — overflow deltas never leak through.
                continue
            merged = dict(row)
            merged.update(delta)
            yield from self._iter_join_steps(steps, index + 1, merged, join_state)

    def _connected_probe_ok(
        self, pattern: PathPattern, row: dict, join_variables: tuple[str, ...]
    ) -> bool:
        """May ``row`` probe the connected pattern's *unbound* build table?

        Requires every join variable bound to a node (the build keys are
        node identities) and every *other* variable the pattern reads to be
        unbound in the row — the planner guarantees that statically, but a
        caller-supplied binding can introduce one at run time.
        """
        if not all(isinstance(row.get(name), Node) for name in join_variables):
            return False
        names = set(self._pattern_dependencies(pattern))
        if pattern.variable is not None:
            names.add(pattern.variable)
        return not any(
            name not in join_variables and row.get(name) is not None
            for name in names
        )

    def _join_build_table(
        self,
        pattern: PathPattern,
        operator: JoinOperator,
        row: dict,
        join_state: dict,
    ) -> "_JoinTable":
        """The (cached) materialised build side of a disconnected join step.

        A disconnected pattern reads nothing from its sibling patterns (the
        planner declines clauses with cross-pattern property reads), so its
        extensions depend only on its dependency bindings — outer-clause
        variables referenced by its property maps.  The cache key pins
        those bindings by identity, exactly like the cross-row match memo,
        so two partial rows agreeing on them share one build.
        """
        if isinstance(operator, HashJoin) and operator.join_variables:
            # A *connected* join builds the pattern unbound: its property
            # maps are static (the planner requires it) and the probe row
            # binds no pattern variable beyond the join keys (the runtime
            # guard checked), so the build depends on nothing from the row
            # and a single table serves the whole MATCH stage.
            key = (id(pattern),)
            table = join_state.get(key)
            if table is None:
                table = _JoinTable(operator.keys)
                for extended in self._iter_pattern(pattern, {}):
                    table.insert(self, _row_delta({}, extended), extended)
                join_state[key] = table
            return table
        key = self._dependency_key(pattern, row)
        table = join_state.get(key)
        if table is None:
            keys = operator.keys if isinstance(operator, HashJoin) else ()
            table = _JoinTable(keys)
            for extended in self._iter_pattern(pattern, row):
                table.insert(self, _row_delta(row, extended), extended)
            table.pins = self._dependency_pins(pattern, row)
            join_state[key] = table
        return table

    def _match_pattern(self, pattern: PathPattern, row: dict) -> list[dict]:
        """All ways of matching ``pattern`` starting from the bindings in ``row``."""
        return list(self._iter_pattern(pattern, row))

    def _iter_pattern(self, pattern: PathPattern, row: dict) -> Iterator[dict]:
        """Lazily yield every way of matching ``pattern`` from ``row``."""
        if self.memoize_match and not any(
            name in self.memoize_skip_variables
            for name in self._pattern_dependencies(pattern)
        ):
            yield from self._iter_pattern_memoized(pattern, row)
        else:
            yield from self._iter_pattern_live(pattern, row)

    def _iter_pattern_memoized(self, pattern: PathPattern, row: dict) -> Iterator[dict]:
        """Cross-row memoization of pattern extensions (batched passes only).

        A pattern reads a fixed set of row bindings — its element
        variables plus whatever its property expressions reference
        (:meth:`_pattern_dependencies`).  Two input rows agreeing on those
        bindings therefore produce the same extensions, differing only in
        the untouched pass-through variables; the first row's extension
        *deltas* are cached (filled lazily, so EXISTS early-exit keeps
        paying only for what it pulls) and replayed onto later rows.

        A batch of trigger activations hits this hard: a condition
        pattern over configuration/catalog nodes that never mentions
        OLD/NEW is matched once instead of once per activation.  Keys use
        binding *identity* (ids pinned via the entry), never value
        equality, so two same-id snapshots with different properties can
        never alias.  Only sound while the graph is frozen for the
        executor's lifetime — which the trigger engine's read-only,
        eagerly drained batch pass guarantees.
        """
        key = self._dependency_key(pattern, row)
        entry = self._match_memo.get(key)
        if entry is None:
            entry = _MatchMemo(
                base=row,
                source=self._iter_pattern_live(pattern, row),
                pins=self._dependency_pins(pattern, row),
            )
            self._match_memo[key] = entry
        index = 0
        while True:
            if index < len(entry.deltas):
                merged = dict(row)
                merged.update(entry.deltas[index])
                index += 1
                yield merged
                continue
            if entry.complete:
                return
            try:
                extended = next(entry.source)
            except StopIteration:
                entry.complete = True
                entry.source = None
                return
            entry.deltas.append(_row_delta(entry.base, extended))

    def _dependency_key(self, pattern: PathPattern, row: dict) -> tuple:
        """Identity-based cache key over a pattern's dependency bindings.

        Shared by the cross-row match memo and the hash-join build cache:
        two rows agreeing (by object identity) on every dependency produce
        identical pattern extensions, so they may share a cache entry —
        provided the keyed objects are pinned (:meth:`_dependency_pins`)
        so their ids cannot be recycled while the entry is alive.
        """
        return (id(pattern),) + tuple(
            (name, id(row[name]))
            for name in self._pattern_dependencies(pattern)
            if name in row
        )

    def _dependency_pins(self, pattern: PathPattern, row: dict) -> list:
        """The binding objects a :meth:`_dependency_key` must keep alive."""
        return [row.get(name) for name in self._pattern_dependencies(pattern)]

    def _pattern_dependencies(self, pattern: PathPattern) -> tuple[str, ...]:
        """Row variables whose bindings can influence matching ``pattern``."""
        dependencies = self._match_deps.get(id(pattern))
        if dependencies is None:
            names: set[str] = set()
            for element in pattern.elements:
                if element.variable is not None:
                    names.add(element.variable)
                for _, expr in element.properties:
                    names.update(expression_variable_names(expr))
            dependencies = tuple(sorted(names))
            self._match_deps[id(pattern)] = dependencies
        return dependencies

    def _iter_pattern_live(self, pattern: PathPattern, row: dict) -> Iterator[dict]:
        """Uncached matching of ``pattern`` against the live graph."""
        elements = pattern.elements
        access: AccessPath | None = None
        if self._plan is not None:
            pattern_plan = self._plan.for_pattern(pattern)
            if pattern_plan is not None:
                elements = pattern_plan.elements
                access = pattern_plan.start
        if pattern.shortest is not None:
            yield from self._iter_shortest(pattern, elements, row, access)
            return
        if access is not None and access.kind == REL_INDEX:
            relationships = self._rel_seek_candidates(access, row)
            if relationships is not None:
                yield from self._iter_pattern_from_relationships(
                    pattern, elements, relationships, row
                )
                return
            # Index gone or value unusable: degrade to the node-anchored scan.
            access = None
        first = elements[0]
        assert isinstance(first, NodePattern)
        for node, bindings in self._candidate_nodes(first, row, access):
            yield from self._extend_path(
                elements, 1, node, bindings, used_rels=set(),
                path_nodes=[node], path_rels=[], pattern=pattern,
            )

    def _rel_seek_candidates(
        self, access: AccessPath, row: dict
    ) -> list[Relationship] | None:
        """Probe the relationship-property index (``None`` forces a scan)."""
        lookup = getattr(self.graph, "relationship_property_index_lookup", None)
        if lookup is None:
            return None
        try:
            value = self._evaluate(access.value, row)
        except (CypherError, TypeError):
            return None
        if value is None:
            return None
        try:
            return lookup(access.rel_type, access.property, value)
        except TypeError:
            # Unhashable probe value: the index cannot answer eagerly.
            return None

    def _iter_pattern_from_relationships(
        self,
        pattern: PathPattern,
        elements: Sequence,
        relationships: Iterable[Relationship],
        row: dict,
    ) -> Iterator[dict]:
        """Match a pattern outward from index-seeked first relationships.

        The seeked relationship pins ``elements[0..2]`` — both endpoint
        node patterns are verified exactly as the node-anchored traversal
        would, an undirected pattern tries both orientations (one for a
        self-loop, matching the adjacency scan), and the rest of the
        pattern extends through the ordinary :meth:`_extend_path` walk.
        """
        node_first = elements[0]
        rel_pattern = elements[1]
        node_second = elements[2]
        assert isinstance(node_first, NodePattern)
        assert isinstance(rel_pattern, RelationshipPattern)
        assert isinstance(node_second, NodePattern)
        for rel in relationships:
            if rel_pattern.direction == "out":
                orientations = [(rel.start, rel.end)]
            elif rel_pattern.direction == "in":
                orientations = [(rel.end, rel.start)]
            elif rel.start == rel.end:
                orientations = [(rel.start, rel.end)]
            else:
                orientations = [(rel.start, rel.end), (rel.end, rel.start)]
            for start_id, end_id in orientations:
                if not (self.graph.has_node(start_id) and self.graph.has_node(end_id)):
                    continue
                start_node = self.graph.node(start_id)
                bindings = self._bind_node(node_first, start_node, row)
                if bindings is None:
                    continue
                if not self._relationship_satisfies(rel_pattern, rel, start_node, bindings):
                    continue
                if rel_pattern.variable is not None:
                    existing = bindings.get(rel_pattern.variable)
                    if existing is not None and not _same_item(existing, rel):
                        continue
                    bindings = dict(bindings)
                    bindings[rel_pattern.variable] = rel
                end_node = self.graph.node(end_id)
                target_bindings = self._bind_node(node_second, end_node, bindings)
                if target_bindings is None:
                    continue
                yield from self._extend_path(
                    elements, 3, end_node, target_bindings, used_rels={rel.id},
                    path_nodes=[start_node, end_node], path_rels=[rel], pattern=pattern,
                )

    # ------------------------------------------------------------------
    # shortestPath
    # ------------------------------------------------------------------
    #
    # Pinned semantics, shared by every route so differential comparison
    # is exact: shortest means fewest relationships; ties break to the
    # lexicographically smallest relationship-id tuple; a start node is
    # never its own target except as the zero-length path when
    # ``min_hops == 0``.  The fast searches only run for ``min_hops`` of 0
    # or 1 (minimal walks are relationship-unique there); a larger minimum
    # or ``naive_paths=True`` takes the enumerating ground-truth route.

    def _iter_shortest(
        self, pattern: PathPattern, elements: Sequence, row: dict,
        access: AccessPath | None,
    ) -> Iterator[dict]:
        source_pattern, rel_pattern, target_pattern = elements
        min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
        max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else self.max_hops
        if access is not None and access.kind == REL_INDEX:
            access = None
        for node, bindings in self._candidate_nodes(source_pattern, row, access):
            yield from self._shortest_from(
                pattern, rel_pattern, target_pattern, node, bindings,
                min_hops, max_hops,
            )

    def _shortest_from(
        self, pattern, rel_pattern, target_pattern, start, bindings,
        min_hops, max_hops,
    ) -> Iterator[dict]:
        variable = target_pattern.variable
        bound = bindings.get(variable) if variable is not None else None
        fast = not self.naive_paths and min_hops <= 1
        if isinstance(bound, Node):
            if bound.id == start.id:
                if min_hops <= 0:
                    yield from self._emit_shortest(
                        pattern, rel_pattern, target_pattern, start, bindings, ()
                    )
                return
            if fast:
                rels = bidirectional_shortest(
                    start.id,
                    bound.id,
                    self._shortest_expander(rel_pattern, bindings),
                    self._shortest_expander(_flip_direction(rel_pattern), bindings),
                    max_hops,
                )
            else:
                rels = self._shortest_naive(
                    rel_pattern, start, bindings, min_hops, max_hops
                ).get(bound.id)
            if rels is not None:
                yield from self._emit_shortest(
                    pattern, rel_pattern, target_pattern, start, bindings, rels
                )
            return
        if fast:
            best = single_source_shortest(
                start.id, self._shortest_expander(rel_pattern, bindings), max_hops
            )
        else:
            best = self._shortest_naive(
                rel_pattern, start, bindings, min_hops, max_hops
            )
        if min_hops <= 0:
            yield from self._emit_shortest(
                pattern, rel_pattern, target_pattern, start, bindings, ()
            )
        for target_id in sorted(
            best, key=lambda t: (len(best[t]), tuple(r.id for r in best[t]))
        ):
            yield from self._emit_shortest(
                pattern, rel_pattern, target_pattern, start, bindings, best[target_id]
            )

    def _shortest_naive(
        self, rel_pattern, start, bindings, min_hops, max_hops
    ) -> dict[int, tuple]:
        """Ground truth: enumerate every relationship-unique path, keep the
        per-target minimum by (length, relationship-id tuple)."""
        floor = max(min_hops, 1)
        best: dict[int, tuple] = {}

        def recurse(node: Node, hops: list, visited: set[int]) -> None:
            if len(hops) >= floor and node.id != start.id:
                key = (len(hops), tuple(r.id for r in hops))
                current = best.get(node.id)
                if current is None or key < (len(current), tuple(r.id for r in current)):
                    best[node.id] = tuple(hops)
            if len(hops) >= max_hops:
                return
            for rel in self._candidate_relationships(rel_pattern, node, bindings, ignore_bound=True):
                if rel.id in visited:
                    continue
                other_id = rel.other_end(node.id)
                if not self.graph.has_node(other_id):
                    continue
                recurse(self.graph.node(other_id), hops + [rel], visited | {rel.id})

        recurse(start, [], set())
        return best

    def _shortest_expander(self, rel_pattern, bindings):
        """Close pattern predicate filtering over a BFS frontier expansion."""

        def expand(node_id: int):
            if not self.graph.has_node(node_id):
                return
            node = self.graph.node(node_id)
            for rel in self._candidate_relationships(
                rel_pattern, node, bindings, ignore_bound=True
            ):
                other_id = rel.other_end(node_id)
                if self.graph.has_node(other_id):
                    yield rel, other_id

        return expand

    def _emit_shortest(
        self, pattern, rel_pattern, target_pattern, start, bindings, rels
    ) -> Iterator[dict]:
        """Materialise one winning relationship tuple into a result row."""
        nodes = [start]
        for rel in rels:
            next_id = rel.other_end(nodes[-1].id)
            if not self.graph.has_node(next_id):
                return
            nodes.append(self.graph.node(next_id))
        target_bindings = self._bind_node(target_pattern, nodes[-1], bindings)
        if target_bindings is None:
            return
        final = dict(target_bindings)
        if rel_pattern.variable is not None:
            final[rel_pattern.variable] = list(rels)
        if pattern.variable is not None:
            final[pattern.variable] = Path(nodes, list(rels))
        yield final

    def _extend_path(
        self,
        elements: Sequence,
        index: int,
        current_node: Node,
        bindings: dict,
        used_rels: set[int],
        path_nodes: list[Node],
        path_rels: list[Relationship],
        pattern: PathPattern,
    ) -> Iterator[dict]:
        if index >= len(elements):
            final = dict(bindings)
            if pattern.variable is not None:
                final[pattern.variable] = Path(path_nodes, path_rels)
            yield final
            return
        rel_pattern = elements[index]
        node_pattern = elements[index + 1]
        assert isinstance(rel_pattern, RelationshipPattern)
        assert isinstance(node_pattern, NodePattern)
        if rel_pattern.is_variable_length:
            yield from self._expand_variable_length(
                rel_pattern, node_pattern, elements, index, current_node, bindings,
                used_rels, path_nodes, path_rels, pattern,
            )
            return
        for rel in self._candidate_relationships(rel_pattern, current_node, bindings):
            if rel.id in used_rels:
                continue
            other_id = rel.other_end(current_node.id)
            if not self.graph.has_node(other_id):
                continue
            other = self.graph.node(other_id)
            new_bindings = self._bind_node(node_pattern, other, bindings)
            if new_bindings is None:
                continue
            if rel_pattern.variable is not None:
                if rel_pattern.variable in new_bindings and not _same_item(
                    new_bindings[rel_pattern.variable], rel
                ):
                    continue
                new_bindings = dict(new_bindings)
                new_bindings[rel_pattern.variable] = rel
            yield from self._extend_path(
                elements, index + 2, other, new_bindings, used_rels | {rel.id},
                path_nodes + [other], path_rels + [rel], pattern,
            )

    def _expand_variable_length(
        self, rel_pattern, node_pattern, elements, index, current_node, bindings,
        used_rels, path_nodes, path_rels, pattern,
    ) -> Iterator[dict]:
        """Dispatch one ``-[:T*min..max]-`` hop to the best applicable route.

        All three routes produce identical rows in identical order (the
        naive recursive enumerator's DFS preorder, candidates in
        relationship-id order); the differential property suites hold them
        to that.  ``naive_paths=True`` pins the recursive ground truth;
        otherwise the iterative walk runs, upgraded to a reachability-index
        interval scan when :func:`repro.paths.accelerator
        .reachability_applicable` says the declared index covers the hop
        and the lazily rebuilt encoding did not decline.
        """
        min_hops = rel_pattern.min_hops if rel_pattern.min_hops is not None else 1
        max_hops = rel_pattern.max_hops if rel_pattern.max_hops is not None else self.max_hops
        if not self.naive_paths:
            rel_type = reachability_applicable(
                self.graph, pattern, rel_pattern, elements, index, self.virtual_labels
            )
            if rel_type is not None:
                accelerator = self.graph.reachability_index(rel_type)
                if accelerator is not None and accelerator.ensure(self.graph):
                    yield from self._expand_reachability(
                        accelerator, rel_pattern, node_pattern, current_node,
                        bindings, min_hops, max_hops,
                    )
                    return
            yield from self._expand_variable_length_iterative(
                rel_pattern, node_pattern, elements, index, current_node, bindings,
                used_rels, path_nodes, path_rels, pattern, min_hops, max_hops,
            )
            return
        yield from self._expand_variable_length_naive(
            rel_pattern, node_pattern, elements, index, current_node, bindings,
            used_rels, path_nodes, path_rels, pattern, min_hops, max_hops,
        )

    def _expand_variable_length_naive(
        self, rel_pattern, node_pattern, elements, index, current_node, bindings,
        used_rels, path_nodes, path_rels, pattern, min_hops, max_hops,
    ) -> Iterator[dict]:
        """The recursive ground-truth enumerator (differential baseline).

        ``trail`` carries the target node of every hop taken so far, so a
        named path binds its intermediate nodes (and a zero-hop match does
        not duplicate the start node).
        """

        def recurse(
            node: Node,
            hops: list[Relationship],
            trail: list[Node],
            visited_rels: set[int],
        ) -> Iterator[dict]:
            if len(hops) >= min_hops:
                target_bindings = self._bind_node(node_pattern, node, bindings)
                if target_bindings is not None:
                    final_bindings = dict(target_bindings)
                    if rel_pattern.variable is not None:
                        final_bindings[rel_pattern.variable] = list(hops)
                    yield from self._extend_path(
                        elements, index + 2, node, final_bindings,
                        used_rels | visited_rels,
                        path_nodes + trail, path_rels + list(hops), pattern,
                    )
            if len(hops) >= max_hops:
                return
            for rel in self._candidate_relationships(rel_pattern, node, bindings, ignore_bound=True):
                if rel.id in visited_rels or rel.id in used_rels:
                    continue
                other_id = rel.other_end(node.id)
                if not self.graph.has_node(other_id):
                    continue
                other = self.graph.node(other_id)
                yield from recurse(
                    other, hops + [rel], trail + [other], visited_rels | {rel.id}
                )

        yield from recurse(current_node, [], [], set())

    def _expand_variable_length_iterative(
        self, rel_pattern, node_pattern, elements, index, current_node, bindings,
        used_rels, path_nodes, path_rels, pattern, min_hops, max_hops,
    ) -> Iterator[dict]:
        """Iterative DFS reproducing the naive enumerator's exact preorder.

        One running ``hops``/``trail``/``visited`` state mutated on
        push/pop replaces the naive route's per-level list and set copies
        and its O(depth) chain of suspended generator frames; snapshots are
        only taken at emission time, where the naive route copies too.
        """
        hops: list[Relationship] = []
        trail: list[Node] = []
        visited: set[int] = set()

        def emit(node: Node) -> Iterator[dict]:
            target_bindings = self._bind_node(node_pattern, node, bindings)
            if target_bindings is None:
                return iter(())
            final_bindings = dict(target_bindings)
            if rel_pattern.variable is not None:
                final_bindings[rel_pattern.variable] = list(hops)
            return self._extend_path(
                elements, index + 2, node, final_bindings, used_rels | visited,
                path_nodes + trail, path_rels + list(hops), pattern,
            )

        if min_hops <= 0:
            yield from emit(current_node)
        if max_hops <= 0:
            return
        stack: list[tuple[Node, Optional[Relationship], Iterator[Relationship]]] = [
            (
                current_node,
                None,
                iter(self._candidate_relationships(
                    rel_pattern, current_node, bindings, ignore_bound=True
                )),
            )
        ]
        while stack:
            node, rel_in, candidates = stack[-1]
            descended = False
            for rel in candidates:
                if rel.id in visited or rel.id in used_rels:
                    continue
                other_id = rel.other_end(node.id)
                if not self.graph.has_node(other_id):
                    continue
                other = self.graph.node(other_id)
                hops.append(rel)
                trail.append(other)
                visited.add(rel.id)
                if len(hops) >= min_hops:
                    yield from emit(other)
                if len(hops) < max_hops:
                    stack.append((
                        other,
                        rel,
                        iter(self._candidate_relationships(
                            rel_pattern, other, bindings, ignore_bound=True
                        )),
                    ))
                    descended = True
                    break
                # Max depth: this hop is a leaf — retreat without a frame.
                visited.discard(rel.id)
                hops.pop()
                trail.pop()
            if not descended:
                stack.pop()
                if rel_in is not None:
                    visited.discard(rel_in.id)
                    hops.pop()
                    trail.pop()

    def _expand_reachability(
        self, accelerator, rel_pattern, node_pattern, current_node, bindings,
        min_hops, max_hops,
    ) -> Iterator[dict]:
        """Serve the hop from the interval encoding (final segment only).

        Applicability guarantees there is no relationship variable, no
        named path and nothing after the target node, so each reachable
        target yields exactly one finished row; the forest shape plus the
        build DFS's relationship-id child order make the scan's preorder
        equal to the naive enumerator's emission order.
        """
        variable = node_pattern.variable
        bound = bindings.get(variable) if variable is not None else None
        if isinstance(bound, Node):
            # Bound target: one O(1) interval-containment probe ("in"
            # swaps the roles — the bound node must be the ancestor).
            if rel_pattern.direction == "out":
                hit = accelerator.reaches(current_node.id, bound.id, min_hops, max_hops)
            else:
                hit = accelerator.reaches(bound.id, current_node.id, min_hops, max_hops)
            if not hit:
                return
            if not self.graph.has_node(bound.id):
                return
            refreshed = self.graph.node(bound.id)
            target_bindings = self._bind_node(node_pattern, refreshed, bindings)
            if target_bindings is not None:
                yield target_bindings
            return
        if rel_pattern.direction == "out":
            targets = accelerator.descendants(current_node.id, min_hops, max_hops)
        else:
            targets = accelerator.ancestors(current_node.id, min_hops, max_hops)
        for target_id in targets:
            if not self.graph.has_node(target_id):
                continue
            target_bindings = self._bind_node(
                node_pattern, self.graph.node(target_id), bindings
            )
            if target_bindings is not None:
                yield target_bindings

    def _candidate_nodes(
        self,
        node_pattern: NodePattern,
        row: dict,
        access: AccessPath | None = None,
    ) -> Iterator[tuple[Node, dict]]:
        """Yield (node, updated bindings) pairs satisfying ``node_pattern``."""
        variable = node_pattern.variable
        if variable is not None and row.get(variable) is not None:
            bound = row[variable]
            if not isinstance(bound, Node):
                raise CypherTypeError(f"variable {variable!r} is not bound to a node")
            refreshed = self.graph.node(bound.id) if self.graph.has_node(bound.id) else bound
            if self._node_satisfies(node_pattern, refreshed, row):
                yield refreshed, dict(row)
            return
        for node in self._scan_nodes(node_pattern, row, access):
            if self._node_satisfies(node_pattern, node, row):
                bindings = dict(row)
                if variable is not None:
                    bindings[variable] = node
                yield node, bindings

    def _scan_nodes(
        self,
        node_pattern: NodePattern,
        row: dict,
        access: AccessPath | None = None,
    ) -> Iterable[Node]:
        """Pick the cheapest starting candidate set for a node pattern.

        A planned access path is advisory: every candidate it produces is
        still checked by :meth:`_node_satisfies` (and any WHERE clause), so
        an index path can only narrow the candidate set, never change the
        result.  When the index is gone or the looked-up value is null the
        path degrades to the unplanned logic below.
        """
        if access is not None and access.kind == INDEX:
            try:
                value = self._evaluate(access.value, row)
                hit = (
                    self.graph.property_index_lookup(access.label, access.property, value)
                    if value is not None
                    else None
                )
            except (TypeError, CypherRuntimeError):
                # Unhashable parameter value (dict, set, …) or a missing
                # parameter: the probe cannot run eagerly.  Fall back to the
                # scan below, which reproduces the unplanned semantics — the
                # WHERE/property re-check raises (or filters) per candidate
                # exactly as it did before planning existed.
                hit = None
            if hit is not None:
                return hit
        elif access is not None and access.kind == COMPOSITE:
            hit = self._composite_seek_candidates(access, row)
            if hit is not None:
                return hit
        elif access is not None and access.kind == IN_LIST:
            hit = self._in_seek_candidates(access, row)
            if hit is not None:
                return hit
        elif access is not None and access.kind == RANGE:
            hit = self._range_seek_candidates(access, row)
            if hit is not None:
                return hit
        elif access is not None and access.kind == ORDERED:
            hit = self._ordered_scan_candidates(access)
            if hit is not None:
                return hit
            # Index dropped or mixed-typed since planning: the label scan
            # below is correct but unordered, so the projection must sort.
            self._presorted_ok = False
        for label in node_pattern.labels:
            if label in self.virtual_labels:
                ids = self.virtual_labels[label]
                return [self.graph.node(i) for i in sorted(ids) if self.graph.has_node(i)]
        if node_pattern.labels:
            real_labels = [l for l in node_pattern.labels if l not in self.virtual_labels]
            if real_labels:
                best = min(real_labels, key=self.graph.count_nodes_with_label)
                return self.graph.nodes_with_label(best)
        return self.graph.nodes()

    def _composite_seek_candidates(self, access: AccessPath, row: dict) -> list[Node] | None:
        """Composite-index probe: every property pinned at once.

        Falls back to scanning (``None``) whenever the probe cannot
        reproduce scan semantics: a value fails to evaluate or is null
        (null never equality-matches), a value is unhashable, or the
        index has been dropped since planning.
        """
        lookup = getattr(self.graph, "composite_index_lookup", None)
        if lookup is None:
            return None
        values: list[Any] = []
        for expr in access.values:
            try:
                value = self._evaluate(expr, row)
            except (CypherError, TypeError):
                return None
            if value is None:
                return None
            values.append(value)
        try:
            return lookup(access.label, access.properties, tuple(values))
        except TypeError:
            return None

    def _ordered_scan_candidates(self, access: AccessPath) -> list[Node] | None:
        """Key-ordered label members from the ordered index (``None``: scan).

        The store declines (returns ``None``) when the index is gone or
        holds mixed type classes; candidates with the property unset come
        last in both directions, matching ``_SortValue``'s null-last rule.
        """
        scan = getattr(self.graph, "ordered_label_scan", None)
        if scan is None:
            return None
        return scan(access.label, access.property, access.descending)

    def _in_seek_candidates(self, access: AccessPath, row: dict) -> list[Node] | None:
        """IN-list seek: the union of one equality probe per list element.

        Returns ``None`` — fall back to scanning — whenever the seek cannot
        reproduce scan semantics exactly: the list expression fails to
        evaluate, is not a list (the live ``IN`` raises per candidate), an
        element is unhashable, or the index has been dropped.  Null
        elements are skipped: under three-valued logic they can only turn
        a non-match into ``null``, never admit a row.
        """
        try:
            values = self._evaluate(access.value, row)
        except (CypherError, TypeError):
            return None
        if not isinstance(values, (list, tuple)):
            return None
        nodes: dict[int, Node] = {}
        for element in values:
            if element is None:
                continue
            try:
                hit = self.graph.property_index_lookup(access.label, access.property, element)
            except TypeError:
                return None
            if hit is None:
                return None
            for node in hit:
                nodes[node.id] = node
        return [nodes[node_id] for node_id in sorted(nodes)]

    def _range_seek_candidates(self, access: AccessPath, row: dict) -> list[Node] | None:
        """Range seek over the ordered index (``None`` forces a scan).

        A ``None`` bound value falls back too: ``n.v > null`` is null for
        every candidate, and sibling WHERE conjuncts must still see those
        candidates (they may raise, exactly as an unplanned scan would).
        The store itself returns ``None`` when entries of a foreign type
        class exist — a scan would raise comparing them with the bound.
        """
        lookup = getattr(self.graph, "range_index_lookup", None)
        if lookup is None:
            return None
        lower = upper = None
        try:
            if access.lower is not None:
                lower = self._evaluate(access.lower, row)
                if lower is None:
                    return None
            if access.upper is not None:
                upper = self._evaluate(access.upper, row)
                if upper is None:
                    return None
        except (CypherError, TypeError):
            return None
        try:
            return lookup(
                access.label,
                access.property,
                lower,
                upper,
                access.include_lower,
                access.include_upper,
            )
        except TypeError:
            return None

    def _node_satisfies(self, node_pattern: NodePattern, node: Node, row: dict) -> bool:
        for label in node_pattern.labels:
            if label in self.virtual_labels:
                if node.id not in self.virtual_labels[label]:
                    return False
            elif label not in node.labels:
                return False
        for key, expr in node_pattern.properties:
            expected = self._evaluate(expr, row)
            if node.properties.get(key) != expected:
                return False
        return True

    def _bind_node(self, node_pattern: NodePattern, node: Node, bindings: dict) -> dict | None:
        """Check ``node`` against the pattern and return extended bindings (or None)."""
        variable = node_pattern.variable
        if variable is not None and bindings.get(variable) is not None:
            existing = bindings[variable]
            if not isinstance(existing, Node) or existing.id != node.id:
                return None
        if not self._node_satisfies(node_pattern, node, bindings):
            return None
        new_bindings = dict(bindings)
        if variable is not None:
            new_bindings[variable] = node
        return new_bindings

    def _candidate_relationships(
        self,
        rel_pattern: RelationshipPattern,
        node: Node,
        bindings: dict,
        ignore_bound: bool = False,
    ) -> list[Relationship]:
        variable = rel_pattern.variable
        if (
            not ignore_bound
            and variable is not None
            and bindings.get(variable) is not None
            and isinstance(bindings[variable], Relationship)
        ):
            candidates = [bindings[variable]]
            if self.graph.has_relationship(candidates[0].id):
                candidates = [self.graph.relationship(candidates[0].id)]
        else:
            direction = {"out": "out", "in": "in", "both": "both"}[rel_pattern.direction]
            candidates = self.graph.relationships_of(node.id, direction=direction)
        result = []
        for rel in candidates:
            if not self._relationship_satisfies(rel_pattern, rel, node, bindings):
                continue
            result.append(rel)
        return result

    def _relationship_satisfies(
        self, rel_pattern: RelationshipPattern, rel: Relationship, node: Node, bindings: dict
    ) -> bool:
        if rel.start != node.id and rel.end != node.id:
            return False
        if rel_pattern.direction == "out" and rel.start != node.id:
            return False
        if rel_pattern.direction == "in" and rel.end != node.id:
            return False
        if rel_pattern.types:
            virtual_hit = any(
                t in self.virtual_labels and rel.id in self.virtual_labels[t]
                for t in rel_pattern.types
            )
            if not virtual_hit and rel.type not in rel_pattern.types:
                return False
        for key, expr in rel_pattern.properties:
            expected = self._evaluate(expr, bindings)
            if rel.properties.get(key) != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # UNWIND
    # ------------------------------------------------------------------

    def _iter_unwind(self, clause: UnwindClause, rows: Iterator[dict]) -> Iterator[dict]:
        for row in rows:
            value = self._evaluate(clause.expression, row)
            if value is None:
                continue
            elements = value if isinstance(value, (list, tuple)) else [value]
            for element in elements:
                new_row = dict(row)
                new_row[clause.variable] = element
                yield new_row

    # ------------------------------------------------------------------
    # WITH / RETURN (projection and aggregation)
    # ------------------------------------------------------------------

    def _execute_with(self, clause: WithClause, rows: list[dict]) -> list[dict]:
        _, projected = self._project(clause, rows)
        if clause.where is not None:
            projected = [row for row in projected if self._evaluate(clause.where, row) is True]
        return projected

    def _stream_with(self, clause: WithClause, rows: Iterator[dict]) -> Iterator[dict]:
        mode = self._projection_mode(clause)
        if mode == TOPK and not self.eager:
            projected: Iterator[dict] = self._iter_topk(clause, rows)
        elif mode != STREAM:
            return iter(self._execute_with(clause, list(rows)))
        else:
            projected = self._iter_projection(clause, rows)
        if clause.where is not None:
            projected = (
                row for row in projected if self._evaluate(clause.where, row) is True
            )
        return projected

    def _stream_projection(
        self, clause: ReturnClause, rows: Iterator[dict]
    ) -> tuple[list[str], Iterator[dict]]:
        """Terminal RETURN stage: ``(columns, lazily projected rows)``."""
        mode = self._projection_mode(clause)
        if self.eager or mode in (AGGREGATE, WILDCARD, SORT):
            columns, projected = self._project(clause, list(rows))
            return columns, iter(projected)
        columns = [item.output_name() for item in clause.items]
        if mode == TOPK:
            return columns, self._iter_topk(clause, rows)
        return columns, self._iter_projection(clause, rows)

    def _projection_mode(self, clause: WithClause | ReturnClause) -> str:
        """The planner's execution mode for this projection.

        Read from the physical plan when one is available (the common
        case); re-derived only for clause objects executed outside a
        planned query.  The ``eager`` baseline executes TOPK clauses
        through the full-sort breaker, which is what the differential
        suites compare the heap against.
        """
        if self._plan is not None and self._plan.has_projection_plans:
            projection = self._plan.projection_for(clause)
            if projection is not None:
                return projection.mode
        if _collect_aggregates(list(clause.items)):
            return AGGREGATE
        if clause.include_wildcard:
            return WILDCARD
        if clause.order_by:
            if clause.limit is not None and not clause.distinct:
                return TOPK
            return SORT
        return STREAM

    def _iter_topk(
        self, clause: WithClause | ReturnClause, rows: Iterator[dict]
    ) -> Iterator[dict]:
        """Heap-based ORDER BY + LIMIT: keep ``skip+limit`` rows, not all.

        ``heapq.nsmallest`` is documented to equal ``sorted(...)[:k]`` —
        including stability, via its internal input-order tiebreaker — so
        this yields exactly what the full-sort breaker would, in O(n log k)
        time and O(k) memory.
        """
        items = list(clause.items)
        skip = max(0, int(self._evaluate(clause.skip, {}))) if clause.skip is not None else 0
        limit = max(0, int(self._evaluate(clause.limit, {})))
        if limit <= 0:
            return
        projection = self._projection_plan(clause)
        if projection is not None and projection.presorted and self._presorted_ok:
            # Peek one row first: producing it forces the MATCH stage to
            # pick its start operator, so ``_presorted_ok`` is final.
            first = next(rows, _NO_ROW)
            source = rows if first is _NO_ROW else itertools.chain([first], rows)
            if self._presorted_ok:
                yield from self._iter_topk_presorted(
                    items, source, skip, limit, projection.early_exit
                )
                return
            rows = source  # ordered scan fell back: take the heap below
        sort_items = clause.order_by

        def pairs() -> Iterator[tuple[dict, dict]]:
            for row in rows:
                out: dict[str, Any] = {}
                for item in items:
                    out[item.output_name()] = self._evaluate(item.expression, row)
                yield out, row

        def sort_key(pair: tuple[dict, dict]) -> list:
            projected, source = pair
            # Same scoping rule as the full-sort path: ORDER BY sees both
            # the projected aliases and the pre-projection variables.
            scope = {**source, **projected}
            return [
                _SortValue(self._evaluate(item.expression, scope), descending=item.descending)
                for item in sort_items
            ]

        top = heapq.nsmallest(skip + limit, pairs(), key=sort_key)
        for projected, _ in top[skip:]:
            yield projected

    def _iter_topk_presorted(
        self,
        items: list[ProjectionItem],
        rows: Iterator[dict],
        skip: int,
        limit: int,
        early_exit: bool,
    ) -> Iterator[dict]:
        """TopK over input the ordered scan already sorted: no heap at all.

        With ``early_exit`` (every projection expression evaluation-safe)
        the input stops being pulled once LIMIT rows are out — the whole
        point of the ordered scan.  Without it, every row is still
        projected *before* anything is yielded, so an expression that
        raises surfaces exactly as the heap path (which projects all rows
        inside ``nsmallest``) would have surfaced it.
        """
        if early_exit:
            skipped = emitted = 0
            for row in rows:
                out = {
                    item.output_name(): self._evaluate(item.expression, row)
                    for item in items
                }
                if skipped < skip:
                    skipped += 1
                    continue
                yield out
                emitted += 1
                if emitted >= limit:
                    return
            return
        kept: list[dict] = []
        for row in rows:
            out = {
                item.output_name(): self._evaluate(item.expression, row)
                for item in items
            }
            if len(kept) < skip + limit:
                kept.append(out)
        yield from kept[skip:]

    def _projection_plan(
        self, clause: WithClause | ReturnClause
    ) -> ProjectionPlan | None:
        if self._plan is not None and self._plan.has_projection_plans:
            return self._plan.projection_for(clause)
        return None

    def _iter_projection(
        self, clause: WithClause | ReturnClause, rows: Iterator[dict]
    ) -> Iterator[dict]:
        """Streaming projection with DISTINCT and SKIP/LIMIT short-circuiting."""
        items = list(clause.items)
        seen: set | None = set() if clause.distinct else None
        skip = max(0, int(self._evaluate(clause.skip, {}))) if clause.skip is not None else 0
        limit = max(0, int(self._evaluate(clause.limit, {}))) if clause.limit is not None else None
        if limit is not None and limit <= 0:
            return
        emitted = 0
        skipped = 0
        for row in rows:
            out: dict[str, Any] = {}
            for item in items:
                out[item.output_name()] = self._evaluate(item.expression, row)
            if seen is not None:
                key = tuple(sorted((k, _hashable(v)) for k, v in out.items()))
                if key in seen:
                    continue
                seen.add(key)
            if skipped < skip:
                skipped += 1
                continue
            yield out
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def _project(
        self, clause: WithClause | ReturnClause, rows: list[dict]
    ) -> tuple[list[str], list[dict]]:
        items = list(clause.items)
        columns: list[str] = []
        wildcard_names: list[str] = []
        if clause.include_wildcard:
            seen: set[str] = set()
            for row in rows:
                for name in row:
                    if name not in seen:
                        seen.add(name)
                        wildcard_names.append(name)
            columns.extend(wildcard_names)
        columns.extend(item.output_name() for item in items)

        aggregates = _collect_aggregates(items)
        if aggregates:
            pairs = self._project_with_aggregation(items, wildcard_names, aggregates, rows)
        else:
            pairs = []
            for row in rows:
                out: dict[str, Any] = {}
                for name in wildcard_names:
                    out[name] = row.get(name)
                for item in items:
                    out[item.output_name()] = self._evaluate(item.expression, row)
                pairs.append((out, row))

        if clause.distinct:
            pairs = _distinct_pairs(pairs)
        if clause.order_by and not self._input_presorted(clause):
            pairs = self._order_rows(pairs, clause.order_by)
        if clause.skip is not None:
            # Clamp at 0 so a (nonsensical) negative value cannot trip
            # Python's negative-index slicing; mirrors _iter_projection.
            skip = max(0, int(self._evaluate(clause.skip, {})))
            pairs = pairs[skip:]
        if clause.limit is not None:
            limit = max(0, int(self._evaluate(clause.limit, {})))
            pairs = pairs[:limit]
        return columns, [projected for projected, _ in pairs]

    def _project_with_aggregation(
        self,
        items: Sequence[ProjectionItem],
        wildcard_names: Sequence[str],
        aggregates: list[Expression],
        rows: list[dict],
    ) -> list[tuple[dict, dict]]:
        if wildcard_names:
            raise UnsupportedFeatureError("WITH */RETURN * cannot be combined with aggregation")
        grouping_items = [
            item for item in items if not contains_aggregate(item.expression)
        ]
        groups: dict[tuple, dict] = {}
        group_rows: dict[tuple, list[dict]] = {}
        for row in rows:
            key_values = tuple(
                _hashable(self._evaluate(item.expression, row)) for item in grouping_items
            )
            if key_values not in groups:
                groups[key_values] = row
                group_rows[key_values] = []
            group_rows[key_values].append(row)
        # A pure-aggregate projection over zero rows still yields one row
        # (e.g. ``RETURN count(*)`` on an empty match gives 0).
        if not groups and not grouping_items:
            groups[()] = {}
            group_rows[()] = []

        pairs: list[tuple[dict, dict]] = []
        for key, representative in groups.items():
            lookup: dict[int, Any] = {}
            for aggregate in aggregates:
                lookup[id(aggregate)] = self._run_aggregator(aggregate, group_rows[key])
            out: dict[str, Any] = {}
            for item in items:
                out[item.output_name()] = self._evaluate(
                    item.expression, representative, aggregate_lookup=lookup
                )
            pairs.append((out, representative))
        return pairs

    def _run_aggregator(self, aggregate: Expression, rows: list[dict]) -> Any:
        if isinstance(aggregate, CountStar):
            return len(rows)
        assert isinstance(aggregate, FunctionCall)
        factory = AGGREGATE_FUNCTIONS[aggregate.name]
        aggregator = factory(aggregate.distinct)
        argument = aggregate.args[0] if aggregate.args else None
        for row in rows:
            value = self._evaluate(argument, row) if argument is not None else 1
            aggregator.update(value)
        return aggregator.result()

    def _input_presorted(self, clause: WithClause | ReturnClause) -> bool:
        """May this projection skip its sort?  Only after its input is
        fully materialised (``_project`` receives a list), so the ordered
        scan has already run — or declined — and the flag is final."""
        if not self._presorted_ok:
            return False
        projection = self._projection_plan(clause)
        return projection is not None and projection.presorted

    def _order_rows(
        self, pairs: list[tuple[dict, dict]], sort_items
    ) -> list[tuple[dict, dict]]:
        def sort_key(pair: tuple[dict, dict]):
            projected, source = pair
            # ORDER BY may refer both to projected aliases and to the
            # pre-projection variables (as in openCypher); projected names win.
            scope = {**source, **projected}
            key = []
            for item in sort_items:
                value = self._evaluate(item.expression, scope)
                key.append(_SortValue(value, descending=item.descending))
            return key

        return sorted(pairs, key=sort_key)

    # ------------------------------------------------------------------
    # CREATE / MERGE
    # ------------------------------------------------------------------

    def _execute_create(self, clause: CreateClause, rows: list[dict]) -> list[dict]:
        output = []
        for row in rows:
            current = dict(row)
            for pattern in clause.patterns:
                current = self._create_pattern(pattern, current)
            output.append(current)
        return output

    def _create_pattern(self, pattern: PathPattern, row: dict) -> dict:
        bindings = dict(row)
        elements = pattern.elements
        previous_node: Node | None = None
        index = 0
        while index < len(elements):
            node_pattern = elements[index]
            assert isinstance(node_pattern, NodePattern)
            node = self._resolve_or_create_node(node_pattern, bindings)
            if index > 0:
                rel_pattern = elements[index - 1]
                assert isinstance(rel_pattern, RelationshipPattern)
                self._create_relationship(rel_pattern, previous_node, node, bindings)
            previous_node = node
            index += 2
        return bindings

    def _resolve_or_create_node(self, node_pattern: NodePattern, bindings: dict) -> Node:
        variable = node_pattern.variable
        if variable is not None and bindings.get(variable) is not None:
            existing = bindings[variable]
            if not isinstance(existing, Node):
                raise CypherTypeError(f"variable {variable!r} is not bound to a node")
            return self.graph.node(existing.id) if self.graph.has_node(existing.id) else existing
        properties = {
            key: self._evaluate(expr, bindings) for key, expr in node_pattern.properties
        }
        node = self.transaction.create_node(node_pattern.labels, properties)
        stats = self.last_statistics
        stats.nodes_created += 1
        stats.labels_added += len(node_pattern.labels)
        stats.properties_set += len([v for v in properties.values() if v is not None])
        if variable is not None:
            bindings[variable] = node
        return node

    def _create_relationship(
        self, rel_pattern: RelationshipPattern, left: Node, right: Node, bindings: dict
    ) -> Relationship:
        if rel_pattern.is_variable_length:
            raise UnsupportedFeatureError("cannot CREATE variable-length relationships")
        if len(rel_pattern.types) != 1:
            raise CypherRuntimeError("CREATE requires exactly one relationship type")
        if rel_pattern.direction == "in":
            start, end = right, left
        else:
            # Undirected create defaults to left-to-right, as in Neo4j.
            start, end = left, right
        properties = {
            key: self._evaluate(expr, bindings) for key, expr in rel_pattern.properties
        }
        rel = self.transaction.create_relationship(
            rel_pattern.types[0], start.id, end.id, properties
        )
        stats = self.last_statistics
        stats.relationships_created += 1
        stats.properties_set += len([v for v in properties.values() if v is not None])
        if rel_pattern.variable is not None:
            bindings[rel_pattern.variable] = rel
        return rel

    def _execute_merge(self, clause: MergeClause, rows: list[dict]) -> list[dict]:
        output: list[dict] = []
        for row in rows:
            matches = self._match_pattern(clause.pattern, dict(row))
            if matches:
                output.extend(matches)
            else:
                output.append(self._create_pattern(clause.pattern, dict(row)))
        return output

    # ------------------------------------------------------------------
    # SET / REMOVE / DELETE / FOREACH / CALL
    # ------------------------------------------------------------------

    def _resolve_item(self, row: dict, name: str) -> Node | Relationship | None:
        if name not in row:
            raise CypherRuntimeError(f"unknown variable {name!r}")
        item = row[name]
        if item is None:
            return None
        if not isinstance(item, (Node, Relationship)):
            raise CypherTypeError(f"variable {name!r} is not a node or relationship")
        return item

    def _execute_set(self, clause: SetClause, rows: list[dict]) -> list[dict]:
        stats = self.last_statistics
        for row in rows:
            for item in clause.items:
                if isinstance(item, SetPropertyItem):
                    target = self._resolve_item(row, item.subject)
                    if target is None:
                        continue
                    value = self._evaluate(item.value, row)
                    self._set_property(target, item.key, value)
                elif isinstance(item, SetLabelsItem):
                    target = self._resolve_item(row, item.subject)
                    if target is None:
                        continue
                    if not isinstance(target, Node):
                        raise CypherTypeError("labels can only be set on nodes")
                    for label in item.labels:
                        already = label in self._current_snapshot(target).labels
                        self.transaction.add_label(target.id, label)
                        if not already:
                            stats.labels_added += 1
                elif isinstance(item, SetFromMapItem):
                    target = self._resolve_item(row, item.subject)
                    if target is None:
                        continue
                    value = self._evaluate(item.value, row)
                    if not isinstance(value, Mapping):
                        raise CypherTypeError("SET … = / += requires a map value")
                    self._set_from_map(target, value, replace=item.replace)
                self._refresh_binding(row, item.subject)
        return rows

    def _refresh_binding(self, row: dict, name: str) -> None:
        """Re-bind ``name`` to the item's current snapshot after a write.

        Snapshots are immutable, so later expressions in the same query would
        otherwise keep seeing pre-write values.
        """
        item = row.get(name)
        if isinstance(item, Node) and self.graph.has_node(item.id):
            row[name] = self.graph.node(item.id)
        elif isinstance(item, Relationship) and self.graph.has_relationship(item.id):
            row[name] = self.graph.relationship(item.id)

    def _current_snapshot(self, target: Node | Relationship) -> Node | Relationship:
        """The store's current snapshot of ``target`` (or ``target`` if gone)."""
        if isinstance(target, Node):
            if self.graph.has_node(target.id):
                return self.graph.node(target.id)
        elif self.graph.has_relationship(target.id):
            return self.graph.relationship(target.id)
        return target

    def _set_property(self, target: Node | Relationship, key: str, value: Any) -> None:
        stats = self.last_statistics
        if value is None:
            # Removing an absent property is a no-op and must not count
            # (removal counters drive ResultSummary / trigger accounting).
            present = key in self._current_snapshot(target).properties
            if isinstance(target, Node):
                self.transaction.remove_node_property(target.id, key)
            else:
                self.transaction.remove_relationship_property(target.id, key)
            if present:
                stats.properties_removed += 1
        else:
            if isinstance(target, Node):
                self.transaction.set_node_property(target.id, key, value)
            else:
                self.transaction.set_relationship_property(target.id, key, value)
            stats.properties_set += 1

    def _set_from_map(self, target: Node | Relationship, value: Mapping, replace: bool) -> None:
        if replace:
            current = self.graph.node(target.id) if isinstance(target, Node) else (
                self.graph.relationship(target.id)
            )
            for key in list(current.properties):
                if key not in value:
                    self._set_property(target, key, None)
        for key, entry in value.items():
            self._set_property(target, key, entry)

    def _execute_remove(self, clause: RemoveClause, rows: list[dict]) -> list[dict]:
        stats = self.last_statistics
        for row in rows:
            for item in clause.items:
                target = self._resolve_item(row, item.subject)
                if target is None:
                    continue
                if isinstance(item, RemovePropertyItem):
                    self._set_property(target, item.key, None)
                elif isinstance(item, RemoveLabelsItem):
                    if not isinstance(target, Node):
                        raise CypherTypeError("labels can only be removed from nodes")
                    for label in item.labels:
                        present = label in self._current_snapshot(target).labels
                        self.transaction.remove_label(target.id, label)
                        if present:
                            stats.labels_removed += 1
                self._refresh_binding(row, item.subject)
        return rows

    def _execute_delete(self, clause: DeleteClause, rows: list[dict]) -> list[dict]:
        stats = self.last_statistics
        deleted_nodes: set[int] = set()
        deleted_rels: set[int] = set()
        for row in rows:
            for expr in clause.expressions:
                value = self._evaluate(expr, row)
                items = value if isinstance(value, (list, tuple)) else [value]
                for item in items:
                    if item is None:
                        continue
                    if isinstance(item, Relationship):
                        if item.id not in deleted_rels and self.graph.has_relationship(item.id):
                            self.transaction.delete_relationship(item.id)
                            deleted_rels.add(item.id)
                            stats.relationships_deleted += 1
                    elif isinstance(item, Node):
                        if item.id in deleted_nodes or not self.graph.has_node(item.id):
                            continue
                        before = self.graph.relationship_count()
                        self.transaction.delete_node(item.id, detach=clause.detach)
                        deleted_nodes.add(item.id)
                        stats.nodes_deleted += 1
                        stats.relationships_deleted += before - self.graph.relationship_count()
                    else:
                        raise CypherTypeError("DELETE expects nodes or relationships")
        return rows

    def _execute_foreach(self, clause: ForeachClause, rows: list[dict]) -> list[dict]:
        for row in rows:
            source = self._evaluate(clause.source, row)
            if source is None:
                continue
            if not isinstance(source, (list, tuple)):
                raise CypherTypeError("FOREACH requires a list")
            for element in source:
                scoped = dict(row)
                scoped[clause.variable] = element
                inner_rows = [scoped]
                for inner in clause.body:
                    inner_rows = self._execute_clause(inner, inner_rows)
        return rows

    def _execute_call(self, clause: CallClause, rows: list[dict]) -> list[dict]:
        implementation = self.procedures.get(clause.procedure)
        if implementation is None:
            raise UnsupportedFeatureError(
                f"procedure {clause.procedure!r} is not registered with this executor"
            )
        output: list[dict] = []
        for row in rows:
            arguments = [self._evaluate(arg, row) for arg in clause.arguments]
            invocation = ProcedureInvocation(self, dict(row))
            yielded = implementation(arguments, invocation)
            for produced in yielded:
                new_row = dict(row)
                if clause.yield_items:
                    for name, alias in clause.yield_items:
                        new_row[alias] = produced.get(name)
                else:
                    new_row.update(produced)
                output.append(new_row)
        return output


# ---------------------------------------------------------------------------
# module-level helpers
# ---------------------------------------------------------------------------


class _MatchMemo:
    """One memoized pattern extension set (see ``_iter_pattern_memoized``).

    ``deltas`` grows lazily from ``source`` (the live match generator of
    the first row that needed this key) until ``complete``; ``base`` is
    that first row, against which deltas are computed; ``pins`` keeps the
    keyed binding objects alive so their ids cannot be recycled while the
    entry can still be hit.
    """

    __slots__ = ("base", "source", "pins", "deltas", "complete")

    def __init__(self, base: dict, source: Iterator[dict], pins: list) -> None:
        self.base = base
        self.source: Iterator[dict] | None = source
        self.pins = pins
        self.deltas: list[dict] = []
        self.complete = False


class _JoinTable:
    """The materialised build side of one disconnected join step.

    Rows are stored as deltas against the build row.  With hash keys the
    deltas are additionally bucketed by their build-key values
    (``_hashable``-normalised, so node/relationship identity matches the
    executor's equality semantics); without keys — or whenever a key fails
    to evaluate or hash on either side — matching degrades to scanning
    every delta, which keeps the join a strict superset of what the WHERE
    clause will accept.  ``pins`` keeps the dependency bindings alive so
    the id()-based cache key can never alias recycled objects.
    """

    __slots__ = ("keys", "buckets", "deltas", "overflow", "pins")

    def __init__(self, keys: tuple) -> None:
        self.keys = keys
        self.buckets: dict[tuple, list[dict]] | None = {} if keys else None
        self.deltas: list[dict] = []
        self.overflow: list[dict] = []
        self.pins: list = []

    def insert(self, executor: "QueryExecutor", delta: dict, full_row: dict) -> None:
        self.deltas.append(delta)
        if not self.keys:
            return
        try:
            key = tuple(
                _hashable(executor._evaluate(build, full_row)) for _, build in self.keys
            )
            hash(key)
        except (CypherError, TypeError):
            self.overflow.append(delta)
            return
        self.buckets.setdefault(key, []).append(delta)

    def probe(self, executor: "QueryExecutor", row: dict) -> Iterable[dict]:
        """Deltas that may join with ``row`` (a superset of WHERE's matches)."""
        if not self.keys:
            return self.deltas
        try:
            key = tuple(
                _hashable(executor._evaluate(probe, row)) for probe, _ in self.keys
            )
            hash(key)
        except (CypherError, TypeError):
            return self.deltas
        bucket = self.buckets.get(key, ())
        if self.overflow:
            return itertools.chain(bucket, self.overflow)
        return bucket



#: Clauses with no side effects; anything else (writes, CALL — procedures
#: may run write subqueries) makes a query non-read-only.
_READ_ONLY_CLAUSES = (MatchClause, UnwindClause, WithClause, ReturnClause)


def query_is_read_only(query: Query) -> bool:
    """True when every clause of ``query`` is side-effect free.

    Read-only queries are the ones :class:`repro.triggers.session.GraphSession`
    may hand out as lazily-consumed streaming results: deferring their
    evaluation can never defer a write.
    """
    return all(isinstance(clause, _READ_ONLY_CLAUSES) for clause in query.clauses)


class _SortValue:
    """Sort key wrapper implementing null-last ordering and DESC inversion."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortValue") -> bool:
        left, right = self.value, other.value
        if left is None and right is None:
            return False
        if left is None:
            return False if not self.descending else False
        if right is None:
            return True
        if self.descending:
            return right < left
        return left < right

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortValue) and self.value == other.value


def _row_delta(base: dict, extended: dict) -> dict:
    """The bindings ``extended`` adds (or rebinds, by identity) over ``base``.

    The shared delta representation of the match memo and the hash-join
    build tables: replaying a delta onto any row agreeing with ``base`` on
    the pattern's dependencies reproduces the extension exactly.
    """
    return {
        name: value
        for name, value in extended.items()
        if name not in base or base[name] is not value
    }


def _delta_joins(row: dict, delta: dict, join_variables: tuple[str, ...]) -> bool:
    """Does a build delta bind every join variable to the row's node?

    The exactness check behind connected hash joins: the hash bucket is
    only a pre-filter (overflow deltas bypass it), and unlike disconnected
    joins no WHERE conjunct re-verifies the key equality afterwards.
    """
    for name in join_variables:
        build_value = delta.get(name)
        if not isinstance(build_value, Node) or not _same_item(row[name], build_value):
            return False
    return True


def _pattern_variables(patterns: Iterable[PathPattern]) -> list[str]:
    names: list[str] = []
    for pattern in patterns:
        if pattern.variable:
            names.append(pattern.variable)
        for element in pattern.elements:
            if element.variable:
                names.append(element.variable)
    return names


def _flip_direction(rel_pattern: RelationshipPattern) -> RelationshipPattern:
    """The same relationship pattern traversed from the other end."""
    flipped = {"out": "in", "in": "out", "both": "both"}[rel_pattern.direction]
    return _dc_replace(rel_pattern, direction=flipped)


def _same_item(left: Any, right: Any) -> bool:
    if isinstance(left, (Node, Relationship)) and isinstance(right, (Node, Relationship)):
        return type(left) is type(right) and left.id == right.id
    return left == right


def contains_aggregate(expr: Expression) -> bool:
    """True when ``expr`` contains an aggregate call (or ``count(*)``).

    Shared rule: the projection planner uses it to pick grouping items,
    and the trigger engine's batchability check uses it to reject
    conditions that would aggregate *across* activations.
    """
    for sub in walk_expression(expr):
        if isinstance(sub, CountStar):
            return True
        if isinstance(sub, FunctionCall) and is_aggregate_function(sub.name):
            return True
    return False


def _collect_aggregates(items: Sequence[ProjectionItem]) -> list[Expression]:
    found: list[Expression] = []
    for item in items:
        for sub in walk_expression(item.expression):
            if isinstance(sub, CountStar) or (
                isinstance(sub, FunctionCall) and is_aggregate_function(sub.name)
            ):
                found.append(sub)
    return found


def _hashable(value: Any) -> Any:
    """A hashable stand-in preserving the executor's value equality.

    Every composite is tagged with its type: without the tags, a list of
    pairs and a map lower to the *same* tuple-of-pairs (``[['a', 1]]`` vs
    ``{a: 1}``), so DISTINCT and grouping would silently merge rows of
    different types.
    """
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, Path):
        return ("path",) + value._key()
    if isinstance(value, list):
        return ("list", tuple(_hashable(v) for v in value))
    if isinstance(value, dict):
        return ("dict", tuple(sorted((k, _hashable(v)) for k, v in value.items())))
    return value


def _distinct_pairs(pairs: list[tuple[dict, dict]]) -> list[tuple[dict, dict]]:
    seen: set = set()
    output: list[tuple[dict, dict]] = []
    for projected, source in pairs:
        key = tuple(sorted((k, _hashable(v)) for k, v in projected.items()))
        if key not in seen:
            seen.add(key)
            output.append((projected, source))
    return output
