"""Index-aware query planning and the global parse+plan cache.

Until this module existed, every layer of the system paid the same two
costs on each query execution: the text was re-tokenised and re-parsed
(the trigger engine kept two ad-hoc per-trigger dicts; everything else
re-parsed every time), and MATCH always started from a label scan even
when a :class:`~repro.graph.indexes.PropertyIndex` could answer the
predicate directly.  Both costs dominate the trigger hot path, where a
handful of statements and conditions are executed thousands of times.

Two things live here:

* **The planner** — :func:`plan_query` lowers the clauses of a parsed
  query into the *physical operators* of :mod:`repro.cypher.physical`,
  choosing per path pattern the cheapest start operator:

  - ``IndexSeek`` — an equality probe into an exact-match or ordered
    property index, derived from inline property maps
    ``(n:Label {k: v})`` and from sargable ``WHERE n.k =
    <literal/parameter>`` conjuncts — or an IN-list probe from
    ``WHERE n.k IN [...]``;
  - ``IndexRangeSeek`` — a sorted-index range seek over an ordered
    (range) index, fed by sargable ``<``/``<=``/``>``/``>=`` conjuncts;
  - ``RelIndexSeek`` — an equality probe into a relationship-property
    index, matching the pattern outward from the seeked relationships;
  - ``VirtualLabelScan`` — a virtual-label id set (the trigger engine's
    transition variables such as ``NEWNODES``);
  - ``LabelScan`` — a label-index scan over the most selective label;
  - ``AllNodesScan`` — a full node scan.

  When the cheapest entry point is the *last* node of a path, the planner
  re-orders the pattern start point by reversing the element sequence
  (flipping relationship directions), which preserves the produced
  bindings exactly.

  On top of the per-pattern access paths, the planner performs
  **cost-based join ordering** for multi-pattern MATCH clauses
  (``MATCH (a:A), (b:B), …``): every pattern gets an estimated
  cardinality from :class:`~repro.graph.statistics.CardinalityEstimator`
  (label counts, index selectivity, relationship expansion factors), and
  the patterns are ordered greedily — cheapest/most-bound first, then
  always preferring patterns *connected* to an already-planned one over
  disconnected patterns, so cartesian products are deferred as far as
  possible.  When a disconnected pattern *must* be joined, the planner
  emits a :class:`~repro.cypher.physical.HashJoin` (keyed by cross-group
  WHERE equality conjuncts) or a materialised
  :class:`~repro.cypher.physical.CartesianProduct` instead of the
  nested-loop re-match.  The chosen :class:`JoinOrder` (with its steps
  and estimates) is part of the plan and shows up in ``EXPLAIN`` output.

  WITH/RETURN projections are lowered too: ORDER BY + LIMIT becomes a
  streaming :class:`~repro.cypher.physical.TopK`, ORDER BY alone a
  :class:`~repro.cypher.physical.Sort`, and aggregation an
  :class:`~repro.cypher.physical.Aggregate` breaker.

  Every operator choice — access path, join order, join strategy,
  projection mode — is advisory: the executor re-verifies labels and
  properties on each candidate (and the WHERE clause still runs), so a
  stale or wrong plan can only cost performance, never change results.

* **The plan cache** — :class:`PlanCache`, a module-level LRU shared by
  the executor, the trigger engine, the APOC/Memgraph emulation layers
  and the benchmark harness.  Parses are cached by query text; plans are
  cached by ``(text, graph identity, virtual-label names)`` and checked
  against the graph's *index epoch* (bumped whenever a property index is
  created or dropped), so index DDL and virtual-label changes invalidate
  stale plans.  Plans store virtual-label *names* only — the id sets are
  resolved by each executor at run time, so cached plans never leak
  virtual-label state between executors.

``EXPLAIN``-style output is available through :func:`explain` or
:meth:`QueryPlan.plan_description`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace as _dc_replace
from typing import Iterable, Iterator, Optional, Union

from ..graph.statistics import (
    DEFAULT_SELECTIVITY,
    EQUALITY_SELECTIVITY,
    RANGE_SELECTIVITY,
    CardinalityEstimator,
)
from ..graph.store import _PLAN_TOKENS
from .ast import (
    BinaryOp,
    CallClause,
    CountStar,
    CreateClause,
    ExistsPattern,
    FunctionCall,
    Expression,
    ListLiteral,
    Literal,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PathPattern,
    PropertyAccess,
    Query,
    RelationshipPattern,
    ReturnClause,
    UnwindClause,
    Variable,
    WithClause,
    expression_text,
    expression_variable_names,
    walk_expression,
)
from .errors import CypherSyntaxError
from .functions import is_aggregate_function
from .lexer import Token, tokenize
from .parser import parse_expression, parse_query
from .physical import (
    COMPOSITE,
    IN_LIST,
    INDEX,
    LABEL,
    ORDERED,
    RANGE,
    REL_INDEX,
    SCAN,
    VIRTUAL,
    AccessPath,
    Aggregate,
    CartesianProduct,
    Filter,
    HashJoin,
    PatternOperator,
    ProjectionOperator,
    Sort,
    TopK,
    format_rows,
    physical_chain,
)

_format_rows = format_rows


# ---------------------------------------------------------------------------
# plan data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PatternPlan:
    """Plan for one path pattern: physical operator chain and cardinality."""

    pattern: PathPattern
    elements: tuple[Union[NodePattern, RelationshipPattern], ...]
    start: AccessPath
    reversed: bool = False
    #: Estimated result rows of matching this pattern standalone.
    estimated_rows: float = 0.0
    #: The full physical chain: the start operator followed by one
    #: :class:`~repro.cypher.physical.Expand` per relationship hop.
    physical: tuple[PatternOperator, ...] = ()
    #: ``estimated_rows`` corrected by the selectivity of the WHERE
    #: conjuncts the access path did *not* consume (None when the WHERE
    #: adds nothing).  EXPLAIN surfaces both numbers; join ordering ranks
    #: patterns by this one.
    filtered_rows: Optional[float] = None

    def describe(self) -> str:
        start = self.elements[0]
        name = start.variable or "_"
        direction = " (reversed)" if self.reversed else ""
        chain = self.physical or (self.start,)
        rendered = " -> ".join(op.describe() for op in chain)
        where = ""
        if self.filtered_rows is not None:
            where = f" (~{_format_rows(self.filtered_rows)} rows after WHERE)"
        return f"start=({name}) {rendered}{direction}{where}"


@dataclass(frozen=True)
class JoinStep:
    """One step of a multi-pattern join: which pattern, joined how.

    ``operator`` is ``None`` for the first pattern and for patterns
    connected to the already-planned set (nested-loop expansion from bound
    variables); disconnected patterns carry the
    :class:`~repro.cypher.physical.HashJoin` or
    :class:`~repro.cypher.physical.CartesianProduct` the executor should
    join them with.
    """

    pattern_index: int
    operator: Optional[object] = None


@dataclass(frozen=True)
class JoinOrder:
    """Execution order for the patterns of one multi-pattern MATCH clause.

    ``order`` holds indexes into ``clause.patterns``; ``steps`` additionally
    records the join operator per position.  ``estimated_rows`` is the
    standalone estimate per pattern *in clause order* (so EXPLAIN can print
    both the chosen order and what each pattern was thought to cost).
    ``cartesian`` records that at least one step had to start a
    disconnected pattern (a cartesian product the clause itself forces).
    """

    clause: MatchClause
    order: tuple[int, ...]
    estimated_rows: tuple[float, ...]
    cartesian: bool = False
    steps: tuple[JoinStep, ...] = ()

    @property
    def reordered(self) -> bool:
        """True when the chosen order differs from clause order."""
        return self.order != tuple(range(len(self.order)))

    def describe(self) -> str:
        steps = ", ".join(
            f"pattern[{index}] est~{_format_rows(self.estimated_rows[index])}"
            for index in self.order
        )
        suffix = " cartesian" if self.cartesian else ""
        return f"JoinOrder({steps}){suffix}"


#: Projection execution modes, chosen statically per WITH/RETURN clause.
STREAM = "stream"
TOPK = "topk"
SORT = "sort"
AGGREGATE = "aggregate"
WILDCARD = "wildcard"


@dataclass(frozen=True)
class ProjectionPlan:
    """How one WITH/RETURN clause should execute.

    ``mode`` is one of :data:`STREAM` (row-at-a-time projection),
    :data:`TOPK` (heap-based ORDER BY + LIMIT), :data:`SORT` (full sort
    breaker), :data:`AGGREGATE` (grouping breaker) or :data:`WILDCARD`
    (``*`` needs the whole input to discover columns).  ``operator`` is the
    physical operator rendered by EXPLAIN for the non-trivial modes.
    """

    clause: Union[WithClause, ReturnClause]
    mode: str
    operator: Optional[ProjectionOperator] = None
    #: The clause's input arrives already ordered by its single ORDER BY
    #: key (an ``OrderedIndexScan`` start feeds it), so the executor may
    #: skip the sort/heap.  Advisory: the executor re-checks at run time
    #: that the ordered scan actually served the candidates.
    presorted: bool = False
    #: With ``presorted``, the executor may additionally stop pulling
    #: input once LIMIT rows are out — set only when every projection
    #: expression is evaluation-safe, so truncated rows cannot hide an
    #: error the full pipeline would have raised.
    early_exit: bool = False


class QueryPlan:
    """The physical plan of one parsed query against one graph."""

    __slots__ = (
        "query",
        "_by_pattern",
        "_by_clause",
        "_by_projection",
        "_lines",
        "has_join_orders",
        "has_projection_plans",
    )

    def __init__(
        self,
        query: Query,
        pattern_plans: Iterable[PatternPlan],
        join_orders: Iterable[JoinOrder] = (),
        projection_plans: Iterable[ProjectionPlan] = (),
        filters: Iterable[Filter] = (),
    ) -> None:
        self.query = query
        self._by_pattern: dict[int, PatternPlan] = {}
        self._by_clause: dict[int, JoinOrder] = {}
        self._by_projection: dict[int, ProjectionPlan] = {}
        self._lines: list[str] = []
        for plan in pattern_plans:
            self._by_pattern[id(plan.pattern)] = plan
            self._lines.append(plan.describe())
        for filter_op in filters:
            self._lines.append(filter_op.describe())
        for join_order in join_orders:
            self._by_clause[id(join_order.clause)] = join_order
            self._lines.append(join_order.describe())
            for step in join_order.steps:
                if step.operator is not None:
                    self._lines.append(step.operator.describe())
        for projection in projection_plans:
            self._by_projection[id(projection.clause)] = projection
            if projection.operator is not None:
                self._lines.append(projection.operator.describe())
        #: Cheap executor-side checks before the per-row clause lookups.
        self.has_join_orders = bool(self._by_clause)
        self.has_projection_plans = bool(self._by_projection)

    def for_pattern(self, pattern: PathPattern) -> Optional[PatternPlan]:
        """The plan for ``pattern``, or None when it was not planned."""
        plan = self._by_pattern.get(id(pattern))
        if plan is not None and plan.pattern is pattern:
            return plan
        return None

    def join_order_for(self, clause: MatchClause) -> Optional[JoinOrder]:
        """The join order chosen for ``clause`` (None for single patterns)."""
        join_order = self._by_clause.get(id(clause))
        if join_order is not None and join_order.clause is clause:
            return join_order
        return None

    def projection_for(
        self, clause: Union[WithClause, ReturnClause]
    ) -> Optional[ProjectionPlan]:
        """The projection plan for a WITH/RETURN clause (None if unplanned)."""
        projection = self._by_projection.get(id(clause))
        if projection is not None and projection.clause is clause:
            return projection
        return None

    def pattern_plans(self) -> list[PatternPlan]:
        """All pattern plans, in clause order."""
        return list(self._by_pattern.values())

    def join_orders(self) -> list[JoinOrder]:
        """All multi-pattern join orders, in clause order."""
        return list(self._by_clause.values())

    def projection_plans(self) -> list[ProjectionPlan]:
        """All WITH/RETURN projection plans, in clause order."""
        return list(self._by_projection.values())

    def uses_index(self) -> bool:
        """True when any pattern starts from a property-index seek."""
        return any(
            p.start.kind in (INDEX, IN_LIST, RANGE, REL_INDEX, COMPOSITE)
            for p in self._by_pattern.values()
        )

    def plan_description(self) -> str:
        """EXPLAIN-style description: one line per physical operator group."""
        if not self._lines:
            return "(no MATCH patterns to plan)"
        return "\n".join(self._lines)


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Indexes:
    """The graph's index metadata, captured once per planning run.

    ``equality`` pairs can answer ``IndexSeek``/IN probes (the exact-match
    *and* the ordered index both can); ``range`` pairs can answer
    ``IndexRangeSeek``; ``relationship`` pairs can answer
    ``RelIndexSeek``; ``composite`` (label, properties-tuple) entries can
    answer ``CompositeIndexSeek``.
    """

    equality: frozenset
    range: frozenset
    relationship: frozenset
    composite: tuple = ()


def _graph_indexes(graph) -> _Indexes:
    exact = frozenset(graph.property_indexes())
    ranged = frozenset(_call_metadata(graph, "range_indexes"))
    rel = frozenset(_call_metadata(graph, "relationship_property_indexes"))
    composite = tuple(
        (label, tuple(props))
        for label, props in _call_metadata(graph, "composite_indexes")
    )
    return _Indexes(
        equality=exact | ranged, range=ranged, relationship=rel, composite=composite
    )


def _call_metadata(graph, method: str) -> Iterable:
    """Index metadata from ``graph``, tolerating reduced graph fakes."""
    candidate = getattr(graph, method, None)
    if candidate is None:
        return ()
    return candidate()


def plan_query(
    query: Query,
    graph,
    virtual_labels: Iterable[str] = (),
) -> QueryPlan:
    """Lower every clause of ``query`` into physical operators.

    ``graph`` only needs the index-metadata surface of
    :class:`~repro.graph.store.PropertyGraph` (``property_indexes()``,
    ``count_nodes_with_label()``, ``node_count()``); richer surfaces
    (``range_indexes()``, ``relationship_property_indexes()``,
    ``property_index_selectivity()``, …) unlock more operators and sharpen
    the cardinality estimates when present.
    """
    virtual = frozenset(virtual_labels)
    indexes = _graph_indexes(graph)
    estimator = CardinalityEstimator(graph)
    plans: list[PatternPlan] = []
    join_orders: list[JoinOrder] = []
    projections: list[ProjectionPlan] = []
    filters: list[Filter] = []
    bound: set[str] = set()
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            sargable = _sargable_predicates(clause.where)
            # A pattern reading a variable that nothing before it binds
            # (``(e:B {v: a.v})`` with ``a`` from a sibling) raises when
            # reached — and whether it is *reached* depends on how many
            # rows its siblings produce.  Index seeks pre-filter exactly
            # those rows, so a clause containing such a pattern must run
            # entirely unseeked (label/virtual scans only) to raise — or
            # not raise — exactly like the unplanned executor.  The same
            # hazard already declines join reordering below.
            external = [
                _pattern_has_external_reads(pattern, bound)
                for pattern in clause.patterns
            ]
            if any(external):
                sargable = _SargablePredicates()
            clause_plans = [
                _plan_pattern(
                    pattern,
                    sargable,
                    graph,
                    virtual,
                    indexes,
                    estimator,
                    allow_index=not any(external),
                )
                for pattern in clause.patterns
            ]
            if clause.where is not None:
                clause_plans = [
                    _with_filtered_rows(plan, clause.where) for plan in clause_plans
                ]
            plans.extend(clause_plans)
            if clause.where is not None:
                filters.append(Filter(expression=clause.where))
            if len(clause_plans) > 1:
                join_order = _order_patterns(clause, clause_plans, bound)
                if join_order is not None:
                    join_orders.append(join_order)
        elif isinstance(clause, MergeClause):
            # MERGE's match phase benefits from the same start-point choice;
            # only inline property maps are sargable here (no WHERE).
            plans.append(
                _plan_pattern(
                    clause.pattern, _SargablePredicates(), graph, virtual, indexes, estimator
                )
            )
        elif isinstance(clause, (WithClause, ReturnClause)):
            projections.append(_plan_projection(clause))
        bound = _advance_bound_variables(clause, bound)
    plans, projections = _apply_ordered_scan(
        query, graph, virtual, indexes, plans, projections
    )
    return QueryPlan(query, plans, join_orders, projections, filters)


def explain(text: str, graph, virtual_labels: Iterable[str] = ()) -> str:
    """Parse, plan and describe ``text`` against ``graph`` (EXPLAIN)."""
    query, plan = PLAN_CACHE.get(text, graph, frozenset(virtual_labels))
    del query
    return plan.plan_description()


def _plan_pattern(
    pattern: PathPattern,
    sargable: "_SargablePredicates",
    graph,
    virtual: frozenset,
    indexes: _Indexes,
    estimator: CardinalityEstimator,
    allow_index: bool = True,
) -> PatternPlan:
    if not allow_index:
        # Scans-only planning for clauses with evaluation-order-dependent
        # patterns: even *inline literal* seeks are unsafe there, because a
        # live scan evaluates the raising property map per candidate while
        # a seek could leave it zero candidates to raise on.
        indexes = _Indexes(equality=frozenset(), range=frozenset(), relationship=frozenset())
        sargable = _SargablePredicates()
    first = pattern.elements[0]
    assert isinstance(first, NodePattern)
    first_path = _access_path(first, sargable, graph, virtual, indexes, estimator)
    # Reversing changes the order nodes/relationships are appended to a
    # bound path variable and to a variable-length relationship's hop
    # list, so only anonymous, fixed-length paths are eligible; and since
    # it also changes the order in which element property maps are
    # evaluated, every property value must be static (a literal or
    # parameter) — an expression like ``{w: a.prop}`` may reference a
    # variable the forward traversal binds first.
    can_reverse = (
        len(pattern.elements) > 2
        and pattern.variable is None
        and not any(
            isinstance(element, RelationshipPattern) and element.is_variable_length
            for element in pattern.elements
        )
        and _pattern_properties_static(pattern)
    )
    chosen_elements = pattern.elements
    chosen_path = first_path
    is_reversed = False
    if can_reverse:
        last = pattern.elements[-1]
        assert isinstance(last, NodePattern)
        last_path = _access_path(last, sargable, graph, virtual, indexes, estimator)
        if last_path.estimated_rows < first_path.estimated_rows:
            chosen_elements = _reverse_elements(pattern.elements)
            chosen_path = last_path
            is_reversed = True
    # A relationship-property seek competes with both node-anchored starts.
    # It matches in the *written* orientation (the seeked relationship binds
    # elements[0..2] directly), so choosing it discards any reversal.  A
    # shortestPath pattern is excluded: its search is anchored at the source
    # node, so a relationship-first start has nothing to resume from.
    rel_path = None
    if pattern.shortest is None:
        rel_path = _rel_seek_path(pattern, sargable, virtual, indexes, estimator)
    if rel_path is not None and rel_path.estimated_rows < chosen_path.estimated_rows:
        chosen_elements = pattern.elements
        chosen_path = rel_path
        is_reversed = False
    physical, estimated = physical_chain(
        chosen_path,
        chosen_elements,
        estimator,
        pattern=pattern,
        graph=graph,
        virtual_labels=virtual,
    )
    return PatternPlan(
        pattern=pattern,
        elements=chosen_elements,
        start=chosen_path,
        reversed=is_reversed,
        estimated_rows=estimated,
        physical=physical,
    )


def _access_path(
    node_pattern: NodePattern,
    sargable: "_SargablePredicates",
    graph,
    virtual: frozenset,
    indexes: _Indexes,
    estimator: CardinalityEstimator,
) -> AccessPath:
    """Best start operator for one node pattern (with its cost estimate)."""
    # Virtual labels mirror the executor's existing precedence: they are
    # typically tiny transition-variable sets, so they come first.
    for label in node_pattern.labels:
        if label in virtual:
            return AccessPath(kind=VIRTUAL, label=label, estimated_rows=0.0)

    real_labels = tuple(l for l in node_pattern.labels if l not in virtual)
    equalities = _equality_candidates(node_pattern, sargable)
    seeks: list[AccessPath] = []
    # A declared composite index whose every property is pinned by an
    # equality candidate competes with the single-property seek on
    # estimated rows (its combined selectivity is at most as wide).
    if indexes.composite and equalities:
        by_prop: dict[str, Expression] = {}
        for prop, value in equalities:
            by_prop.setdefault(prop, value)
        for label, props in indexes.composite:
            if label not in real_labels or not all(p in by_prop for p in props):
                continue
            rows = estimator.composite_rows(label, props)
            seeks.append(
                AccessPath(
                    kind=COMPOSITE,
                    label=label,
                    properties=props,
                    values=tuple(by_prop[p] for p in props),
                    estimated_rows=rows if rows is not None else 1.0,
                )
            )
    single = next(
        (
            AccessPath(
                kind=INDEX,
                label=label,
                property=prop,
                value=value,
                estimated_rows=estimator.index_selectivity(label, prop),
            )
            for label in real_labels
            for prop, value in equalities
            if (label, prop) in indexes.equality
        ),
        None,
    )
    if single is not None:
        seeks.append(single)
    if seeks:
        # min() is stable, so a composite that ties its single-property
        # rival wins by sitting first (it can only be narrower).
        return min(seeks, key=lambda path: path.estimated_rows)

    # No equality seek: weigh IN-list and range seeks against the scans.
    options: list[AccessPath] = []
    variable = node_pattern.variable
    if variable is not None:
        for label in real_labels:
            for prop, list_expr, count in sargable.in_lists.get(variable, ()):
                if (label, prop) in indexes.equality:
                    options.append(
                        AccessPath(
                            kind=IN_LIST,
                            label=label,
                            property=prop,
                            value=list_expr,
                            estimated_rows=estimator.in_list_rows(label, prop, count),
                        )
                    )
        ranges = sargable.ranges.get(variable, {})
        for label in real_labels:
            for prop, bounds in ranges.items():
                if (label, prop) in indexes.range:
                    lower, include_lower = bounds.lower or (None, False)
                    upper, include_upper = bounds.upper or (None, False)
                    options.append(
                        AccessPath(
                            kind=RANGE,
                            label=label,
                            property=prop,
                            lower=lower,
                            upper=upper,
                            include_lower=include_lower,
                            include_upper=include_upper,
                            # Literal bounds flow into the estimator so the
                            # index-bounds clamp and the histogram can see
                            # them; parameter bounds stay opaque (None).
                            estimated_rows=estimator.range_scan_rows(
                                label,
                                prop,
                                lower=_literal_value(lower),
                                upper=_literal_value(upper),
                                include_lower=include_lower,
                                include_upper=include_upper,
                            ),
                        )
                    )

    if real_labels:
        cost = min(graph.count_nodes_with_label(l) for l in real_labels)
        options.append(
            AccessPath(kind=LABEL, labels=real_labels, estimated_rows=float(max(cost, 1)))
        )
    else:
        options.append(
            AccessPath(kind=SCAN, estimated_rows=float(max(graph.node_count(), 2)))
        )
    return min(options, key=lambda path: path.estimated_rows)


def _rel_seek_path(
    pattern: PathPattern,
    sargable: "_SargablePredicates",
    virtual: frozenset,
    indexes: _Indexes,
    estimator: CardinalityEstimator,
) -> Optional[AccessPath]:
    """A ``RelIndexSeek`` start for the pattern's first relationship, if any.

    Eligible when the first hop is a plain single-type relationship whose
    type carries a declared (type, property) index and whose inline
    property map — or a sargable WHERE conjunct on its variable — pins
    that property to a literal/parameter value.
    """
    if len(pattern.elements) < 3 or not indexes.relationship:
        return None
    rel = pattern.elements[1]
    assert isinstance(rel, RelationshipPattern)
    if rel.is_variable_length or len(rel.types) != 1 or rel.types[0] in virtual:
        return None
    rel_type = rel.types[0]
    candidates: list[tuple[str, Expression]] = [
        (prop, value)
        for prop, value in rel.properties
        if isinstance(value, (Literal, Parameter)) and _literal_not_null(value)
    ]
    if rel.variable is not None:
        candidates.extend(sargable.equalities.get(rel.variable, ()))
    for prop, value in candidates:
        if (rel_type, prop) in indexes.relationship:
            return AccessPath(
                kind=REL_INDEX,
                rel_type=rel_type,
                property=prop,
                value=value,
                direction=rel.direction,
                estimated_rows=estimator.relationship_index_selectivity(rel_type, prop),
            )
    return None


def _literal_not_null(expr: Expression) -> bool:
    """False only for a literal ``null`` (which matches *missing* inline)."""
    return not (isinstance(expr, Literal) and expr.value is None)


def _literal_value(expr: Optional[Expression]):
    """The plan-time-known value of a bound expression (None if opaque)."""
    return expr.value if isinstance(expr, Literal) else None


# ---------------------------------------------------------------------------
# multi-pattern join ordering
# ---------------------------------------------------------------------------


def _order_patterns(
    clause: MatchClause,
    clause_plans: list[PatternPlan],
    bound_before: set[str],
) -> Optional[JoinOrder]:
    """Greedy cost-based ordering for the patterns of one MATCH clause.

    Start from the cheapest pattern (a pattern whose start variable is
    already bound by an earlier clause is near-free); afterwards always
    prefer patterns sharing a variable with what is planned so far —
    their nested-loop cost starts from bound values — and only fall back
    to a disconnected (cartesian) pattern when nothing connects.  Ties
    break towards clause order, so equal-cost plans keep the author's
    layout.  The order is advisory: patterns of one MATCH clause are a
    commutative conjunction, so any order produces the same row *set*.

    Exception: a pattern whose inline property map *reads* a variable
    that neither an earlier clause nor a *preceding element of the same
    pattern* binds (``(b:B {x: a.y})``, or ``(b:B {y: a.z})-[:R]->(a)``
    where ``a`` comes from a sibling pattern) is evaluation-order
    dependent — running it before the sibling binding the variable would
    raise instead of producing the same rows, and whether it is reached
    at all can depend on its clause position.  Such clauses are declined
    (returns None) and keep their written order.
    """
    for plan in clause_plans:
        if _pattern_has_external_reads(plan.pattern, bound_before):
            return None
    variables = [_pattern_variable_names(plan.pattern) for plan in clause_plans]
    # Rank (and report) by the WHERE-corrected estimate where one exists:
    # a pattern whose rows the WHERE decimates should be joined early.
    estimates = tuple(
        plan.filtered_rows if plan.filtered_rows is not None else plan.estimated_rows
        for plan in clause_plans
    )
    bound = set(bound_before)
    remaining = list(range(len(clause_plans)))
    order: list[int] = []
    steps: list[JoinStep] = []
    cartesian = False
    prior_rows = 1.0

    def effective_cost(index: int) -> float:
        start_variable = clause_plans[index].elements[0].variable
        if start_variable is not None and start_variable in bound:
            return 1.0
        return estimates[index]

    while remaining:
        connected = [i for i in remaining if variables[i] & bound]
        pool = connected or remaining
        disconnected_step = bool(order) and not connected
        if disconnected_step:
            cartesian = True
        best = min(pool, key=lambda i: (effective_cost(i), i))
        operator = None
        if disconnected_step:
            # The new pattern shares no variable with anything planned so
            # far: instead of re-matching it per partial row (a nested-loop
            # cartesian), materialise it once — keyed by cross-group WHERE
            # equality conjuncts when any exist (a real hash join), in a
            # single bucket otherwise.
            keys = _hash_join_keys(clause.where, variables[best], bound)
            if keys:
                operator = HashJoin(
                    build_pattern=best,
                    keys=keys,
                    estimated_rows=estimates[best],
                )
            else:
                operator = CartesianProduct(
                    build_pattern=best, estimated_rows=estimates[best]
                )
        elif order:
            operator = _connected_hash_join(
                clause_plans[best], best, variables[best] & bound,
                prior_rows, estimates[best],
            )
        step_cost = max(effective_cost(best), 1.0)  # before bound absorbs it
        order.append(best)
        steps.append(JoinStep(pattern_index=best, operator=operator))
        bound |= variables[best]
        remaining.remove(best)
        prior_rows = min(prior_rows * step_cost, 1e12)
    return JoinOrder(
        clause=clause,
        order=tuple(order),
        estimated_rows=estimates,
        cartesian=cartesian,
        steps=tuple(steps),
    )


def _hash_join_keys(
    where: Optional[Expression],
    build_variables: set[str],
    bound_variables: set[str],
) -> tuple[tuple[Expression, Expression], ...]:
    """(probe, build) key pairs joining a disconnected pattern to the rest.

    A usable key is a top-level WHERE equality conjunct with one side
    reading only the new pattern's variables (the build key) and the other
    reading only variables bound by earlier steps or clauses (the probe
    key).  Keys are a pre-filter — the executor still evaluates the full
    WHERE per joined row and falls back to scanning the whole build table
    whenever a key fails to evaluate — so a wrong classification here can
    only cost performance.
    """
    if where is None:
        return ()
    keys: list[tuple[Expression, Expression]] = []
    for conjunct in _conjuncts(where):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        left_names = expression_variable_names(conjunct.left)
        right_names = expression_variable_names(conjunct.right)
        if not left_names or not right_names:
            continue
        if left_names <= build_variables and not (right_names & build_variables) and (
            right_names <= bound_variables
        ):
            keys.append((conjunct.right, conjunct.left))
        elif right_names <= build_variables and not (left_names & build_variables) and (
            left_names <= bound_variables
        ):
            keys.append((conjunct.left, conjunct.right))
    return tuple(keys)


def _connected_hash_join(
    plan: PatternPlan,
    index: int,
    shared: set[str],
    prior_rows: float,
    estimated_rows: float,
) -> Optional[HashJoin]:
    """A hash join for a *connected* pattern whose expansion looks poor.

    A connected pattern normally runs as a nested loop resuming from its
    bound variables; when many prior rows would each re-match a pattern
    whose start anchor is *not* among the shared variables, matching the
    pattern once (unbound) and probing the materialised rows by the shared
    node variables is cheaper.  Eligibility mirrors the executor's runtime
    guard: only node *element* variables may join (path and relationship
    variables have positional binding semantics a key cannot express), the
    property maps must be static so the unbound build reads no row state,
    and shortestPath is excluded (its search is anchored per source row).
    The executor falls back to the nested loop for any probe row that does
    not bind every join variable to a node — so a wrong choice here can
    only cost performance, never rows.
    """
    if plan.pattern.shortest is not None:
        return None
    node_variables = {
        element.variable
        for element in plan.elements
        if isinstance(element, NodePattern) and element.variable
    }
    if not shared or not shared <= node_variables:
        return None
    if plan.elements[0].variable in shared:
        return None  # the nested loop starts bound — already near-free
    if not _pattern_properties_static(plan.pattern):
        return None
    build_cost = plan.estimated_rows
    if prior_rows * build_cost <= 2.0 * (build_cost + prior_rows):
        return None  # nested loop is no worse than build + probe
    key_variables = tuple(sorted(shared))
    keys = tuple((Variable(name=v), Variable(name=v)) for v in key_variables)
    return HashJoin(
        build_pattern=index,
        keys=keys,
        join_variables=key_variables,
        estimated_rows=estimated_rows,
    )


def _with_filtered_rows(plan: PatternPlan, where: Expression) -> PatternPlan:
    """Correct a pattern's estimate by the WHERE conjuncts it re-filters.

    The access path already consumed the sargable conjunct that seeded it;
    every *other* conjunct reading only this pattern's variables still runs
    per candidate row, so the rows surviving the clause filter are fewer
    than the match estimate.  EXPLAIN surfaces both numbers and join
    ordering ranks by the corrected one.  Purely advisory — estimates
    steer plans, never results.
    """
    names = _pattern_variable_names(plan.pattern)
    selectivity = 1.0
    for conjunct in _conjuncts(where):
        used = expression_variable_names(conjunct)
        if not used or not used <= names:
            continue  # cross-pattern or constant conjunct: not this pattern's
        if _start_consumes(conjunct, plan):
            continue
        selectivity *= _conjunct_selectivity(conjunct)
    if selectivity >= 1.0:
        return plan
    return _dc_replace(plan, filtered_rows=plan.estimated_rows * selectivity)


def _conjunct_selectivity(conjunct: Expression) -> float:
    """Heuristic fraction of rows one non-consumed WHERE conjunct keeps."""
    if isinstance(conjunct, BinaryOp):
        if conjunct.op == "=":
            return EQUALITY_SELECTIVITY
        if conjunct.op in _RANGE_OPS:
            return RANGE_SELECTIVITY
        if conjunct.op == "IN" and isinstance(conjunct.right, ListLiteral):
            return min(len(conjunct.right.items) * EQUALITY_SELECTIVITY, 1.0)
    return DEFAULT_SELECTIVITY


def _start_consumes(conjunct: Expression, plan: PatternPlan) -> bool:
    """Did the plan's access path already narrow candidates by this conjunct?

    Counting a consumed conjunct again would double-discount: an
    ``IndexSeek`` on ``n.k = 1`` already *is* the equality's selectivity.
    Matching is shape-based (same variable, same property, compatible
    operator); over-matching merely under-corrects the estimate.
    """
    start = plan.start
    if start.kind in (INDEX, COMPOSITE, RANGE, IN_LIST):
        anchor = plan.elements[0].variable
        if anchor is None or not isinstance(conjunct, BinaryOp):
            return False
        props = start.properties if start.kind == COMPOSITE else (start.property,)
        if start.kind in (INDEX, COMPOSITE):
            ops: tuple[str, ...] = ("=",)
        elif start.kind == RANGE:
            ops = tuple(_RANGE_OPS)
        else:
            ops = ("IN",)
        if conjunct.op not in ops:
            return False
        sides = (
            (conjunct.left,)
            if conjunct.op == "IN"
            else (conjunct.left, conjunct.right)
        )
        return any(
            _is_sargable_access(side)
            and side.subject.name == anchor
            and side.key in props
            for side in sides
        )
    if start.kind == REL_INDEX and len(plan.elements) > 1:
        rel_anchor = plan.elements[1].variable
        if rel_anchor is None:
            return False
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return False
        return any(
            _is_sargable_access(side)
            and side.subject.name == rel_anchor
            and side.key == start.property
            for side in (conjunct.left, conjunct.right)
        )
    return False


def _pattern_variable_names(pattern: PathPattern) -> set[str]:
    """Variables a pattern binds or references (connectivity for ordering)."""
    names = {element.variable for element in pattern.elements if element.variable}
    if pattern.variable is not None:
        names.add(pattern.variable)
    return names


def _pattern_has_external_reads(pattern: PathPattern, bound_before: set[str]) -> bool:
    """Does any element property map read a variable the pattern has not
    bound by that point?

    Matching proceeds element by element (reversal is blocked for
    patterns with non-static property maps), so a property expression may
    only rely on variables from earlier clauses (``bound_before``) or
    from *preceding* elements of the same pattern.  Anything else — a
    sibling pattern's variable, a forward reference, an element's own
    variable — makes the pattern's behaviour depend on evaluation order.
    """
    available = set(bound_before)
    for element in pattern.elements:
        for _, expr in element.properties:
            if expression_variable_names(expr) - available:
                return True
        if element.variable is not None:
            available.add(element.variable)
    return False


def _advance_bound_variables(clause, bound: set[str]) -> set[str]:
    """Variables visible after ``clause``, given ``bound`` before it.

    Only used to inform join ordering (a bound start variable makes a
    pattern near-free), so over- or under-approximating here affects plan
    quality, never results.
    """
    if isinstance(clause, (MatchClause, CreateClause)):
        out = set(bound)
        for pattern in clause.patterns:
            out |= _pattern_variable_names(pattern)
        return out
    if isinstance(clause, MergeClause):
        return bound | _pattern_variable_names(clause.pattern)
    if isinstance(clause, UnwindClause):
        return bound | {clause.variable}
    if isinstance(clause, CallClause):
        return bound | {alias for _, alias in clause.yield_items}
    if isinstance(clause, (WithClause, ReturnClause)):
        names = {item.output_name() for item in clause.items}
        if clause.include_wildcard:
            return bound | names
        # A projecting WITH narrows scope to exactly its output names.
        return names
    return bound


def _pattern_properties_static(pattern: PathPattern) -> bool:
    """True when no element property value can depend on pattern variables."""
    return all(
        isinstance(expr, (Literal, Parameter))
        for element in pattern.elements
        for _, expr in element.properties
    )


def _equality_candidates(
    node_pattern: NodePattern,
    sargable: "_SargablePredicates",
) -> list[tuple[str, Expression]]:
    """(property, value-expression) pairs usable for an index lookup.

    Only literal and parameter values qualify: they evaluate independently
    of the other pattern variables, so narrowing the candidate set with
    them can never drop a row the full match would have produced.
    """
    pairs: list[tuple[str, Expression]] = []
    for key, expr in node_pattern.properties:
        if isinstance(expr, (Literal, Parameter)):
            pairs.append((key, expr))
    if node_pattern.variable is not None:
        pairs.extend(sargable.equalities.get(node_pattern.variable, ()))
    return pairs


@dataclass(frozen=True)
class _RangeBounds:
    """The sargable bounds chosen for one (variable, property) pair.

    Each side holds ``(value expression, inclusive)`` or ``None``.  When a
    WHERE repeats a side (``n.v > 1 AND n.v > 5``) only the first conjunct
    feeds the seek; the WHERE still applies the rest, so the seek merely
    over-approximates.
    """

    lower: Optional[tuple[Expression, bool]] = None
    upper: Optional[tuple[Expression, bool]] = None


#: Comparison operators usable for range seeks, normalised so the property
#: access sits on the left: ``5 > n.v`` reads as ``n.v < 5``.
_RANGE_OPS = {"<": "<", "<=": "<=", ">": ">", ">=": ">="}
_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class _SargablePredicates:
    """Per-variable sargable conjuncts extracted from one WHERE tree."""

    #: var -> [(property, value expression)] from ``var.p = <lit/param>``.
    equalities: dict = None
    #: var -> {property: _RangeBounds} from ``var.p </<=/>/>= <lit/param>``.
    ranges: dict = None
    #: var -> [(property, list expression, element count or None)] from
    #: ``var.p IN <list>``; the count is None for parameters.
    in_lists: dict = None

    def __post_init__(self) -> None:
        self.equalities = {} if self.equalities is None else self.equalities
        self.ranges = {} if self.ranges is None else self.ranges
        self.in_lists = {} if self.in_lists is None else self.in_lists


def _sargable_predicates(where: Optional[Expression]) -> _SargablePredicates:
    """Extract equality, range and IN-list conjuncts usable by index seeks.

    Only top-level AND conjuncts qualify (an OR branch cannot narrow the
    candidate set safely), and only literal/parameter comparands (anything
    else may read other pattern variables).
    """
    result = _SargablePredicates()
    if where is None:
        return result
    for conjunct in _conjuncts(where):
        if not isinstance(conjunct, BinaryOp):
            continue
        if conjunct.op == "=":
            for access, value in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if _is_sargable_access(access) and isinstance(value, (Literal, Parameter)):
                    result.equalities.setdefault(access.subject.name, []).append(
                        (access.key, value)
                    )
                    break
        elif conjunct.op in _RANGE_OPS:
            for access, value, op in (
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, _FLIPPED_OPS[conjunct.op]),
            ):
                if _is_sargable_access(access) and isinstance(value, (Literal, Parameter)):
                    bounds = result.ranges.setdefault(access.subject.name, {})
                    current = bounds.get(access.key, _RangeBounds())
                    if op in (">", ">=") and current.lower is None:
                        bounds[access.key] = _RangeBounds(
                            lower=(value, op == ">="), upper=current.upper
                        )
                    elif op in ("<", "<=") and current.upper is None:
                        bounds[access.key] = _RangeBounds(
                            lower=current.lower, upper=(value, op == "<=")
                        )
                    break
        elif conjunct.op == "IN":
            access, value = conjunct.left, conjunct.right
            if not _is_sargable_access(access):
                continue
            if isinstance(value, ListLiteral) and all(
                isinstance(item, Literal) for item in value.items
            ):
                count: Optional[int] = len(value.items)
            elif isinstance(value, Literal) and isinstance(value.value, list):
                count = len(value.value)
            elif isinstance(value, Parameter):
                count = None
            else:
                continue
            result.in_lists.setdefault(access.subject.name, []).append(
                (access.key, value, count)
            )
    return result


def _is_sargable_access(expr: Expression) -> bool:
    """``var.prop`` — the only left-hand shape index seeks understand."""
    return isinstance(expr, PropertyAccess) and isinstance(expr.subject, Variable)


# ---------------------------------------------------------------------------
# projection lowering
# ---------------------------------------------------------------------------


def _plan_projection(clause: Union[WithClause, ReturnClause]) -> ProjectionPlan:
    """Choose the execution mode (and operator) for one WITH/RETURN clause.

    ``TopK`` requires ORDER BY with a LIMIT and no DISTINCT (the heap
    cannot deduplicate before ordering without holding every distinct row
    anyway); aggregation and ``*`` wildcards remain full breakers.
    """
    aggregate_texts = [
        expression_text(sub)
        for item in clause.items
        for sub in walk_expression(item.expression)
        if isinstance(sub, CountStar)
        or (isinstance(sub, FunctionCall) and is_aggregate_function(sub.name))
    ]
    if aggregate_texts:
        return ProjectionPlan(
            clause, AGGREGATE, Aggregate(aggregate_text=", ".join(aggregate_texts))
        )
    if clause.include_wildcard:
        return ProjectionPlan(clause, WILDCARD)
    if clause.order_by:
        order_text = ", ".join(
            expression_text(item.expression) + (" DESC" if item.descending else "")
            for item in clause.order_by
        )
        if clause.limit is not None and not clause.distinct:
            limit_estimate = (
                float(clause.limit.value)
                if isinstance(clause.limit, Literal)
                and isinstance(clause.limit.value, (int, float))
                and not isinstance(clause.limit.value, bool)
                else 1.0
            )
            return ProjectionPlan(
                clause,
                TOPK,
                TopK(
                    order_text=order_text,
                    limit=clause.limit,
                    skip=clause.skip,
                    estimated_rows=max(limit_estimate, 0.0),
                ),
            )
        return ProjectionPlan(clause, SORT, Sort(order_text=order_text))
    return ProjectionPlan(clause, STREAM)


# ---------------------------------------------------------------------------
# index-backed ORDER BY
# ---------------------------------------------------------------------------


def _apply_ordered_scan(
    query: Query,
    graph,
    virtual: frozenset,
    indexes: _Indexes,
    plans: list[PatternPlan],
    projections: list[ProjectionPlan],
) -> tuple[list[PatternPlan], list[ProjectionPlan]]:
    """Rewrite ``MATCH (n:L) RETURN … ORDER BY n.p`` onto an ordered scan.

    Eligibility is deliberately narrow: a two-clause query (one plain
    single-pattern MATCH without WHERE, one RETURN), a single-node pattern
    with exactly one real label and static properties, a single ORDER BY
    key resolving to an ordered-indexed ``(label, property)`` pair, and a
    start that would otherwise be a plain label scan — an index seek is
    never displaced, because it filters while the ordered scan does not.
    The rewrite swaps the start operator for ``OrderedIndexScan`` and
    flags the projection ``presorted`` (plus ``early_exit`` for TopK over
    evaluation-safe projections).  Advisory: the executor re-verifies at
    run time that the ordered scan actually served the candidates before
    skipping its sort.
    """
    if len(query.clauses) != 2:
        return plans, projections
    match, ret = query.clauses
    if not isinstance(match, MatchClause) or not isinstance(ret, ReturnClause):
        return plans, projections
    if match.optional or match.where is not None or len(match.patterns) != 1:
        return plans, projections
    pattern = match.patterns[0]
    if pattern.shortest is not None or pattern.variable is not None:
        return plans, projections
    if len(pattern.elements) != 1:
        return plans, projections
    node = pattern.elements[0]
    assert isinstance(node, NodePattern)
    if node.variable is None or len(node.labels) != 1:
        return plans, projections
    label = node.labels[0]
    if label in virtual or not _pattern_properties_static(pattern):
        return plans, projections
    if getattr(graph, "ordered_label_scan", None) is None:
        return plans, projections
    if len(plans) != 1 or plans[0].pattern is not pattern:
        return plans, projections
    if plans[0].start.kind != LABEL:
        return plans, projections
    if len(projections) != 1:
        return plans, projections
    projection = projections[0]
    if projection.mode not in (SORT, TOPK):
        return plans, projections
    if ret.distinct or ret.include_wildcard or len(ret.order_by) != 1:
        return plans, projections
    sort_item = ret.order_by[0]
    prop = _ordered_key(sort_item.expression, ret, node.variable)
    if prop is None or (label, prop) not in indexes.range:
        return plans, projections
    path = AccessPath(
        kind=ORDERED,
        label=label,
        property=prop,
        descending=sort_item.descending,
        estimated_rows=plans[0].estimated_rows,
    )
    new_plan = _dc_replace(plans[0], start=path, physical=(path,))
    early = projection.mode == TOPK and all(
        _safe_projection(item.expression) for item in ret.items
    )
    new_projection = _dc_replace(projection, presorted=True, early_exit=early)
    return [new_plan], [new_projection]


def _ordered_key(
    expr: Expression, clause: ReturnClause, node_variable: str
) -> Optional[str]:
    """The scanned node's property an ORDER BY key reads (None if opaque).

    Two shapes qualify: ``ORDER BY n.p`` directly — provided the
    projection does not rebind ``n``, since RETURN's ORDER BY sees the
    projected scope — and ``ORDER BY alias`` where the clause projects
    ``n.p AS alias`` (projection expressions always read the source
    scope, so rebinding cannot interfere there).
    """
    if isinstance(expr, PropertyAccess) and isinstance(expr.subject, Variable):
        if expr.subject.name != node_variable or _rebinds(clause, node_variable):
            return None
        return expr.key
    if isinstance(expr, Variable):
        for item in clause.items:
            if item.output_name() != expr.name:
                continue
            target = item.expression
            if (
                isinstance(target, PropertyAccess)
                and isinstance(target.subject, Variable)
                and target.subject.name == node_variable
            ):
                return target.key
            return None
    return None


def _rebinds(clause: ReturnClause, name: str) -> bool:
    """Does the projection bind ``name`` to anything but itself?"""
    return any(
        item.output_name() == name
        and not (
            isinstance(item.expression, Variable) and item.expression.name == name
        )
        for item in clause.items
    )


def _safe_projection(expr: Expression) -> bool:
    """Can this projection expression never raise at evaluation time?

    Early exit stops pulling input once LIMIT rows are out; only
    expressions that cannot raise (variables, literals, parameters and
    property reads on a variable) qualify, or the truncation could hide
    an error the full pipeline would have surfaced.
    """
    if isinstance(expr, (Literal, Parameter, Variable)):
        return True
    if isinstance(expr, PropertyAccess) and isinstance(expr.subject, Variable):
        return True
    return False


def _conjuncts(expr: Expression) -> Iterator[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _reverse_elements(
    elements: tuple[Union[NodePattern, RelationshipPattern], ...]
) -> tuple[Union[NodePattern, RelationshipPattern], ...]:
    """Reverse a path, flipping relationship directions."""
    flipped: list[Union[NodePattern, RelationshipPattern]] = []
    for element in reversed(elements):
        if isinstance(element, RelationshipPattern):
            direction = {"out": "in", "in": "out", "both": "both"}[element.direction]
            element = RelationshipPattern(
                variable=element.variable,
                types=element.types,
                properties=element.properties,
                direction=direction,
                min_hops=element.min_hops,
                max_hops=element.max_hops,
            )
        flipped.append(element)
    return tuple(flipped)


# ---------------------------------------------------------------------------
# the global parse + plan cache
# ---------------------------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Counters for observing cache behaviour (tests, benchmarks, EXPLAIN)."""

    parse_hits: int = 0
    parse_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_invalidations: int = 0
    condition_hits: int = 0
    condition_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (handy for benchmark notes)."""
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_invalidations": self.plan_invalidations,
            "condition_hits": self.condition_hits,
            "condition_misses": self.condition_misses,
        }


@dataclass
class _PlanEntry:
    """One cached (query, plan) pair, validated against the graph epoch.

    Used by both the text-keyed and the id()-keyed plan stores; in the
    latter, holding ``query`` also pins the object so its id cannot be
    reused while the entry is alive, and the identity check on lookup
    rejects entries that somehow outlive their query object.
    """

    epoch: int
    query: Query
    plan: QueryPlan


@dataclass(frozen=True)
class CompiledCondition:
    """A cached PG-Trigger WHEN body plus cheap-to-test shape flags.

    ``is_query`` distinguishes condition queries (MATCH/WITH pipelines)
    from plain predicates; ``has_exists`` tells the trigger engine whether
    evaluating the predicate needs a full executor (for EXISTS patterns)
    or can run through the bare expression evaluator.
    """

    parsed: Union[Expression, Query]
    is_query: bool
    has_exists: bool


class PlanCache:
    """LRU parse+plan cache shared process-wide.

    Three layers, all keyed on query text:

    * parses (graph-independent);
    * plans, additionally keyed on the graph's identity token and the
      executor's virtual-label *names*, validated against the graph's
      index epoch on every hit;
    * trigger conditions (expression-or-query, with the trigger engine's
      wildcard-RETURN normalisation applied to query-shaped conditions).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._parses: OrderedDict[str, Query] = OrderedDict()
        self._plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._parsed_plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._conditions: OrderedDict[str, CompiledCondition] = OrderedDict()
        self._tokens: OrderedDict[str, list[Token]] = OrderedDict()
        self.stats = PlanCacheStats()

    # -- parsing --------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse ``text`` (cached)."""
        with self._lock:
            cached = self._parses.get(text)
            if cached is not None:
                self._parses.move_to_end(text)
                self.stats.parse_hits += 1
                return cached
        query = parse_query(text)
        with self._lock:
            self.stats.parse_misses += 1
            self._insert(self._parses, text, query)
        return query

    def tokenize(self, text: str) -> list[Token]:
        """Tokenise ``text`` (cached; callers must not mutate the list)."""
        with self._lock:
            cached = self._tokens.get(text)
            if cached is not None:
                self._tokens.move_to_end(text)
                return cached
        tokens = tokenize(text)
        with self._lock:
            self._insert(self._tokens, text, tokens)
        return tokens

    # -- planning -------------------------------------------------------

    def get(
        self,
        text: str,
        graph,
        virtual_label_names: frozenset = frozenset(),
    ) -> tuple[Query, QueryPlan]:
        """Parse and plan ``text`` for ``graph`` (both cached).

        A cached plan is reused only while the graph's index epoch is
        unchanged; creating or dropping a property index bumps the epoch
        and evicts the stale entry on the next lookup.  Virtual-label
        names participate in the key, so registering a new virtual label
        re-plans rather than reusing a plan that ignored it.
        """
        key = (text, _graph_token(graph), virtual_label_names)
        epoch = _graph_epoch(graph)
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                if entry.epoch == epoch:
                    self._plans.move_to_end(key)
                    self.stats.plan_hits += 1
                    return entry.query, entry.plan
                del self._plans[key]
                self.stats.plan_invalidations += 1
        query = self.parse(text)
        plan = plan_query(query, graph, virtual_label_names)
        with self._lock:
            self.stats.plan_misses += 1
            self._insert(self._plans, key, _PlanEntry(epoch=epoch, query=query, plan=plan))
        return query, plan

    def get_for_parsed(
        self,
        query: Query,
        graph,
        virtual_label_names: frozenset = frozenset(),
    ) -> QueryPlan:
        """Plan an already-parsed query (cached by object identity).

        Used for query objects that live outside the text cache, e.g. the
        trigger engine's compiled condition queries, which are executed once
        per activation and would otherwise be re-planned on every firing.
        The entry keeps a reference to ``query``, so the id()-based key can
        never alias a different, later object.
        """
        key = (id(query), _graph_token(graph), virtual_label_names)
        epoch = _graph_epoch(graph)
        with self._lock:
            entry = self._parsed_plans.get(key)
            if entry is not None and entry.query is query:
                if entry.epoch == epoch:
                    self._parsed_plans.move_to_end(key)
                    self.stats.plan_hits += 1
                    return entry.plan
                del self._parsed_plans[key]
                self.stats.plan_invalidations += 1
        plan = plan_query(query, graph, virtual_label_names)
        with self._lock:
            self.stats.plan_misses += 1
            self._insert(
                self._parsed_plans, key, _PlanEntry(epoch=epoch, query=query, plan=plan)
            )
        return plan

    # -- trigger conditions ---------------------------------------------

    def condition_compiled(self, text: str) -> CompiledCondition:
        """Parse a PG-Trigger WHEN body (cached), with shape flags.

        Plain predicates parse as expressions; MATCH/UNWIND/WITH pipelines
        parse as queries and get a wildcard RETURN appended when absent, so
        the surviving rows become the condition rows.
        """
        with self._lock:
            cached = self._conditions.get(text)
            if cached is not None:
                self._conditions.move_to_end(text)
                self.stats.condition_hits += 1
                return cached
        try:
            expression = parse_expression(text)
            compiled = CompiledCondition(
                parsed=expression,
                is_query=False,
                has_exists=any(
                    isinstance(sub, ExistsPattern) for sub in walk_expression(expression)
                ),
            )
        except CypherSyntaxError:
            query = parse_query(text)
            if not any(isinstance(clause, ReturnClause) for clause in query.clauses):
                query = Query(
                    clauses=query.clauses + (ReturnClause(items=(), include_wildcard=True),)
                )
            compiled = CompiledCondition(parsed=query, is_query=True, has_exists=False)
        with self._lock:
            self.stats.condition_misses += 1
            self._insert(self._conditions, text, compiled)
        return compiled

    # -- maintenance ----------------------------------------------------

    def clear(self) -> None:
        """Drop every cached parse, plan and condition; reset statistics."""
        with self._lock:
            self._parses.clear()
            self._plans.clear()
            self._parsed_plans.clear()
            self._conditions.clear()
            self._tokens.clear()
            self.stats = PlanCacheStats()

    def plan_entry_count(self) -> int:
        """Number of cached plans (for tests)."""
        with self._lock:
            return len(self._plans)

    def _insert(self, store: OrderedDict, key, value) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)


#: Side table of monotonic tokens for graph-likes that cannot carry a
#: ``plan_token`` attribute (e.g. ``__slots__`` without ``__dict__``).
#: Weakly keyed, so dead graphs do not pin cache identities alive.
_foreign_tokens: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_foreign_token_lock = threading.Lock()


def _graph_token(graph) -> int:
    """A stable, never-reused per-graph-instance identity for plan-cache keys.

    ``PropertyGraph`` mints its token from a process-wide monotonic counter
    at construction.  Graph-likes that arrive without one are assigned a
    token from the *same* counter on first planning — first by setting the
    attribute, else via a weak side table.  ``id(graph)`` is never used:
    the allocator recycles addresses, so after a graph died a newcomer
    could alias its id and silently hit the dead graph's cached plans.
    """
    token = getattr(graph, "plan_token", None)
    if token is not None:
        return token
    with _foreign_token_lock:
        token = getattr(graph, "plan_token", None)  # racing assigner won
        if token is not None:
            return token
        token = next(_PLAN_TOKENS)
        try:
            graph.plan_token = token
            return token
        except (AttributeError, TypeError):
            pass
        try:
            return _foreign_tokens.setdefault(graph, token)
        except TypeError:
            # Not weak-referenceable either; per-call tokens only make the
            # cache miss (never alias), which is the safe failure mode.
            return token


def _graph_epoch(graph) -> int:
    """The graph's index epoch (0 for graph-likes that don't track one)."""
    return getattr(graph, "index_epoch", 0)


#: The process-wide cache instance shared by the executor, trigger engine,
#: compatibility emulators and benchmark harness.
PLAN_CACHE = PlanCache()
