"""Index-aware query planning and the global parse+plan cache.

Until this module existed, every layer of the system paid the same two
costs on each query execution: the text was re-tokenised and re-parsed
(the trigger engine kept two ad-hoc per-trigger dicts; everything else
re-parsed every time), and MATCH always started from a label scan even
when a :class:`~repro.graph.indexes.PropertyIndex` could answer the
predicate directly.  Both costs dominate the trigger hot path, where a
handful of statements and conditions are executed thousands of times.

Two things live here:

* **The planner** — :func:`plan_query` inspects the MATCH (and MERGE)
  patterns of a parsed query together with the graph's index metadata and
  chooses, per path pattern, the cheapest *access path* for the starting
  node:

  - ``index`` — a :class:`~repro.graph.indexes.PropertyIndex` equality
    lookup, derived from inline property maps ``(n:Label {k: v})`` and
    from sargable ``WHERE n.k = <literal/parameter>`` conjuncts;
  - ``virtual`` — a virtual-label id set (the trigger engine's transition
    variables such as ``NEWNODES``);
  - ``label`` — a label-index scan over the most selective label;
  - ``scan`` — a full node scan.

  When the cheapest entry point is the *last* node of a path, the planner
  re-orders the pattern start point by reversing the element sequence
  (flipping relationship directions), which preserves the produced
  bindings exactly.

  On top of the per-pattern access paths, the planner performs
  **cost-based join ordering** for multi-pattern MATCH clauses
  (``MATCH (a:A), (b:B), …``): every pattern gets an estimated
  cardinality from :class:`~repro.graph.statistics.CardinalityEstimator`
  (label counts, index selectivity, relationship expansion factors), and
  the patterns are ordered greedily — cheapest/most-bound first, then
  always preferring patterns *connected* to an already-planned one over
  disconnected patterns, so cartesian products are deferred as far as
  possible.  The chosen :class:`JoinOrder` (with its estimates) is part
  of the plan and shows up in ``EXPLAIN`` output.

  Every access path — and the join order, since patterns of one MATCH
  clause form a commutative conjunction — is advisory: the executor
  re-verifies labels and properties on each candidate (and the WHERE
  clause still runs), so a stale or wrong plan can only cost
  performance, never change results.

* **The plan cache** — :class:`PlanCache`, a module-level LRU shared by
  the executor, the trigger engine, the APOC/Memgraph emulation layers
  and the benchmark harness.  Parses are cached by query text; plans are
  cached by ``(text, graph identity, virtual-label names)`` and checked
  against the graph's *index epoch* (bumped whenever a property index is
  created or dropped), so index DDL and virtual-label changes invalidate
  stale plans.  Plans store virtual-label *names* only — the id sets are
  resolved by each executor at run time, so cached plans never leak
  virtual-label state between executors.

``EXPLAIN``-style output is available through :func:`explain` or
:meth:`QueryPlan.plan_description`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..graph.statistics import CardinalityEstimator
from .ast import (
    BinaryOp,
    CallClause,
    CreateClause,
    ExistsPattern,
    Expression,
    Literal,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PathPattern,
    PropertyAccess,
    Query,
    RelationshipPattern,
    ReturnClause,
    UnwindClause,
    Variable,
    WithClause,
    expression_text,
    expression_variable_names,
    walk_expression,
)
from .errors import CypherSyntaxError
from .lexer import Token, tokenize
from .parser import parse_expression, parse_query

#: Access-path kinds, in decreasing priority.
INDEX = "index"
VIRTUAL = "virtual"
LABEL = "label"
SCAN = "scan"


# ---------------------------------------------------------------------------
# plan data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessPath:
    """How the executor should produce the starting candidate set."""

    kind: str
    #: Label of the index / virtual-label entry (``index``/``virtual``).
    label: Optional[str] = None
    #: Indexed property (``index`` only).
    property: Optional[str] = None
    #: Expression producing the looked-up value (``index`` only).  Always a
    #: literal or parameter, so it never depends on other pattern variables.
    value: Optional[Expression] = None
    #: Candidate real labels for a ``label`` scan (the executor picks the
    #: most selective one at run time, so counts never go stale).
    labels: tuple[str, ...] = ()

    def describe(self) -> str:
        """One-line human-readable rendering (used by EXPLAIN output)."""
        if self.kind == INDEX:
            return (
                f"IndexLookup({self.label}.{self.property} = "
                f"{expression_text(self.value)})"
            )
        if self.kind == VIRTUAL:
            return f"VirtualLabelScan({self.label})"
        if self.kind == LABEL:
            return "LabelScan(" + "|".join(self.labels) + ")"
        return "AllNodesScan"


def _format_rows(estimate: float) -> str:
    """Compact human-readable row estimate for EXPLAIN output."""
    if estimate >= 100:
        return str(int(round(estimate)))
    return f"{round(estimate, 2):g}"


@dataclass(frozen=True)
class PatternPlan:
    """Plan for one path pattern: element order, start path and cardinality."""

    pattern: PathPattern
    elements: tuple[Union[NodePattern, RelationshipPattern], ...]
    start: AccessPath
    reversed: bool = False
    #: Estimated result rows of matching this pattern standalone.
    estimated_rows: float = 0.0

    def describe(self) -> str:
        start = self.elements[0]
        name = start.variable or "_"
        direction = " (reversed)" if self.reversed else ""
        return (
            f"start=({name}) {self.start.describe()}{direction} "
            f"est~{_format_rows(self.estimated_rows)} rows"
        )


@dataclass(frozen=True)
class JoinOrder:
    """Execution order for the patterns of one multi-pattern MATCH clause.

    ``order`` holds indexes into ``clause.patterns``; ``estimated_rows``
    is the standalone estimate per pattern *in clause order* (so EXPLAIN
    can print both the chosen order and what each pattern was thought to
    cost).  ``cartesian`` records that at least one step had to start a
    disconnected pattern (a cartesian product the clause itself forces).
    """

    clause: MatchClause
    order: tuple[int, ...]
    estimated_rows: tuple[float, ...]
    cartesian: bool = False

    @property
    def reordered(self) -> bool:
        """True when the chosen order differs from clause order."""
        return self.order != tuple(range(len(self.order)))

    def describe(self) -> str:
        steps = ", ".join(
            f"pattern[{index}] est~{_format_rows(self.estimated_rows[index])}"
            for index in self.order
        )
        suffix = " cartesian" if self.cartesian else ""
        return f"JoinOrder({steps}){suffix}"


class QueryPlan:
    """Per-pattern access plans for one parsed query against one graph."""

    __slots__ = ("query", "_by_pattern", "_by_clause", "_lines", "has_join_orders")

    def __init__(
        self,
        query: Query,
        pattern_plans: Iterable[PatternPlan],
        join_orders: Iterable[JoinOrder] = (),
    ) -> None:
        self.query = query
        self._by_pattern: dict[int, PatternPlan] = {}
        self._by_clause: dict[int, JoinOrder] = {}
        self._lines: list[str] = []
        for plan in pattern_plans:
            self._by_pattern[id(plan.pattern)] = plan
            self._lines.append(plan.describe())
        for join_order in join_orders:
            self._by_clause[id(join_order.clause)] = join_order
            self._lines.append(join_order.describe())
        #: Cheap executor-side check before the per-row clause lookup.
        self.has_join_orders = bool(self._by_clause)

    def for_pattern(self, pattern: PathPattern) -> Optional[PatternPlan]:
        """The plan for ``pattern``, or None when it was not planned."""
        plan = self._by_pattern.get(id(pattern))
        if plan is not None and plan.pattern is pattern:
            return plan
        return None

    def join_order_for(self, clause: MatchClause) -> Optional[JoinOrder]:
        """The join order chosen for ``clause`` (None for single patterns)."""
        join_order = self._by_clause.get(id(clause))
        if join_order is not None and join_order.clause is clause:
            return join_order
        return None

    def pattern_plans(self) -> list[PatternPlan]:
        """All pattern plans, in clause order."""
        return list(self._by_pattern.values())

    def join_orders(self) -> list[JoinOrder]:
        """All multi-pattern join orders, in clause order."""
        return list(self._by_clause.values())

    def uses_index(self) -> bool:
        """True when any pattern starts from a property-index lookup."""
        return any(p.start.kind == INDEX for p in self._by_pattern.values())

    def plan_description(self) -> str:
        """EXPLAIN-style description: pattern lines then join-order lines."""
        if not self._lines:
            return "(no MATCH patterns to plan)"
        return "\n".join(self._lines)


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_query(
    query: Query,
    graph,
    virtual_labels: Iterable[str] = (),
) -> QueryPlan:
    """Choose access paths and join orders for every pattern of ``query``.

    ``graph`` only needs the index-metadata surface of
    :class:`~repro.graph.store.PropertyGraph` (``property_indexes()``,
    ``count_nodes_with_label()``, ``node_count()``); richer statistics
    surfaces (``relationship_count()``, ``property_index_selectivity()``)
    sharpen the cardinality estimates when present.
    """
    virtual = frozenset(virtual_labels)
    indexed = frozenset(graph.property_indexes())
    estimator = CardinalityEstimator(graph)
    plans: list[PatternPlan] = []
    join_orders: list[JoinOrder] = []
    bound: set[str] = set()
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            equalities = _sargable_equalities(clause.where)
            clause_plans = [
                _plan_pattern(pattern, equalities, graph, virtual, indexed, estimator)
                for pattern in clause.patterns
            ]
            plans.extend(clause_plans)
            if len(clause_plans) > 1:
                join_order = _order_patterns(clause, clause_plans, bound)
                if join_order is not None:
                    join_orders.append(join_order)
        elif isinstance(clause, MergeClause):
            # MERGE's match phase benefits from the same start-point choice;
            # only inline property maps are sargable here (no WHERE).
            plans.append(_plan_pattern(clause.pattern, {}, graph, virtual, indexed, estimator))
        bound = _advance_bound_variables(clause, bound)
    return QueryPlan(query, plans, join_orders)


def explain(text: str, graph, virtual_labels: Iterable[str] = ()) -> str:
    """Parse, plan and describe ``text`` against ``graph`` (EXPLAIN)."""
    query, plan = PLAN_CACHE.get(text, graph, frozenset(virtual_labels))
    del query
    return plan.plan_description()


def _plan_pattern(
    pattern: PathPattern,
    equalities: dict[str, list[tuple[str, Expression]]],
    graph,
    virtual: frozenset,
    indexed: frozenset,
    estimator: CardinalityEstimator,
) -> PatternPlan:
    first = pattern.elements[0]
    assert isinstance(first, NodePattern)
    first_path, first_cost = _access_path(first, equalities, graph, virtual, indexed, estimator)
    # Reversing changes the order nodes/relationships are appended to a
    # bound path variable and to a variable-length relationship's hop
    # list, so only anonymous, fixed-length paths are eligible; and since
    # it also changes the order in which element property maps are
    # evaluated, every property value must be static (a literal or
    # parameter) — an expression like ``{w: a.prop}`` may reference a
    # variable the forward traversal binds first.
    can_reverse = (
        len(pattern.elements) > 2
        and pattern.variable is None
        and not any(
            isinstance(element, RelationshipPattern) and element.is_variable_length
            for element in pattern.elements
        )
        and _pattern_properties_static(pattern)
    )
    if can_reverse:
        last = pattern.elements[-1]
        assert isinstance(last, NodePattern)
        last_path, last_cost = _access_path(last, equalities, graph, virtual, indexed, estimator)
        if last_cost < first_cost:
            elements = _reverse_elements(pattern.elements)
            return PatternPlan(
                pattern=pattern,
                elements=elements,
                start=last_path,
                reversed=True,
                estimated_rows=estimator.pattern_cardinality(last_cost, elements),
            )
    return PatternPlan(
        pattern=pattern,
        elements=pattern.elements,
        start=first_path,
        estimated_rows=estimator.pattern_cardinality(first_cost, pattern.elements),
    )


def _access_path(
    node_pattern: NodePattern,
    equalities: dict[str, list[tuple[str, Expression]]],
    graph,
    virtual: frozenset,
    indexed: frozenset,
    estimator: CardinalityEstimator,
) -> tuple[AccessPath, float]:
    """Best access path for one node pattern plus its estimated cost."""
    # Virtual labels mirror the executor's existing precedence: they are
    # typically tiny transition-variable sets, so they come first.
    for label in node_pattern.labels:
        if label in virtual:
            return AccessPath(kind=VIRTUAL, label=label), 0.0

    real_labels = tuple(l for l in node_pattern.labels if l not in virtual)
    candidates = _equality_candidates(node_pattern, equalities)
    for label in real_labels:
        for prop, value in candidates:
            if (label, prop) in indexed:
                path = AccessPath(kind=INDEX, label=label, property=prop, value=value)
                return path, estimator.index_selectivity(label, prop)

    if real_labels:
        cost = min(graph.count_nodes_with_label(l) for l in real_labels)
        return AccessPath(kind=LABEL, labels=real_labels), float(max(cost, 1))
    return AccessPath(kind=SCAN), float(max(graph.node_count(), 2))


# ---------------------------------------------------------------------------
# multi-pattern join ordering
# ---------------------------------------------------------------------------


def _order_patterns(
    clause: MatchClause,
    clause_plans: list[PatternPlan],
    bound_before: set[str],
) -> Optional[JoinOrder]:
    """Greedy cost-based ordering for the patterns of one MATCH clause.

    Start from the cheapest pattern (a pattern whose start variable is
    already bound by an earlier clause is near-free); afterwards always
    prefer patterns sharing a variable with what is planned so far —
    their nested-loop cost starts from bound values — and only fall back
    to a disconnected (cartesian) pattern when nothing connects.  Ties
    break towards clause order, so equal-cost plans keep the author's
    layout.  The order is advisory: patterns of one MATCH clause are a
    commutative conjunction, so any order produces the same row *set*.

    Exception: a pattern whose inline property map *reads* a variable
    that neither an earlier clause nor a *preceding element of the same
    pattern* binds (``(b:B {x: a.y})``, or ``(b:B {y: a.z})-[:R]->(a)``
    where ``a`` comes from a sibling pattern) is evaluation-order
    dependent — running it before the sibling binding the variable would
    raise instead of producing the same rows, and whether it is reached
    at all can depend on its clause position.  Such clauses are declined
    (returns None) and keep their written order.
    """
    for plan in clause_plans:
        if _pattern_has_external_reads(plan.pattern, bound_before):
            return None
    variables = [_pattern_variable_names(plan.pattern) for plan in clause_plans]
    estimates = tuple(plan.estimated_rows for plan in clause_plans)
    bound = set(bound_before)
    remaining = list(range(len(clause_plans)))
    order: list[int] = []
    cartesian = False

    def effective_cost(index: int) -> float:
        start_variable = clause_plans[index].elements[0].variable
        if start_variable is not None and start_variable in bound:
            return 1.0
        return estimates[index]

    while remaining:
        connected = [i for i in remaining if variables[i] & bound]
        pool = connected or remaining
        if order and not connected:
            cartesian = True
        best = min(pool, key=lambda i: (effective_cost(i), i))
        order.append(best)
        bound |= variables[best]
        remaining.remove(best)
    return JoinOrder(
        clause=clause,
        order=tuple(order),
        estimated_rows=estimates,
        cartesian=cartesian,
    )


def _pattern_variable_names(pattern: PathPattern) -> set[str]:
    """Variables a pattern binds or references (connectivity for ordering)."""
    names = {element.variable for element in pattern.elements if element.variable}
    if pattern.variable is not None:
        names.add(pattern.variable)
    return names


def _pattern_has_external_reads(pattern: PathPattern, bound_before: set[str]) -> bool:
    """Does any element property map read a variable the pattern has not
    bound by that point?

    Matching proceeds element by element (reversal is blocked for
    patterns with non-static property maps), so a property expression may
    only rely on variables from earlier clauses (``bound_before``) or
    from *preceding* elements of the same pattern.  Anything else — a
    sibling pattern's variable, a forward reference, an element's own
    variable — makes the pattern's behaviour depend on evaluation order.
    """
    available = set(bound_before)
    for element in pattern.elements:
        for _, expr in element.properties:
            if expression_variable_names(expr) - available:
                return True
        if element.variable is not None:
            available.add(element.variable)
    return False


def _advance_bound_variables(clause, bound: set[str]) -> set[str]:
    """Variables visible after ``clause``, given ``bound`` before it.

    Only used to inform join ordering (a bound start variable makes a
    pattern near-free), so over- or under-approximating here affects plan
    quality, never results.
    """
    if isinstance(clause, (MatchClause, CreateClause)):
        out = set(bound)
        for pattern in clause.patterns:
            out |= _pattern_variable_names(pattern)
        return out
    if isinstance(clause, MergeClause):
        return bound | _pattern_variable_names(clause.pattern)
    if isinstance(clause, UnwindClause):
        return bound | {clause.variable}
    if isinstance(clause, CallClause):
        return bound | {alias for _, alias in clause.yield_items}
    if isinstance(clause, (WithClause, ReturnClause)):
        names = {item.output_name() for item in clause.items}
        if clause.include_wildcard:
            return bound | names
        # A projecting WITH narrows scope to exactly its output names.
        return names
    return bound


def _pattern_properties_static(pattern: PathPattern) -> bool:
    """True when no element property value can depend on pattern variables."""
    return all(
        isinstance(expr, (Literal, Parameter))
        for element in pattern.elements
        for _, expr in element.properties
    )


def _equality_candidates(
    node_pattern: NodePattern,
    equalities: dict[str, list[tuple[str, Expression]]],
) -> list[tuple[str, Expression]]:
    """(property, value-expression) pairs usable for an index lookup.

    Only literal and parameter values qualify: they evaluate independently
    of the other pattern variables, so narrowing the candidate set with
    them can never drop a row the full match would have produced.
    """
    pairs: list[tuple[str, Expression]] = []
    for key, expr in node_pattern.properties:
        if isinstance(expr, (Literal, Parameter)):
            pairs.append((key, expr))
    if node_pattern.variable is not None:
        pairs.extend(equalities.get(node_pattern.variable, ()))
    return pairs


def _sargable_equalities(where: Optional[Expression]) -> dict[str, list[tuple[str, Expression]]]:
    """Extract ``var.prop = <literal/parameter>`` conjuncts from a WHERE tree."""
    if where is None:
        return {}
    result: dict[str, list[tuple[str, Expression]]] = {}
    for conjunct in _conjuncts(where):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        for access, value in ((conjunct.left, conjunct.right), (conjunct.right, conjunct.left)):
            if (
                isinstance(access, PropertyAccess)
                and isinstance(access.subject, Variable)
                and isinstance(value, (Literal, Parameter))
            ):
                result.setdefault(access.subject.name, []).append((access.key, value))
                break
    return result


def _conjuncts(expr: Expression) -> Iterator[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _reverse_elements(
    elements: tuple[Union[NodePattern, RelationshipPattern], ...]
) -> tuple[Union[NodePattern, RelationshipPattern], ...]:
    """Reverse a path, flipping relationship directions."""
    flipped: list[Union[NodePattern, RelationshipPattern]] = []
    for element in reversed(elements):
        if isinstance(element, RelationshipPattern):
            direction = {"out": "in", "in": "out", "both": "both"}[element.direction]
            element = RelationshipPattern(
                variable=element.variable,
                types=element.types,
                properties=element.properties,
                direction=direction,
                min_hops=element.min_hops,
                max_hops=element.max_hops,
            )
        flipped.append(element)
    return tuple(flipped)


# ---------------------------------------------------------------------------
# the global parse + plan cache
# ---------------------------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Counters for observing cache behaviour (tests, benchmarks, EXPLAIN)."""

    parse_hits: int = 0
    parse_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_invalidations: int = 0
    condition_hits: int = 0
    condition_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (handy for benchmark notes)."""
        return {
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_invalidations": self.plan_invalidations,
            "condition_hits": self.condition_hits,
            "condition_misses": self.condition_misses,
        }


@dataclass
class _PlanEntry:
    """One cached (query, plan) pair, validated against the graph epoch.

    Used by both the text-keyed and the id()-keyed plan stores; in the
    latter, holding ``query`` also pins the object so its id cannot be
    reused while the entry is alive, and the identity check on lookup
    rejects entries that somehow outlive their query object.
    """

    epoch: int
    query: Query
    plan: QueryPlan


@dataclass(frozen=True)
class CompiledCondition:
    """A cached PG-Trigger WHEN body plus cheap-to-test shape flags.

    ``is_query`` distinguishes condition queries (MATCH/WITH pipelines)
    from plain predicates; ``has_exists`` tells the trigger engine whether
    evaluating the predicate needs a full executor (for EXISTS patterns)
    or can run through the bare expression evaluator.
    """

    parsed: Union[Expression, Query]
    is_query: bool
    has_exists: bool


class PlanCache:
    """LRU parse+plan cache shared process-wide.

    Three layers, all keyed on query text:

    * parses (graph-independent);
    * plans, additionally keyed on the graph's identity token and the
      executor's virtual-label *names*, validated against the graph's
      index epoch on every hit;
    * trigger conditions (expression-or-query, with the trigger engine's
      wildcard-RETURN normalisation applied to query-shaped conditions).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._parses: OrderedDict[str, Query] = OrderedDict()
        self._plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._parsed_plans: OrderedDict[tuple, _PlanEntry] = OrderedDict()
        self._conditions: OrderedDict[str, CompiledCondition] = OrderedDict()
        self._tokens: OrderedDict[str, list[Token]] = OrderedDict()
        self.stats = PlanCacheStats()

    # -- parsing --------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse ``text`` (cached)."""
        with self._lock:
            cached = self._parses.get(text)
            if cached is not None:
                self._parses.move_to_end(text)
                self.stats.parse_hits += 1
                return cached
        query = parse_query(text)
        with self._lock:
            self.stats.parse_misses += 1
            self._insert(self._parses, text, query)
        return query

    def tokenize(self, text: str) -> list[Token]:
        """Tokenise ``text`` (cached; callers must not mutate the list)."""
        with self._lock:
            cached = self._tokens.get(text)
            if cached is not None:
                self._tokens.move_to_end(text)
                return cached
        tokens = tokenize(text)
        with self._lock:
            self._insert(self._tokens, text, tokens)
        return tokens

    # -- planning -------------------------------------------------------

    def get(
        self,
        text: str,
        graph,
        virtual_label_names: frozenset = frozenset(),
    ) -> tuple[Query, QueryPlan]:
        """Parse and plan ``text`` for ``graph`` (both cached).

        A cached plan is reused only while the graph's index epoch is
        unchanged; creating or dropping a property index bumps the epoch
        and evicts the stale entry on the next lookup.  Virtual-label
        names participate in the key, so registering a new virtual label
        re-plans rather than reusing a plan that ignored it.
        """
        key = (text, _graph_token(graph), virtual_label_names)
        epoch = _graph_epoch(graph)
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                if entry.epoch == epoch:
                    self._plans.move_to_end(key)
                    self.stats.plan_hits += 1
                    return entry.query, entry.plan
                del self._plans[key]
                self.stats.plan_invalidations += 1
        query = self.parse(text)
        plan = plan_query(query, graph, virtual_label_names)
        with self._lock:
            self.stats.plan_misses += 1
            self._insert(self._plans, key, _PlanEntry(epoch=epoch, query=query, plan=plan))
        return query, plan

    def get_for_parsed(
        self,
        query: Query,
        graph,
        virtual_label_names: frozenset = frozenset(),
    ) -> QueryPlan:
        """Plan an already-parsed query (cached by object identity).

        Used for query objects that live outside the text cache, e.g. the
        trigger engine's compiled condition queries, which are executed once
        per activation and would otherwise be re-planned on every firing.
        The entry keeps a reference to ``query``, so the id()-based key can
        never alias a different, later object.
        """
        key = (id(query), _graph_token(graph), virtual_label_names)
        epoch = _graph_epoch(graph)
        with self._lock:
            entry = self._parsed_plans.get(key)
            if entry is not None and entry.query is query:
                if entry.epoch == epoch:
                    self._parsed_plans.move_to_end(key)
                    self.stats.plan_hits += 1
                    return entry.plan
                del self._parsed_plans[key]
                self.stats.plan_invalidations += 1
        plan = plan_query(query, graph, virtual_label_names)
        with self._lock:
            self.stats.plan_misses += 1
            self._insert(
                self._parsed_plans, key, _PlanEntry(epoch=epoch, query=query, plan=plan)
            )
        return plan

    # -- trigger conditions ---------------------------------------------

    def condition_compiled(self, text: str) -> CompiledCondition:
        """Parse a PG-Trigger WHEN body (cached), with shape flags.

        Plain predicates parse as expressions; MATCH/UNWIND/WITH pipelines
        parse as queries and get a wildcard RETURN appended when absent, so
        the surviving rows become the condition rows.
        """
        with self._lock:
            cached = self._conditions.get(text)
            if cached is not None:
                self._conditions.move_to_end(text)
                self.stats.condition_hits += 1
                return cached
        try:
            expression = parse_expression(text)
            compiled = CompiledCondition(
                parsed=expression,
                is_query=False,
                has_exists=any(
                    isinstance(sub, ExistsPattern) for sub in walk_expression(expression)
                ),
            )
        except CypherSyntaxError:
            query = parse_query(text)
            if not any(isinstance(clause, ReturnClause) for clause in query.clauses):
                query = Query(
                    clauses=query.clauses + (ReturnClause(items=(), include_wildcard=True),)
                )
            compiled = CompiledCondition(parsed=query, is_query=True, has_exists=False)
        with self._lock:
            self.stats.condition_misses += 1
            self._insert(self._conditions, text, compiled)
        return compiled

    # -- maintenance ----------------------------------------------------

    def clear(self) -> None:
        """Drop every cached parse, plan and condition; reset statistics."""
        with self._lock:
            self._parses.clear()
            self._plans.clear()
            self._parsed_plans.clear()
            self._conditions.clear()
            self._tokens.clear()
            self.stats = PlanCacheStats()

    def plan_entry_count(self) -> int:
        """Number of cached plans (for tests)."""
        with self._lock:
            return len(self._plans)

    def _insert(self, store: OrderedDict, key, value) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)


def _graph_token(graph) -> int:
    """A stable per-graph-instance identity for plan-cache keys."""
    token = getattr(graph, "plan_token", None)
    return id(graph) if token is None else token


def _graph_epoch(graph) -> int:
    """The graph's index epoch (0 for graph-likes that don't track one)."""
    return getattr(graph, "index_epoch", 0)


#: The process-wide cache instance shared by the executor, trigger engine,
#: compatibility emulators and benchmark harness.
PLAN_CACHE = PlanCache()
