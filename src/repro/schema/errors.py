"""Exception hierarchy for the PG-Schema substrate."""

from __future__ import annotations


class SchemaError(Exception):
    """Base class for all schema errors."""


class SchemaDefinitionError(SchemaError):
    """Raised when a schema definition is inconsistent (unknown supertype,
    duplicate type names, malformed key, …)."""


class SchemaParseError(SchemaError):
    """Raised when a textual PG-Schema specification cannot be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        suffix = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{suffix}")
        self.line = line


class SchemaValidationError(SchemaError):
    """Raised by strict validation when a graph violates its schema."""

    def __init__(self, violations: list["object"]) -> None:
        from .validation import Violation  # local import to avoid a cycle

        messages = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(f"{len(violations)} schema violation(s): {messages}{more}")
        self.violations: list[Violation] = list(violations)
