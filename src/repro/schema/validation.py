"""Validation of property graph instances against a PG-Schema."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..graph.model import Node, Relationship
from ..graph.store import PropertyGraph
from .errors import SchemaValidationError
from .schema import PGSchema


class ViolationKind(enum.Enum):
    """Classification of schema violations."""

    UNKNOWN_LABEL = "unknown-label"
    UNLABELED_ITEM = "unlabeled-item"
    MISSING_PROPERTY = "missing-property"
    UNDECLARED_PROPERTY = "undeclared-property"
    WRONG_TYPE = "wrong-type"
    MISSING_SUPERTYPE_LABEL = "missing-supertype-label"
    BAD_ENDPOINT = "bad-endpoint"
    KEY_VIOLATION = "key-violation"
    ABSTRACT_INSTANCE = "abstract-instance"


@dataclass(frozen=True)
class Violation:
    """One schema violation found during validation."""

    kind: ViolationKind
    message: str
    item_id: Optional[int] = None
    label: Optional[str] = None

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.message}"


def validate_graph(graph: PropertyGraph, schema: PGSchema) -> list[Violation]:
    """Validate ``graph`` against ``schema`` and return all violations.

    In STRICT mode every node must carry at least one declared label, every
    declared property must type-check, non-OPEN types reject undeclared
    properties, and relationship endpoints must match the declared edge
    types.  In LOOSE mode unknown labels and unlabeled items are accepted;
    declared labels are still checked.
    """
    violations: list[Violation] = []
    for node in graph.nodes():
        violations.extend(_validate_node(node, schema))
    for rel in graph.relationships():
        violations.extend(_validate_relationship(rel, graph, schema))
    for key in schema.keys():
        for message in key.violations(graph):
            violations.append(
                Violation(kind=ViolationKind.KEY_VIOLATION, message=message, label=key.label)
            )
    return violations


def assert_valid(graph: PropertyGraph, schema: PGSchema) -> None:
    """Raise :class:`SchemaValidationError` when the graph violates the schema."""
    violations = validate_graph(graph, schema)
    if violations:
        raise SchemaValidationError(violations)


def conforms(graph: PropertyGraph, schema: PGSchema) -> bool:
    """True when the graph has no violations."""
    return not validate_graph(graph, schema)


# ---------------------------------------------------------------------------
# item-level checks
# ---------------------------------------------------------------------------


def _validate_node(node: Node, schema: PGSchema) -> list[Violation]:
    violations: list[Violation] = []
    declared = [label for label in node.labels if schema.has_node_label(label)]
    unknown = [label for label in node.labels if not schema.has_node_label(label)]

    if not node.labels and schema.strict:
        violations.append(
            Violation(
                kind=ViolationKind.UNLABELED_ITEM,
                message=f"node {node.id} has no label (STRICT graph type)",
                item_id=node.id,
            )
        )
        return violations
    if unknown and schema.strict:
        for label in unknown:
            violations.append(
                Violation(
                    kind=ViolationKind.UNKNOWN_LABEL,
                    message=f"node {node.id} carries undeclared label {label!r}",
                    item_id=node.id,
                    label=label,
                )
            )
    if not declared:
        return violations

    # The most specific declared label(s) drive property validation: a label
    # is "most specific" when no other declared label on the node is one of
    # its subtypes.
    specific_labels = _most_specific(declared, schema)
    allowed_properties: set[str] = set()
    open_type = False
    for label in specific_labels:
        node_type = schema.node_type(label)
        if node_type.abstract:
            violations.append(
                Violation(
                    kind=ViolationKind.ABSTRACT_INSTANCE,
                    message=f"node {node.id} instantiates abstract type {node_type.name}",
                    item_id=node.id,
                    label=label,
                )
            )
        if schema.is_open(label):
            open_type = True
        effective = schema.effective_properties(label)
        allowed_properties.update(effective)
        for name, spec in effective.items():
            if name not in node.properties:
                if not spec.optional and not spec.is_key:
                    violations.append(
                        Violation(
                            kind=ViolationKind.MISSING_PROPERTY,
                            message=(
                                f"node {node.id} ({label}) is missing required property {name!r}"
                            ),
                            item_id=node.id,
                            label=label,
                        )
                    )
                continue
            if not spec.accepts(node.properties[name]):
                violations.append(
                    Violation(
                        kind=ViolationKind.WRONG_TYPE,
                        message=(
                            f"node {node.id} ({label}) property {name!r} = "
                            f"{node.properties[name]!r} does not satisfy {spec.data_type}"
                        ),
                        item_id=node.id,
                        label=label,
                    )
                )
        # Subtype instances must also carry their supertype labels.
        for expected in schema.expected_labels(label):
            if expected not in node.labels:
                violations.append(
                    Violation(
                        kind=ViolationKind.MISSING_SUPERTYPE_LABEL,
                        message=(
                            f"node {node.id} with label {label!r} must also carry its "
                            f"supertype label {expected!r}"
                        ),
                        item_id=node.id,
                        label=label,
                    )
                )

    if schema.strict and not open_type:
        for name in node.properties:
            if name not in allowed_properties:
                violations.append(
                    Violation(
                        kind=ViolationKind.UNDECLARED_PROPERTY,
                        message=f"node {node.id} carries undeclared property {name!r}",
                        item_id=node.id,
                    )
                )
    return violations


def _validate_relationship(
    rel: Relationship, graph: PropertyGraph, schema: PGSchema
) -> list[Violation]:
    violations: list[Violation] = []
    if not schema.has_edge_label(rel.type):
        if schema.strict:
            violations.append(
                Violation(
                    kind=ViolationKind.UNKNOWN_LABEL,
                    message=f"relationship {rel.id} has undeclared type {rel.type!r}",
                    item_id=rel.id,
                    label=rel.type,
                )
            )
        return violations

    start = graph.node(rel.start)
    end = graph.node(rel.end)
    candidates = schema.edge_type_for_label(rel.type)
    endpoint_ok = False
    for edge_type in candidates:
        source_labels = schema.expected_labels(schema.node_type(edge_type.source).label)
        target_labels = schema.expected_labels(schema.node_type(edge_type.target).label)
        source_label = schema.node_type(edge_type.source).label
        target_label = schema.node_type(edge_type.target).label
        if _carries(start, source_label, schema) and _carries(end, target_label, schema):
            endpoint_ok = True
            for name, spec in edge_type.properties.items():
                if name not in rel.properties:
                    if not spec.optional:
                        violations.append(
                            Violation(
                                kind=ViolationKind.MISSING_PROPERTY,
                                message=(
                                    f"relationship {rel.id} ({rel.type}) is missing required "
                                    f"property {name!r}"
                                ),
                                item_id=rel.id,
                                label=rel.type,
                            )
                        )
                elif not spec.accepts(rel.properties[name]):
                    violations.append(
                        Violation(
                            kind=ViolationKind.WRONG_TYPE,
                            message=(
                                f"relationship {rel.id} ({rel.type}) property {name!r} does "
                                f"not satisfy {spec.data_type}"
                            ),
                            item_id=rel.id,
                            label=rel.type,
                        )
                    )
            break
        # keep looping: another edge type with the same label may fit
        del source_labels, target_labels
    if not endpoint_ok:
        violations.append(
            Violation(
                kind=ViolationKind.BAD_ENDPOINT,
                message=(
                    f"relationship {rel.id} of type {rel.type!r} connects "
                    f"{sorted(start.labels)} to {sorted(end.labels)}, which matches no "
                    "declared edge type"
                ),
                item_id=rel.id,
                label=rel.type,
            )
        )
    return violations


def _carries(node: Node, label: str, schema: PGSchema) -> bool:
    """True when ``node`` carries ``label`` directly or via a declared subtype."""
    if label in node.labels:
        return True
    for node_label in node.labels:
        if not schema.has_node_label(node_label):
            continue
        ancestors = {t.label for t in schema.supertypes(node_label)}
        if label in ancestors:
            return True
    return False


def _most_specific(labels: list[str], schema: PGSchema) -> list[str]:
    """Drop labels that are supertypes of other labels in the list."""
    result = []
    for label in labels:
        is_super = False
        for other in labels:
            if other == label:
                continue
            ancestors = {t.label for t in schema.supertypes(other)}
            if label in ancestors:
                is_super = True
                break
        if not is_super:
            result.append(label)
    return result
