"""PG-Keys: key constraints over labelled subsets of a property graph.

The PG-Keys proposal ([5] Angles et al. 2021) expresses keys as
``FOR <pattern> EXCLUSIVE MANDATORY SINGLETON <properties>``.  The paper's
Figure 4 marks ``Sequence.accession`` and ``Patient.ssn`` with KEY; this
module provides the constraint object and its checking logic, shared by
schema validation and by the trigger engine's optional constraint hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.store import PropertyGraph


@dataclass(frozen=True)
class PGKey:
    """A key constraint for nodes carrying ``label``.

    Attributes:
        label: the target label.
        properties: the identifying property names (composite keys allowed).
        mandatory: every node with the label must define all key properties.
        exclusive: no two nodes with the label may share the same key values.
    """

    label: str
    properties: tuple[str, ...]
    mandatory: bool = True
    exclusive: bool = True

    def __str__(self) -> str:
        modifiers = []
        if self.exclusive:
            modifiers.append("EXCLUSIVE")
        if self.mandatory:
            modifiers.append("MANDATORY")
        props = ", ".join(f"x.{p}" for p in self.properties)
        return f"FOR (x:{self.label}) {' '.join(modifiers)} SINGLETON {props}"

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def key_of(self, properties: dict) -> tuple | None:
        """Extract the key tuple from a property map; None when incomplete."""
        values = []
        for name in self.properties:
            if name not in properties:
                return None
            value = properties[name]
            values.append(tuple(value) if isinstance(value, list) else value)
        return tuple(values)

    def violations(self, graph: "PropertyGraph") -> list[str]:
        """Return human-readable violation messages for ``graph``."""
        problems: list[str] = []
        seen: dict[tuple, int] = {}
        for node in graph.nodes_with_label(self.label):
            key = self.key_of(dict(node.properties))
            if key is None:
                if self.mandatory:
                    problems.append(
                        f"node {node.id} with label {self.label} is missing key "
                        f"properties {self.properties}"
                    )
                continue
            if self.exclusive and key in seen:
                problems.append(
                    f"nodes {seen[key]} and {node.id} share key {key} for label {self.label}"
                )
            else:
                seen[key] = node.id
        return problems

    def is_satisfied(self, graph: "PropertyGraph") -> bool:
        """True when ``graph`` has no violations of this key."""
        return not self.violations(graph)


def check_keys(graph: "PropertyGraph", keys: Iterable[PGKey]) -> list[str]:
    """Check several keys at once, returning all violation messages."""
    problems: list[str] = []
    for key in keys:
        problems.extend(key.violations(graph))
    return problems
