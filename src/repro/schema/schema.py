"""PG-Schema: node types, edge types, hierarchies and graph types.

The model follows the PG-Schema proposal cited by the paper ([6] Angles et
al. 2023) to the extent used in Section 6.1:

* every node type has a *label* and a set of typed properties;
* node types form a hierarchy (``HospitalizedPatient`` IS-A ``Patient``),
  with property inheritance;
* edge types connect a source and a target node type and may carry
  properties;
* a *graph type* is STRICT (every node/relationship must conform to exactly
  the declared types; labels behave like relational table names) or LOOSE
  (extra labels/unlabeled items are allowed);
* node types may be OPEN, meaning instances can carry properties beyond the
  declared ones (the paper's ``Alert`` type is OPEN so triggers can attach
  arbitrary context).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from .errors import SchemaDefinitionError
from .keys import PGKey
from .types import DataType, PropertySpec


@dataclass
class NodeType:
    """Declaration of one node type.

    Attributes:
        name: type name (``PatientType``); defaults to ``label`` + ``Type``
            when constructed through :meth:`PGSchema.add_node_type`.
        label: the label carried by instances.
        properties: own (non-inherited) property specs, keyed by name.
        supertype: name of the parent node type, if any.
        open: True when instances may carry undeclared properties.
        abstract: True when the type cannot have direct instances.
    """

    name: str
    label: str
    properties: dict[str, PropertySpec] = field(default_factory=dict)
    supertype: Optional[str] = None
    open: bool = False
    abstract: bool = False

    def __str__(self) -> str:
        parts = [f"({self.name}: {self.label}"]
        if self.supertype:
            parts.append(f" <: {self.supertype}")
        if self.properties:
            inner = ", ".join(str(spec) for spec in self.properties.values())
            parts.append(" {" + inner + "}")
        if self.open:
            parts.append(" OPEN")
        parts.append(")")
        return "".join(parts)


@dataclass
class EdgeType:
    """Declaration of one edge (relationship) type.

    The relationship is identified by its label *and* the labels of the node
    types it connects, as noted in Section 6.1 of the paper.
    """

    name: str
    label: str
    source: str
    target: str
    properties: dict[str, PropertySpec] = field(default_factory=dict)

    def __str__(self) -> str:
        props = ""
        if self.properties:
            props = " {" + ", ".join(str(spec) for spec in self.properties.values()) + "}"
        return f"(:{self.source})-[{self.name}: {self.label}{props}]->(:{self.target})"


class PGSchema:
    """A PG-Schema graph type: node types, edge types, keys and mode."""

    def __init__(self, name: str = "GraphType", strict: bool = True) -> None:
        self.name = name
        self.strict = strict
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        self._keys: list[PGKey] = []

    # ------------------------------------------------------------------
    # definition
    # ------------------------------------------------------------------

    def add_node_type(
        self,
        label: str,
        properties: Mapping[str, DataType | PropertySpec] | Iterable[PropertySpec] | None = None,
        supertype: str | None = None,
        open: bool = False,
        abstract: bool = False,
        name: str | None = None,
    ) -> NodeType:
        """Declare a node type; returns the created :class:`NodeType`.

        ``properties`` accepts either a mapping ``name -> DataType`` /
        ``name -> PropertySpec`` or an iterable of :class:`PropertySpec`.
        A property marked ``is_key`` automatically registers a PG-Key.
        """
        type_name = name or f"{label}Type"
        if type_name in self._node_types:
            raise SchemaDefinitionError(f"duplicate node type {type_name!r}")
        if supertype is not None and supertype not in self._node_types:
            raise SchemaDefinitionError(f"unknown supertype {supertype!r} for {type_name!r}")
        specs = _normalise_properties(properties)
        node_type = NodeType(
            name=type_name,
            label=label,
            properties=specs,
            supertype=supertype,
            open=open,
            abstract=abstract,
        )
        self._node_types[type_name] = node_type
        for spec in specs.values():
            if spec.is_key:
                self.add_key(PGKey(label=label, properties=(spec.name,)))
        return node_type

    def add_edge_type(
        self,
        label: str,
        source: str,
        target: str,
        properties: Mapping[str, DataType | PropertySpec] | Iterable[PropertySpec] | None = None,
        name: str | None = None,
    ) -> EdgeType:
        """Declare an edge type between two declared node types (by label or name)."""
        source_type = self._resolve_node_type(source)
        target_type = self._resolve_node_type(target)
        type_name = name or f"{label}Type"
        key = type_name
        suffix = 2
        while key in self._edge_types:
            key = f"{type_name}{suffix}"
            suffix += 1
        edge_type = EdgeType(
            name=key,
            label=label,
            source=source_type.name,
            target=target_type.name,
            properties=_normalise_properties(properties),
        )
        self._edge_types[key] = edge_type
        return edge_type

    def add_key(self, key: PGKey) -> PGKey:
        """Register a PG-Key constraint."""
        self._keys.append(key)
        return key

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node_types(self) -> list[NodeType]:
        """All declared node types (declaration order)."""
        return list(self._node_types.values())

    def edge_types(self) -> list[EdgeType]:
        """All declared edge types (declaration order)."""
        return list(self._edge_types.values())

    def keys(self) -> list[PGKey]:
        """All PG-Key constraints."""
        return list(self._keys)

    def node_type(self, name_or_label: str) -> NodeType:
        """Fetch a node type by type name or by label."""
        return self._resolve_node_type(name_or_label)

    def edge_type_for_label(self, label: str) -> list[EdgeType]:
        """All edge types carrying ``label`` (there may be several)."""
        return [e for e in self._edge_types.values() if e.label == label]

    def has_node_label(self, label: str) -> bool:
        """True when some node type declares ``label``."""
        return any(t.label == label for t in self._node_types.values())

    def has_edge_label(self, label: str) -> bool:
        """True when some edge type declares ``label``."""
        return any(t.label == label for t in self._edge_types.values())

    def node_labels(self) -> list[str]:
        """All declared node labels."""
        return [t.label for t in self._node_types.values()]

    def edge_labels(self) -> list[str]:
        """All declared edge labels (deduplicated, order preserved)."""
        seen: list[str] = []
        for edge in self._edge_types.values():
            if edge.label not in seen:
                seen.append(edge.label)
        return seen

    def _resolve_node_type(self, name_or_label: str) -> NodeType:
        if name_or_label in self._node_types:
            return self._node_types[name_or_label]
        for node_type in self._node_types.values():
            if node_type.label == name_or_label:
                return node_type
        raise SchemaDefinitionError(f"unknown node type {name_or_label!r}")

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------

    def supertypes(self, name_or_label: str) -> list[NodeType]:
        """The chain of ancestors of a node type, nearest first."""
        node_type = self._resolve_node_type(name_or_label)
        chain: list[NodeType] = []
        seen = {node_type.name}
        current = node_type
        while current.supertype is not None:
            parent = self._node_types.get(current.supertype)
            if parent is None or parent.name in seen:
                raise SchemaDefinitionError(
                    f"broken or cyclic type hierarchy at {current.supertype!r}"
                )
            chain.append(parent)
            seen.add(parent.name)
            current = parent
        return chain

    def subtypes(self, name_or_label: str) -> list[NodeType]:
        """Direct and indirect subtypes of a node type."""
        root = self._resolve_node_type(name_or_label)
        result = []
        for candidate in self._node_types.values():
            if candidate.name == root.name:
                continue
            if any(ancestor.name == root.name for ancestor in self.supertypes(candidate.name)):
                result.append(candidate)
        return result

    def effective_properties(self, name_or_label: str) -> dict[str, PropertySpec]:
        """Own + inherited property specs of a node type (subtype overrides win)."""
        node_type = self._resolve_node_type(name_or_label)
        merged: dict[str, PropertySpec] = {}
        for ancestor in reversed(self.supertypes(node_type.name)):
            merged.update(ancestor.properties)
        merged.update(node_type.properties)
        return merged

    def expected_labels(self, name_or_label: str) -> set[str]:
        """Labels an instance of the type carries: its own plus inherited ones.

        In the paper's running example a ``HospitalizedPatient`` node also
        carries the ``Patient`` label (matching ``(p:HospitalizedPatient:
        IcuPatient)`` patterns along the hierarchy).
        """
        node_type = self._resolve_node_type(name_or_label)
        labels = {node_type.label}
        labels.update(ancestor.label for ancestor in self.supertypes(node_type.name))
        return labels

    def is_open(self, name_or_label: str) -> bool:
        """True when the node type (or any ancestor) is declared OPEN."""
        node_type = self._resolve_node_type(name_or_label)
        if node_type.open:
            return True
        return any(ancestor.open for ancestor in self.supertypes(node_type.name))

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def to_spec(self) -> str:
        """Render the schema in the textual dialect accepted by the parser."""
        mode = "STRICT" if self.strict else "LOOSE"
        lines = [f"CREATE GRAPH TYPE {self.name} {mode} {{"]
        body: list[str] = []
        for node_type in self._node_types.values():
            props = ", ".join(str(spec) for spec in node_type.properties.values())
            pieces = [f"  ({node_type.name}: "]
            if node_type.supertype:
                pieces.append(f"{node_type.supertype} & ")
            pieces.append(node_type.label)
            if node_type.open:
                pieces.append(" OPEN")
            if props:
                pieces.append(" {" + props + "}")
            pieces.append(")")
            body.append("".join(pieces))
        for edge_type in self._edge_types.values():
            props = ", ".join(str(spec) for spec in edge_type.properties.values())
            prop_text = (" {" + props + "}") if props else ""
            source = self._node_types[edge_type.source]
            target = self._node_types[edge_type.target]
            body.append(
                f"  (:{source.name})-[{edge_type.name}: {edge_type.label}{prop_text}]->"
                f"(:{target.name})"
            )
        lines.append(",\n".join(body))
        lines.append("}")
        for key in self._keys:
            lines.append(str(key))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PGSchema({self.name!r}, strict={self.strict}, "
            f"node_types={len(self._node_types)}, edge_types={len(self._edge_types)}, "
            f"keys={len(self._keys)})"
        )


def _normalise_properties(
    properties: Mapping[str, DataType | PropertySpec] | Iterable[PropertySpec] | None,
) -> dict[str, PropertySpec]:
    specs: dict[str, PropertySpec] = {}
    if properties is None:
        return specs
    if isinstance(properties, Mapping):
        for name, value in properties.items():
            if isinstance(value, PropertySpec):
                specs[name] = value
            elif isinstance(value, DataType):
                specs[name] = PropertySpec(name=name, data_type=value)
            else:
                raise SchemaDefinitionError(
                    f"property {name!r} must map to a DataType or PropertySpec"
                )
        return specs
    for spec in properties:
        if not isinstance(spec, PropertySpec):
            raise SchemaDefinitionError("property iterable must contain PropertySpec items")
        specs[spec.name] = spec
    return specs
