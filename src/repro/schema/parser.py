"""Parser for a textual PG-Schema dialect (the paper's Figure 5 style).

The accepted syntax is the fragment of the PG-Schema proposal used by the
paper's running example::

    CREATE GRAPH TYPE CovidGraphType STRICT {
      (MutationType: Mutation {name STRING, protein STRING}),
      (PatientType: Patient {ssn STRING KEY, name STRING, sex CHAR,
                             comorbidity ARRAY[STRING], vaccinated INT32 OPTIONAL}),
      (HospitalizedPatientType: PatientType & HospitalizedPatient
                                {id INT32, prognosis STRING}),
      (AlertType: Alert OPEN),
      (:MutationType)-[RiskType: Risk]->(:CriticalEffectType),
      (:HospitalType)-[ConnectedToType: ConnectedTo {distance INT32}]->(:HospitalType)
    }

Node type entries declare ``(TypeName: [SupertypeName &] Label [OPEN]
[{properties}])``; edge type entries declare
``(:SourceType)-[TypeName: Label [{properties}]]->(:TargetType)``.
Properties are ``name TYPE [OPTIONAL] [KEY]``.
"""

from __future__ import annotations

import re

from .errors import SchemaParseError
from .schema import PGSchema
from .types import PropertySpec, type_from_name

_HEADER = re.compile(
    r"CREATE\s+GRAPH\s+TYPE\s+(?P<name>\w+)\s+(?P<mode>STRICT|LOOSE)\s*\{(?P<body>.*)\}\s*$",
    re.IGNORECASE | re.DOTALL,
)
_EDGE_ENTRY = re.compile(
    r"^\(\s*:\s*(?P<source>\w+)\s*\)\s*-\s*\[\s*(?P<type>\w+)\s*:\s*(?P<label>\w+)\s*"
    r"(?P<props>\{.*\})?\s*\]\s*->\s*\(\s*:\s*(?P<target>\w+)\s*\)$",
    re.DOTALL,
)
_NODE_ENTRY = re.compile(
    r"^\(\s*(?P<type>\w+)\s*:\s*(?:(?P<super>\w+)\s*&\s*)?(?P<label>\w+)\s*"
    r"(?P<open>OPEN)?\s*(?P<props>\{.*\})?\s*\)$",
    re.DOTALL | re.IGNORECASE,
)


def parse_schema(text: str) -> PGSchema:
    """Parse a textual PG-Schema specification into a :class:`PGSchema`."""
    cleaned = _strip_comments(text).strip()
    header = _HEADER.search(cleaned)
    if header is None:
        raise SchemaParseError("expected 'CREATE GRAPH TYPE <name> STRICT|LOOSE { … }'")
    schema = PGSchema(
        name=header.group("name"),
        strict=header.group("mode").upper() == "STRICT",
    )
    body = header.group("body")
    for entry in _split_entries(body):
        if not entry:
            continue
        if ")-[" in entry.replace(" ", ""):
            _parse_edge_entry(entry, schema)
        else:
            _parse_node_entry(entry, schema)
    return schema


# ---------------------------------------------------------------------------


def _strip_comments(text: str) -> str:
    return re.sub(r"//[^\n]*", "", text)


def _split_entries(body: str) -> list[str]:
    """Split the graph-type body on top-level commas."""
    entries: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in body:
        if ch in "({[":
            depth += 1
        elif ch in ")}]":
            depth -= 1
        if ch == "," and depth == 0:
            entries.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        entries.append(tail)
    return entries


def _parse_node_entry(entry: str, schema: PGSchema) -> None:
    match = _NODE_ENTRY.match(entry.strip())
    if match is None:
        raise SchemaParseError(f"malformed node type entry: {entry.strip()!r}")
    supertype_name = match.group("super")
    supertype = None
    if supertype_name is not None:
        supertype = schema.node_type(supertype_name).name
    schema.add_node_type(
        label=match.group("label"),
        name=match.group("type"),
        supertype=supertype,
        open=match.group("open") is not None,
        properties=_parse_properties(match.group("props")),
    )


def _parse_edge_entry(entry: str, schema: PGSchema) -> None:
    match = _EDGE_ENTRY.match(entry.strip())
    if match is None:
        raise SchemaParseError(f"malformed edge type entry: {entry.strip()!r}")
    schema.add_edge_type(
        label=match.group("label"),
        name=match.group("type"),
        source=match.group("source"),
        target=match.group("target"),
        properties=_parse_properties(match.group("props")),
    )


def _parse_properties(props_text: str | None) -> list[PropertySpec]:
    if not props_text:
        return []
    inner = props_text.strip()
    if inner.startswith("{") and inner.endswith("}"):
        inner = inner[1:-1]
    specs: list[PropertySpec] = []
    for declaration in _split_entries(inner):
        if not declaration:
            continue
        tokens = declaration.split()
        if len(tokens) < 2:
            raise SchemaParseError(f"malformed property declaration: {declaration!r}")
        name = tokens[0]
        flags = {t.upper() for t in tokens[2:]}
        unknown = flags - {"OPTIONAL", "KEY"}
        if unknown:
            raise SchemaParseError(
                f"unknown property modifier(s) {sorted(unknown)} in {declaration!r}"
            )
        try:
            data_type = type_from_name(tokens[1])
        except ValueError as exc:
            raise SchemaParseError(str(exc)) from exc
        specs.append(
            PropertySpec(
                name=name,
                data_type=data_type,
                optional="OPTIONAL" in flags,
                is_key="KEY" in flags,
            )
        )
    return specs
