"""PG-Schema / PG-Keys substrate.

Build schemas programmatically with :class:`PGSchema` or parse the textual
dialect of the paper's Figure 5 with :func:`parse_schema`; validate graphs
with :func:`validate_graph` / :func:`assert_valid`.
"""

from .errors import SchemaDefinitionError, SchemaError, SchemaParseError, SchemaValidationError
from .keys import PGKey, check_keys
from .parser import parse_schema
from .schema import EdgeType, NodeType, PGSchema
from .types import (
    AnyType,
    ArrayType,
    BoolType,
    CharType,
    DataType,
    DateTimeType,
    DateType,
    FloatType,
    Int32Type,
    IntType,
    PropertySpec,
    StringType,
    type_from_name,
)
from .validation import Violation, ViolationKind, assert_valid, conforms, validate_graph

__all__ = [
    "AnyType",
    "ArrayType",
    "BoolType",
    "CharType",
    "DataType",
    "DateTimeType",
    "DateType",
    "EdgeType",
    "FloatType",
    "Int32Type",
    "IntType",
    "NodeType",
    "PGKey",
    "PGSchema",
    "PropertySpec",
    "SchemaDefinitionError",
    "SchemaError",
    "SchemaParseError",
    "SchemaValidationError",
    "StringType",
    "Violation",
    "ViolationKind",
    "assert_valid",
    "check_keys",
    "conforms",
    "parse_schema",
    "type_from_name",
    "validate_graph",
]
