"""An asyncio HTTP/JSON front door for a :class:`~repro.database.GraphDatabase`.

The server is deliberately dependency-free: a small hand-rolled HTTP/1.1
implementation on top of ``asyncio.start_server`` with keep-alive support.
The engine itself is synchronous, so every request body is executed on a
thread-pool executor; the database **must** be thread-safe (constructed
with ``thread_safe=True``) — its per-graph lock manager is what makes
concurrent requests sound.

Endpoints (all responses are JSON):

========  ============  =====================================================
method    path          body / behaviour
========  ============  =====================================================
GET       /health       liveness + catalog size
GET       /graphs       ``{"graphs": [...]}``
POST      /run          ``{"graph", "query", "parameters"}`` → columns, rows,
                        summary counters
POST      /explain      ``{"graph", "query"}`` → plan text
POST      /trigger      ``{"graph", "action": install|drop|stop|start, ...}``
========  ============  =====================================================

Graceful shutdown (:meth:`DatabaseServer.stop`) stops accepting, drains
in-flight requests, flushes any group-commit-buffered WAL records,
checkpoints durable graphs and closes every session.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..cypher.errors import CypherError
from ..cypher.result import ResultConsumedError
from ..database import DEFAULT_GRAPH_NAME, GraphDatabase
from ..graph.errors import GraphError
from ..triggers.errors import TriggerError
from ..tx.errors import LockTimeoutError, TransactionError
from .wire import record_to_wire

_MAX_REQUEST_BYTES = 4 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024


class _HttpError(Exception):
    """Internal: abort request processing with a specific status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class DatabaseServer:
    """Serve a thread-safe :class:`GraphDatabase` over HTTP/JSON."""

    def __init__(
        self,
        database: GraphDatabase | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 128,
        workers: int = 8,
    ) -> None:
        if database is None:
            database = GraphDatabase(thread_safe=True)
        if not database.thread_safe:
            raise ValueError(
                "DatabaseServer needs a thread-safe database: construct it "
                "with GraphDatabase(thread_safe=True) so concurrent requests "
                "serialise through the per-graph lock manager"
            )
        self.database = database
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-server"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._quiesced = asyncio.Event()
        self._quiesced.set()
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; resolves the real port."""
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: drain, flush, checkpoint, close."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every in-flight request runs to completion and sends its
        # response (connections re-check the stopping flag between
        # requests); idle keep-alive connections are parked in a read, so
        # once the last active request has drained we close their
        # transports — the pending read sees EOF and the handler exits on
        # its own (cancelling the tasks instead is noisy in asyncio).
        await self._quiesced.wait()
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, self._flush_and_close)
        self._executor.shutdown(wait=True)

    def _flush_and_close(self) -> None:
        if self.database.durable:
            self.database.checkpoint()
        self.database.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        if self._connections >= self.max_connections:
            await self._send(writer, 503, {"error": "server at connection limit"}, close=True)
            writer.close()
            return
        self._connections += 1
        self._conn_writers.add(writer)
        try:
            await self._request_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections -= 1
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _request_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._stopping:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # client went away between requests
            except asyncio.LimitOverrunError:
                await self._send(writer, 413, {"error": "headers too large"}, close=True)
                return
            if len(head) > _MAX_HEADER_BYTES:
                await self._send(writer, 413, {"error": "headers too large"}, close=True)
                return
            try:
                method, path, headers = self._parse_head(head)
            except ValueError as exc:
                await self._send(writer, 400, {"error": str(exc)}, close=True)
                return
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_REQUEST_BYTES:
                await self._send(writer, 413, {"error": "request body too large"}, close=True)
                return
            body = await reader.readexactly(length) if length else b""
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            self._begin_request()
            try:
                status, payload = await self._dispatch(method, path, body)
                await self._send(writer, status, payload, close=not keep_alive)
            finally:
                self._end_request()
            if not keep_alive:
                return

    def _begin_request(self) -> None:
        self._active_requests += 1
        self._quiesced.clear()

    def _end_request(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._quiesced.set()

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ValueError("undecodable request head") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise ValueError(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        try:
            if path == "/health" and method == "GET":
                return 200, {"status": "ok", "graphs": len(self.database.list_graphs())}
            if path == "/graphs" and method == "GET":
                return 200, {"graphs": self.database.list_graphs()}
            if path in ("/run", "/explain", "/trigger"):
                if method != "POST":
                    return 405, {"error": f"{path} requires POST"}
                request = self._parse_json(body)
                handler = {
                    "/run": self._handle_run,
                    "/explain": self._handle_explain,
                    "/trigger": self._handle_trigger,
                }[path]
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(self._executor, handler, request)
            return 404, {"error": f"no route for {method} {path}"}
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - last-resort response
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    def _parse_json(body: bytes) -> dict[str, Any]:
        if not body:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            request = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(request, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return request

    def _session(self, request: dict[str, Any]):
        graph = request.get("graph", DEFAULT_GRAPH_NAME)
        if not isinstance(graph, str):
            raise _HttpError(400, "'graph' must be a string")
        return self.database.graph(graph)

    # ------------------------------------------------------------------
    # handlers (run on the executor threads)
    # ------------------------------------------------------------------

    def _handle_run(self, request: dict[str, Any]) -> tuple[int, dict]:
        query = request.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _HttpError(400, "'query' must be a non-empty string")
        parameters = request.get("parameters")
        if parameters is not None and not isinstance(parameters, dict):
            raise _HttpError(400, "'parameters' must be an object")
        session = self._session(request)
        try:
            result = session.run(query, parameters)
            rows = [record_to_wire(record) for record in result.rows]
            summary = result.consume()
        except LockTimeoutError as exc:
            return 503, {"error": str(exc), "graph": exc.graph, "mode": exc.mode}
        except (CypherError, GraphError, TriggerError, ValueError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except (TransactionError, ResultConsumedError, RuntimeError) as exc:
            return 409, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, {
            "columns": result.keys(),
            "rows": rows,
            "summary": {
                "counters": summary.counters.as_dict(),
                "contains_updates": summary.counters.contains_updates(),
            },
        }

    def _handle_explain(self, request: dict[str, Any]) -> tuple[int, dict]:
        query = request.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _HttpError(400, "'query' must be a non-empty string")
        session = self._session(request)
        try:
            return 200, {"plan": session.explain(query)}
        except LockTimeoutError as exc:
            return 503, {"error": str(exc)}
        except (CypherError, ValueError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}

    def _handle_trigger(self, request: dict[str, Any]) -> tuple[int, dict]:
        action = request.get("action")
        session = self._session(request)
        try:
            if action == "install":
                source = request.get("trigger")
                if not isinstance(source, str) or not source.strip():
                    raise _HttpError(400, "'trigger' must be CREATE TRIGGER text")
                installed = session.create_trigger(source)
                return 200, {"installed": installed.name}
            name = request.get("name")
            if not isinstance(name, str) or not name:
                raise _HttpError(400, "'name' must be a trigger name")
            if action == "drop":
                session.drop_trigger(name)
                return 200, {"dropped": name}
            if action == "stop":
                session.stop_trigger(name)
                return 200, {"stopped": name}
            if action == "start":
                session.start_trigger(name)
                return 200, {"started": name}
            raise _HttpError(400, "'action' must be install, drop, stop or start")
        except LockTimeoutError as exc:
            return 503, {"error": str(exc)}
        except TriggerError as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}


class ServerHandle:
    """A :class:`DatabaseServer` running on a background event-loop thread.

    The synchronous façade tests and benchmarks want: start, read
    ``address``, and ``stop()`` when done (also usable as a context
    manager).
    """

    def __init__(self, server: DatabaseServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.server.stop())
        self._loop.close()

    def start(self) -> "ServerHandle":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()

    @property
    def address(self) -> str:
        return self.server.address

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_in_thread(
    database: GraphDatabase | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> ServerHandle:
    """Start a :class:`DatabaseServer` on a background thread and return its handle."""
    server = DatabaseServer(database, host=host, port=port, **kwargs)
    return ServerHandle(server).start()
