"""Command-line entry point: ``python -m repro.server``."""

from __future__ import annotations

import argparse
import asyncio
import contextlib

from ..database import GraphDatabase
from .app import DatabaseServer


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro graph database over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7688)
    parser.add_argument(
        "--path",
        default=None,
        help="database directory for durable graphs (in-memory when omitted)",
    )
    parser.add_argument(
        "--lock-timeout",
        type=float,
        default=30.0,
        help="seconds before a queued statement gives up with 503 (default 30)",
    )
    parser.add_argument("--max-connections", type=int, default=128)
    parser.add_argument("--workers", type=int, default=8)
    args = parser.parse_args(argv)

    database = GraphDatabase(
        path=args.path, thread_safe=True, lock_timeout=args.lock_timeout
    )
    server = DatabaseServer(
        database,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        workers=args.workers,
    )

    async def serve() -> None:
        await server.start()
        print(f"serving on {server.address} (Ctrl-C for graceful shutdown)")
        stopped = asyncio.Event()
        try:
            await stopped.wait()
        finally:
            await server.stop()

    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(serve())


if __name__ == "__main__":
    main()
