"""Wire encoding: engine values → JSON-safe payloads.

The HTTP server returns query records as JSON.  Property values already
have a canonical JSON form (see :mod:`repro.graph.serialization`, which the
WAL shares); this module adds the *entity* encodings — nodes, relationships
and paths never appear in storage records but routinely appear in RETURN
clauses.
"""

from __future__ import annotations

from typing import Any

from ..graph.model import Node, Relationship
from ..graph.serialization import encode_value
from ..paths import Path


def to_wire(value: Any) -> Any:
    """Encode one result value for the JSON response body."""
    if isinstance(value, Path):
        # Before the dict branch: Path is a Mapping, not a dict, but an
        # unguarded future isinstance(value, Mapping) must not shadow this.
        return {
            "$type": "path",
            "length": value.length,
            "nodes": [to_wire(node) for node in value.nodes],
            "relationships": [to_wire(rel) for rel in value.relationships],
        }
    if isinstance(value, Node):
        return {
            "$type": "node",
            "id": value.id,
            "labels": sorted(value.labels),
            "properties": {k: to_wire(v) for k, v in value.properties.items()},
        }
    if isinstance(value, Relationship):
        return {
            "$type": "relationship",
            "id": value.id,
            "type": value.type,
            "start": value.start,
            "end": value.end,
            "properties": {k: to_wire(v) for k, v in value.properties.items()},
        }
    if isinstance(value, dict):
        return {key: to_wire(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_wire(item) for item in value]
    try:
        return encode_value(value)
    except ValueError:
        # Aggregates can surface engine-internal values (e.g. frozensets);
        # degrade to their textual form rather than failing the response.
        return repr(value)


def record_to_wire(record: dict[str, Any]) -> dict[str, Any]:
    """Encode one result record (column → value) for the response body."""
    return {column: to_wire(value) for column, value in record.items()}
