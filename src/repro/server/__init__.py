"""HTTP/JSON serving layer for :class:`~repro.database.GraphDatabase`.

See :mod:`repro.server.app` for the protocol description.  Quick start::

    from repro.database import GraphDatabase
    from repro.server import run_in_thread

    handle = run_in_thread(GraphDatabase(thread_safe=True))
    print(handle.address)   # e.g. http://127.0.0.1:54321
    ...
    handle.stop()           # graceful: drains, flushes, checkpoints

Or from a shell: ``python -m repro.server --port 7688 --path ./data``.
"""

from .app import DatabaseServer, ServerHandle, run_in_thread
from .wire import record_to_wire, to_wire

__all__ = [
    "DatabaseServer",
    "ServerHandle",
    "run_in_thread",
    "record_to_wire",
    "to_wire",
]
