"""Path-query subsystem: variable-length expansion and reachability.

This package holds everything path-shaped that is not tied to one layer of
the query stack:

* :mod:`repro.paths.model` — the first-class :class:`Path` value bound by
  named path patterns and ``shortestPath``;
* :mod:`repro.paths.shortest` — deterministic single-source and
  bidirectional shortest-path searches (lexicographic relationship-id
  tie-break, so every plan computes the identical winner);
* :mod:`repro.paths.accelerator` — the :class:`ReachabilityIndex`, an
  XPath-accelerator-style pre/post-order interval encoding of
  hierarchy-shaped relationship types over the ordered property index,
  turning ``(a)-[:R*]->(b)`` into a range scan.

The executor (:mod:`repro.cypher.executor`) keeps its naive recursive
enumerator as the differential ground truth; everything here must produce
the *same rows in the same order*.
"""

from .accelerator import ReachabilityIndex, reachability_applicable
from .model import Path
from .shortest import bidirectional_shortest, single_source_shortest

__all__ = [
    "Path",
    "ReachabilityIndex",
    "bidirectional_shortest",
    "reachability_applicable",
    "single_source_shortest",
]
