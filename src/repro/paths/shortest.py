"""Deterministic shortest-path searches.

Cypher's ``shortestPath`` picks *one* path per endpoint pair.  To keep
every execution strategy differentially comparable (naive enumeration,
single-source BFS, bidirectional BFS), the engine pins the choice down:

* shortest means fewest relationships;
* among equal-length paths the winner is the one whose relationship-id
  tuple is lexicographically smallest.

Both searches below compute exactly that winner via a level-synchronous
dynamic program: the minimal-key path of length ``d+1`` to ``v`` is
``min over (u, rel)`` of ``best[u] + rel`` with ``u`` at distance ``d`` —
valid because every prefix (and, backward, every suffix) of a shortest
path is itself a shortest path, and for fixed-length tuples the
lexicographic minimum of a concatenation decomposes per segment.

A minimal-length walk can never repeat a relationship (dropping the cycle
would shorten it), so Cypher's relationship-uniqueness comes for free and
these searches agree with the naive rel-unique path enumerator.

``expand`` callbacks yield ``(relationship, neighbour_id)`` pairs; the
executor closes its direction/type/property filtering over them, which is
what pushes pattern predicates into the frontier.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

Expander = Callable[[int], Iterable[tuple]]


def _key(path: tuple) -> tuple[int, ...]:
    return tuple(rel.id for rel in path)


def single_source_shortest(
    start_id: int, expand: Expander, max_depth: int
) -> dict[int, tuple]:
    """Minimal path (as a relationship tuple) from ``start_id`` to every node.

    Level-synchronous BFS with a per-node minimum-key dynamic program.
    The start node itself is excluded (its zero-length path is the
    caller's ``min_hops == 0`` special case), as is any longer cycle back
    to it — matching ``shortestPath``'s distinct-endpoints semantics.
    """
    best: dict[int, tuple] = {}
    dist: dict[int, int] = {start_id: 0}
    frontier: dict[int, tuple] = {start_id: ()}
    depth = 0
    while frontier and depth < max_depth:
        depth += 1
        next_frontier: dict[int, tuple] = {}
        for node_id, path in frontier.items():
            for rel, other_id in expand(node_id):
                if dist.get(other_id, depth) < depth:
                    continue  # reached strictly earlier: not on a shortest path
                candidate = path + (rel,)
                current = next_frontier.get(other_id)
                if current is None or _key(candidate) < _key(current):
                    next_frontier[other_id] = candidate
        for node_id, path in next_frontier.items():
            dist[node_id] = depth
            best[node_id] = path
        frontier = next_frontier
    return best


def bidirectional_shortest(
    start_id: int,
    end_id: int,
    expand_forward: Expander,
    expand_backward: Expander,
    max_depth: int,
) -> Optional[tuple]:
    """Minimal path between two bound endpoints, or ``None``.

    Alternating level expansion from both ends (smaller frontier first).
    Once frontier depths sum to the best meeting total — or to
    ``max_depth`` — every shortest path must contain a node discovered
    from *both* sides, so the answer is the minimum over meeting nodes of
    ``prefix + suffix``; per-side minimality makes that concatenation the
    global lexicographic minimum.
    """
    if start_id == end_id:
        raise ValueError("bidirectional search requires distinct endpoints")
    # Forward prefixes are stored in traversal order, backward suffixes in
    # *forward* order too (each backward hop prepends its relationship), so
    # meeting-point concatenation is direct.
    prefix: dict[int, tuple] = {start_id: ()}
    suffix: dict[int, tuple] = {end_id: ()}
    dist_f: dict[int, int] = {start_id: 0}
    dist_b: dict[int, int] = {end_id: 0}
    frontier_f: dict[int, tuple] = dict(prefix)
    frontier_b: dict[int, tuple] = dict(suffix)
    depth_f = depth_b = 0
    best_total: Optional[int] = None

    while frontier_f and frontier_b:
        bound = max_depth if best_total is None else min(best_total, max_depth)
        if depth_f + depth_b >= bound:
            break
        if len(frontier_f) <= len(frontier_b):
            depth_f += 1
            frontier_f = _advance(frontier_f, expand_forward, dist_f, depth_f, forward=True)
            for node_id, path in frontier_f.items():
                prefix[node_id] = path
                if node_id in dist_b:
                    total = depth_f + dist_b[node_id]
                    if best_total is None or total < best_total:
                        best_total = total
        else:
            depth_b += 1
            frontier_b = _advance(frontier_b, expand_backward, dist_b, depth_b, forward=False)
            for node_id, path in frontier_b.items():
                suffix[node_id] = path
                if node_id in dist_f:
                    total = dist_f[node_id] + depth_b
                    if best_total is None or total < best_total:
                        best_total = total

    if best_total is None or best_total > max_depth:
        return None
    winner: Optional[tuple] = None
    for node_id, forward_path in prefix.items():
        if dist_b.get(node_id) is None:
            continue
        if dist_f[node_id] + dist_b[node_id] != best_total:
            continue
        candidate = forward_path + suffix[node_id]
        if winner is None or _key(candidate) < _key(winner):
            winner = candidate
    return winner


def _advance(
    frontier: dict[int, tuple],
    expand: Expander,
    dist: dict[int, int],
    depth: int,
    forward: bool,
) -> dict[int, tuple]:
    """One BFS level: the minimal-key path to every newly reached node."""
    next_frontier: dict[int, tuple] = {}
    for node_id, path in frontier.items():
        for rel, other_id in expand(node_id):
            if dist.get(other_id, depth) < depth:
                continue
            candidate = path + (rel,) if forward else (rel,) + path
            current = next_frontier.get(other_id)
            if current is None or _key(candidate) < _key(current):
                next_frontier[other_id] = candidate
    for node_id in next_frontier:
        dist[node_id] = depth
    return next_frontier
