"""The first-class ``Path`` value.

A named path pattern (``p = (a)-[:R*]->(b)``) and ``shortestPath`` bind a
:class:`Path`: the node snapshots visited, in traversal order, and the
relationships traversed between them (``len(nodes) == len(relationships)
+ 1``; a zero-length path is one node and no relationships).

``Path`` subclasses :class:`collections.abc.Mapping` with the two keys
``"nodes"`` and ``"relationships"`` — the shape earlier releases bound as a
plain dict — so existing expression dispatch (property access ``p.nodes``,
subscripting ``p["relationships"]``) keeps working unchanged while
``length(p)``/``nodes(p)``/``relationships(p)`` and the wire encoder can
recognise paths as their own type.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator, Sequence

from ..graph.model import Node, Relationship


class Path(Mapping):
    """An immutable traversal result: nodes and the relationships between them."""

    __slots__ = ("_nodes", "_relationships")

    def __init__(
        self, nodes: Sequence[Node], relationships: Sequence[Relationship]
    ) -> None:
        nodes = tuple(nodes)
        relationships = tuple(relationships)
        if len(nodes) != len(relationships) + 1:
            raise ValueError(
                f"a path over {len(relationships)} relationships needs "
                f"{len(relationships) + 1} nodes, got {len(nodes)}"
            )
        object.__setattr__(self, "_nodes", nodes)
        object.__setattr__(self, "_relationships", relationships)

    # -- path surface ---------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """The node snapshots along the path, start first."""
        return self._nodes

    @property
    def relationships(self) -> tuple[Relationship, ...]:
        """The relationships traversed, in traversal order."""
        return self._relationships

    @property
    def start_node(self) -> Node:
        return self._nodes[0]

    @property
    def end_node(self) -> Node:
        return self._nodes[-1]

    @property
    def length(self) -> int:
        """Number of relationships (what Cypher's ``length(p)`` returns)."""
        return len(self._relationships)

    # -- Mapping protocol (dict-shaped view, for expression dispatch) ---

    def __getitem__(self, key: str) -> list:
        if key == "nodes":
            return list(self._nodes)
        if key == "relationships":
            return list(self._relationships)
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        yield "nodes"
        yield "relationships"

    def __len__(self) -> int:
        return 2

    # -- identity -------------------------------------------------------

    def _key(self) -> tuple:
        return (
            tuple(node.id for node in self._nodes),
            tuple(rel.id for rel in self._relationships),
        )

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Path):
            return self._key() == other._key()
        if isinstance(other, Mapping):
            # Dict-shaped path values (the pre-Path representation) compare
            # by the same node/relationship identity.
            try:
                nodes = other["nodes"]
                rels = other["relationships"]
            except (KeyError, TypeError):
                return NotImplemented
            if len(other) != 2:
                return False
            return self._key() == (
                tuple(getattr(n, "id", None) for n in nodes),
                tuple(getattr(r, "id", None) for r in rels),
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("path",) + self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hops = "".join(
            f"-[{rel.id}:{rel.type}]-({node.id})"
            for rel, node in zip(self._relationships, self._nodes[1:])
        )
        return f"Path(({self._nodes[0].id}){hops})"
