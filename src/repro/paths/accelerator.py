"""Reachability acceleration via pre/post-order interval encoding.

The XPath-accelerator idea, transplanted to property graphs: when the
subgraph formed by one relationship type is *forest-shaped* (directed, no
node with two incoming edges of the type, no parallel edges, no cycles —
org charts, variant lineages, dependency trees), number every node with a
DFS preorder ``pre`` and the largest preorder in its subtree ``post``.
Then

    v is a descendant of u  ⇔  pre(u) < pre(v) <= post(u)

so ``(u)-[:R*]->(v)`` stops being a frontier expansion and becomes one
interval-containment range scan over the engine's ordered property index
(:class:`~repro.graph.indexes.OrderedPropertyIndex`), plus an O(depth)
filter for hop bounds via the stored depths.  Reachability between two
*bound* nodes is two dict probes and a comparison.

Determinism: the DFS visits children in relationship-id order — the exact
candidate order of the executor's naive enumerator — and a forest has
exactly one path to each descendant, so an ascending-``pre`` interval scan
emits targets in precisely the order (and multiplicity) the naive DFS
would.  The accelerator is therefore transparent: same rows, same order.

Shapes the encoding cannot express (cycles, diamonds, parallel edges,
self-loops) make the index *decline*: ``ensure()`` reports unusable and
the executor falls back to DFS expansion.  Data mutations mark the index
dirty (see ``PropertyGraph.create_relationship`` /
``delete_relationship``); the next query triggers a lazy rebuild.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graph.indexes import OrderedPropertyIndex

#: The pseudo-property the interval encoding is stored under.
_PRE = "pre"


class _Decline(Exception):
    """Internal: the relationship type's subgraph is not forest-shaped."""


class ReachabilityIndex:
    """Interval-encoded reachability over one relationship type."""

    def __init__(self, rel_type: str) -> None:
        self.rel_type = rel_type
        #: Number of (re)builds performed — observability for tests/benchmarks.
        self.builds = 0
        #: Route counters — how often each expansion strategy actually ran.
        self.interval_scans = 0
        self.dfs_walks = 0
        self._dirty = True
        self._declined: Optional[str] = None
        self._pre: dict[int, int] = {}
        self._post: dict[int, int] = {}
        self._depth: dict[int, int] = {}
        #: subtree height below each node (0 for leaves)
        self._height: dict[int, int] = {}
        #: child node ids in relationship-id (= preorder) order
        self._children: dict[int, list[int]] = {}
        self._roots: list[int] = []
        #: child node id -> (relationship id, parent node id)
        self._parent: dict[int, tuple[int, int]] = {}
        self._order = OrderedPropertyIndex()
        self._order.create(rel_type, _PRE)

    # -- lifecycle ------------------------------------------------------

    @property
    def dirty(self) -> bool:
        """True when a data mutation invalidated the current encoding."""
        return self._dirty

    @property
    def declined(self) -> Optional[str]:
        """Why the last build refused to encode (``None`` when usable)."""
        return self._declined

    def invalidate(self) -> None:
        """Mark the encoding stale; the next :meth:`ensure` rebuilds it."""
        self._dirty = True

    def ensure(self, graph) -> bool:
        """Rebuild if stale; return True when the index can answer queries."""
        if self._dirty:
            self._rebuild(graph)
        return self._declined is None

    def entry_count(self) -> int:
        """Number of encoded nodes (0 when declined or empty)."""
        return len(self._pre)

    # -- queries --------------------------------------------------------
    #
    # All three assume a successful ``ensure()``.  ``min_hops``/``max_hops``
    # are inclusive hop bounds; a node without any relationship of the type
    # is absent from the encoding but still matches itself at zero hops.

    def descendants(self, node_id: int, min_hops: int, max_hops: int) -> list[int]:
        """Nodes reachable from ``node_id``, in naive-DFS (preorder) order.

        Cost-routed: a narrow hop window over a deep subtree walks a
        depth-bounded DFS over the stored child lists instead of scanning
        (and depth-filtering) the whole pre/post interval.  Both routes
        emit preorder with the same depth filter, so the rows and their
        order are identical by construction — only the work differs.
        """
        if max_hops < min_hops:
            return []
        pre = self._pre.get(node_id)
        if pre is None:
            return [node_id] if min_hops <= 0 else []
        if self.prefer_dfs(node_id, min_hops, max_hops):
            self.dfs_walks += 1
            return self._bounded_dfs(node_id, min_hops, max_hops)
        self.interval_scans += 1
        hit = self._order.range_lookup(
            self.rel_type,
            _PRE,
            lower=pre,
            upper=self._post[node_id],
            include_lower=min_hops <= 0,
            include_upper=True,
        )
        if hit is None:  # pragma: no cover - the bucket only ever holds ints
            return []
        base = self._depth[node_id]
        low, high = base + max(min_hops, 0), base + max_hops
        return [
            candidate
            for candidate in sorted(hit, key=self._pre.__getitem__)
            if low <= self._depth[candidate] <= high
        ]

    def subtree_stats(self, node_id: int) -> tuple[int, int]:
        """(node count, height) of the encoded subtree under ``node_id``."""
        pre = self._pre.get(node_id)
        if pre is None:
            return 1, 0
        return self._post[node_id] - pre + 1, self._height.get(node_id, 0)

    def prefer_dfs(self, node_id: int, min_hops: int, max_hops: int) -> bool:
        """Would a depth-bounded DFS beat the interval scan for this start?

        The interval scan always touches the *whole* subtree (``size``
        nodes) before the depth filter runs.  A DFS prunes at depth
        ``max_hops``, visiting roughly ``sum(b**i)`` nodes for effective
        branching ``b = size ** (1/height)``.  DFS per-node work is
        heavier (dict probes per child vs. one sorted-bucket slice), so
        it only wins when the pruned frontier is well under half the
        subtree — i.e. narrow ``*n..m`` windows over deep trees.
        """
        size, height = self.subtree_stats(node_id)
        if max_hops >= height or size <= 8:
            return False  # DFS would visit (nearly) everything anyway
        return self._dfs_cost(size, height, max_hops) * 2.0 < size

    @staticmethod
    def _dfs_cost(size: int, height: int, max_hops: int) -> float:
        branching = size ** (1.0 / height) if height > 0 else 1.0
        cost, layer = 1.0, 1.0
        for _ in range(max(max_hops, 0)):
            layer *= branching
            cost += layer
            if cost >= size:
                break
        return min(cost, float(size))

    def route_hint(self, min_hops: int, max_hops: int) -> tuple[str, str]:
        """Plan-time (route, reason) for EXPLAIN — the deepest root decides.

        Advisory only: :meth:`descendants` re-decides per start node at
        run time.  The deepest root is the representative because that is
        where the interval scan's full-subtree cost hurts most.
        """
        if self._declined is not None or not self._roots:
            return "interval", "no encoded subtrees"
        root = max(self._roots, key=lambda r: self._height.get(r, 0))
        size, height = self.subtree_stats(root)
        if self.prefer_dfs(root, min_hops, max_hops):
            cost = int(self._dfs_cost(size, height, max_hops))
            return (
                "dfs",
                f"hop window ..{max_hops} shallow vs height {height}: "
                f"~{cost} of {size} nodes",
            )
        return (
            "interval",
            f"hop window ..{max_hops} covers height-{height} subtree "
            f"({size} nodes)",
        )

    def _bounded_dfs(self, node_id: int, min_hops: int, max_hops: int) -> list[int]:
        result = [node_id] if min_hops <= 0 else []
        # Explicit stack of (node, depth); children pushed in reverse so
        # they pop in relationship-id order — exactly preorder.
        stack = [(child, 1) for child in reversed(self._children.get(node_id, ()))]
        while stack:
            current, depth = stack.pop()
            if depth >= min_hops:
                result.append(current)
            if depth < max_hops:
                stack.extend(
                    (child, depth + 1)
                    for child in reversed(self._children.get(current, ()))
                )
        return result

    def ancestors(self, node_id: int, min_hops: int, max_hops: int) -> list[int]:
        """The parent chain above ``node_id``, nearest first (naive order)."""
        if max_hops < min_hops:
            return []
        result: list[int] = []
        if min_hops <= 0:
            if node_id not in self._pre and node_id not in self._parent:
                return [node_id]
            result.append(node_id)
        current, hops = node_id, 0
        while hops < max_hops:
            link = self._parent.get(current)
            if link is None:
                break
            hops += 1
            current = link[1]
            if hops >= min_hops:
                result.append(current)
        return result

    def reaches(
        self, ancestor_id: int, descendant_id: int, min_hops: int, max_hops: int
    ) -> bool:
        """Interval containment: is there a path within the hop bounds?"""
        if max_hops < min_hops:
            return False
        if ancestor_id == descendant_id:
            return min_hops <= 0
        pre_a = self._pre.get(ancestor_id)
        pre_d = self._pre.get(descendant_id)
        if pre_a is None or pre_d is None:
            return False
        if not (pre_a < pre_d <= self._post[ancestor_id]):
            return False
        hops = self._depth[descendant_id] - self._depth[ancestor_id]
        return max(min_hops, 1) <= hops <= max_hops

    # -- build ----------------------------------------------------------

    def _rebuild(self, graph) -> None:
        self.builds += 1
        self._dirty = False
        self._declined = None
        self._reset_encoding()
        try:
            self._encode(graph.relationships_with_type(self.rel_type))
        except _Decline as decline:
            self._declined = str(decline)
            self._reset_encoding()

    def _reset_encoding(self) -> None:
        self._pre, self._post, self._depth, self._parent = {}, {}, {}, {}
        self._height, self._children, self._roots = {}, {}, []
        self._order = OrderedPropertyIndex()
        self._order.create(self.rel_type, _PRE)

    def _encode(self, relationships: Iterable) -> None:
        children: dict[int, list[tuple[int, int]]] = {}
        nodes: set[int] = set()
        parent: dict[int, tuple[int, int]] = {}
        for rel in relationships:  # arrives sorted by relationship id
            if rel.start == rel.end:
                raise _Decline(f"self-loop at node {rel.start}")
            nodes.add(rel.start)
            nodes.add(rel.end)
            if rel.end in parent:
                raise _Decline(
                    f"node {rel.end} has multiple incoming :{self.rel_type} "
                    "relationships (not a forest)"
                )
            parent[rel.end] = (rel.id, rel.start)
            children.setdefault(rel.start, []).append((rel.id, rel.end))
        counter = 0
        for root in sorted(node for node in nodes if node not in parent):
            # Iterative DFS, children in relationship-id order (already
            # sorted by construction): pre on entry, post = max pre in the
            # subtree on exit.
            counter += 1
            self._pre[root] = counter
            self._depth[root] = 0
            stack: list[tuple[int, Iterable]] = [(root, iter(children.get(root, ())))]
            while stack:
                node_id, child_iter = stack[-1]
                advanced = False
                for _, child in child_iter:
                    counter += 1
                    self._pre[child] = counter
                    self._depth[child] = self._depth[node_id] + 1
                    stack.append((child, iter(children.get(child, ()))))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    self._post[node_id] = counter
                    self._height[node_id] = 1 + max(
                        (self._height[c] for _, c in children.get(node_id, ())),
                        default=-1,
                    )
        if len(self._pre) != len(nodes):
            raise _Decline(
                f"cycle among :{self.rel_type} relationships "
                f"({len(nodes) - len(self._pre)} nodes unreachable from any root)"
            )
        self._parent = parent
        self._children = {
            node: [child for _, child in links] for node, links in children.items()
        }
        self._roots = sorted(node for node in nodes if node not in parent)
        for node_id, pre in self._pre.items():
            self._order.add(self.rel_type, _PRE, pre, node_id)


def reachability_applicable(
    graph, pattern, rel_pattern, elements, index, virtual_labels=()
) -> Optional[str]:
    """The relationship type a declared accelerator could serve, or ``None``.

    Shared by the planner (to annotate ``VarLengthExpand`` with its mode)
    and the executor (to pick the route at run time), so plan and
    execution agree by construction.  The expansion must be exactly the
    shape the interval scan reproduces:

    * directed, a single concrete (non-virtual) relationship type, no
      relationship property map (the encoding ignores properties);
    * no relationship variable and no named path — the scan yields
      *targets*, not the hop lists a binding would need;
    * the final segment of the pattern, with no earlier segment able to
      consume relationships of the same type (relationship uniqueness
      would otherwise have to subtract used relationships from the scan).

    Everything here is advisory: the executor still re-verifies labels,
    bound variables and ``ensure()`` before trusting the index.
    """
    if getattr(pattern, "shortest", None) is not None:
        return None
    if pattern.variable is not None or rel_pattern.variable is not None:
        return None
    if rel_pattern.properties or rel_pattern.direction == "both":
        return None
    if len(rel_pattern.types) != 1:
        return None
    if index + 2 < len(elements):
        return None
    rel_type = rel_pattern.types[0]
    if rel_type in virtual_labels:
        return None
    for element in elements:
        if element is rel_pattern or getattr(element, "types", None) is None:
            continue
        if not element.types or rel_type in element.types:
            return None
    lookup = getattr(graph, "reachability_index", None)
    if lookup is None or lookup(rel_type) is None:
        return None
    return rel_type
