"""Emulation of Neo4j APOC triggers (Section 5.1 of the paper).

The emulator reproduces the *observable* behaviour that the paper relies
on when discussing the translation of PG-Triggers into APOC triggers:

* the ``apoc.trigger.install / drop / dropAll / stop / start / list``
  management procedures;
* the four phases — ``before`` (right before commit), ``rollback``,
  ``after`` and ``afterAsync`` (after commit; ``afterAsync`` is the advised
  one and, in this in-process emulation, behaves like ``after``);
* the transition metadata of Table 2 exposed to the trigger statement as
  query parameters (``$createdNodes``, ``$assignedNodeProperties``, …);
* the ``apoc.do.when`` conditional-execution procedure used by the
  syntax-directed translation of Figure 2;
* APOC's documented limitations: triggers do **not** cascade (changes made
  by a trigger never re-activate triggers), and ``before``-phase triggers
  all run once, in alphabetical order, regardless of what they monitor.

The emulation runs on the same property graph substrate as the PG-Trigger
engine, which is what allows the benchmark harness to compare the two
routes on identical workloads.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..cypher.executor import ProcedureInvocation, QueryExecutor
from ..cypher.result import QueryResult
from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .errors import ApocTriggerError

VALID_PHASES = ("before", "rollback", "after", "afterAsync")


@dataclass
class ApocTrigger:
    """One installed APOC trigger."""

    database: str
    name: str
    statement: str
    phase: str = "afterAsync"
    paused: bool = False
    installed_at: int = 0
    executions: int = 0

    def as_row(self) -> dict[str, Any]:
        """Row shape returned by ``apoc.trigger.list``."""
        return {
            "name": self.name,
            "query": self.statement,
            "selector": {"phase": self.phase},
            "paused": self.paused,
            "installed": True,
        }


def apoc_do_when(args, invocation: ProcedureInvocation):
    """``CALL apoc.do.when(condition, ifQuery, elseQuery, params)``."""
    if len(args) < 2:
        raise ApocTriggerError("apoc.do.when requires at least (condition, ifQuery)")
    condition = bool(args[0]) if args[0] is not None else False
    if_query = args[1] or ""
    else_query = args[2] if len(args) > 2 else ""
    params = args[3] if len(args) > 3 else {}
    query = if_query if condition else else_query
    if not isinstance(params, Mapping):
        raise ApocTriggerError("apoc.do.when params must be a map")
    if query:
        result = invocation.run_subquery(query, parameters=dict(params))
        value = result.rows[0] if result.rows else {}
    else:
        value = {}
    return [{"value": value}]


def apoc_do_case(args, invocation: ProcedureInvocation):
    """``CALL apoc.do.case([cond1, query1, cond2, query2, …], elseQuery, params)``."""
    if not args:
        raise ApocTriggerError("apoc.do.case requires a conditionals list")
    conditionals = args[0] or []
    else_query = args[1] if len(args) > 1 else ""
    params = args[2] if len(args) > 2 else {}
    chosen = else_query
    for index in range(0, len(conditionals) - 1, 2):
        if bool(conditionals[index]):
            chosen = conditionals[index + 1]
            break
    if chosen:
        result = invocation.run_subquery(chosen, parameters=dict(params))
        value = result.rows[0] if result.rows else {}
    else:
        value = {}
    return [{"value": value}]


class ApocEmulator:
    """A Neo4j-with-APOC stand-in: query execution plus APOC trigger semantics."""

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        database: str = "neo4j",
        clock: Callable[[], _dt.datetime] | None = None,
    ) -> None:
        self.graph = graph or PropertyGraph()
        self.database = database
        self.clock = clock or _dt.datetime.now
        self.manager = TransactionManager(self.graph)
        self._triggers: dict[str, ApocTrigger] = {}
        self._sequence = 0
        #: Audit log of (trigger name, phase) executions.
        self.execution_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # procedure registry (for queries executed through this emulator)
    # ------------------------------------------------------------------

    def procedures(self) -> dict[str, Any]:
        """Procedures available to queries run through the emulator."""
        return {
            "apoc.do.when": apoc_do_when,
            "apoc.do.case": apoc_do_case,
            "apoc.trigger.install": self._proc_install,
            "apoc.trigger.drop": self._proc_drop,
            "apoc.trigger.dropAll": self._proc_drop_all,
            "apoc.trigger.stop": self._proc_stop,
            "apoc.trigger.start": self._proc_start,
            "apoc.trigger.list": self._proc_list,
        }

    # ------------------------------------------------------------------
    # trigger management (programmatic API)
    # ------------------------------------------------------------------

    def install(
        self,
        database: str,
        name: str,
        statement: str,
        selector: Mapping[str, Any] | None = None,
        config: Mapping[str, Any] | None = None,
    ) -> ApocTrigger:
        """``apoc.trigger.install`` — register a trigger statement."""
        del config  # accepted for signature compatibility; not relevant here
        phase = (selector or {}).get("phase", "afterAsync")
        if phase not in VALID_PHASES:
            raise ApocTriggerError(
                f"invalid phase {phase!r}; expected one of {', '.join(VALID_PHASES)}"
            )
        self._sequence += 1
        trigger = ApocTrigger(
            database=database,
            name=name,
            statement=statement,
            phase=phase,
            installed_at=self._sequence,
        )
        self._triggers[name] = trigger
        return trigger

    def drop(self, database: str, name: str) -> ApocTrigger:
        """``apoc.trigger.drop``."""
        if name not in self._triggers:
            raise ApocTriggerError(f"no APOC trigger named {name!r}")
        del database
        return self._triggers.pop(name)

    def drop_all(self, database: str | None = None) -> int:
        """``apoc.trigger.dropAll``."""
        del database
        count = len(self._triggers)
        self._triggers.clear()
        return count

    def stop(self, database: str, name: str) -> None:
        """``apoc.trigger.stop`` — pause a trigger."""
        del database
        self._require(name).paused = True

    def start(self, database: str, name: str) -> None:
        """``apoc.trigger.start`` — resume a trigger."""
        del database
        self._require(name).paused = False

    def list_triggers(self) -> list[ApocTrigger]:
        """All installed triggers, in installation order."""
        return sorted(self._triggers.values(), key=lambda t: t.installed_at)

    def _require(self, name: str) -> ApocTrigger:
        if name not in self._triggers:
            raise ApocTriggerError(f"no APOC trigger named {name!r}")
        return self._triggers[name]

    # -- CALL-able wrappers ---------------------------------------------

    def _proc_install(self, args, invocation):
        database, name, statement = args[0], args[1], args[2]
        selector = args[3] if len(args) > 3 else {}
        self.install(database, name, statement, selector)
        return [{"name": name, "installed": True}]

    def _proc_drop(self, args, invocation):
        self.drop(args[0], args[1])
        return [{"name": args[1], "installed": False}]

    def _proc_drop_all(self, args, invocation):
        return [{"dropped": self.drop_all(args[0] if args else None)}]

    def _proc_stop(self, args, invocation):
        self.stop(args[0], args[1])
        return [{"name": args[1], "paused": True}]

    def _proc_start(self, args, invocation):
        self.start(args[0], args[1])
        return [{"name": args[1], "paused": False}]

    def _proc_list(self, args, invocation):
        return [trigger.as_row() for trigger in self.list_triggers()]

    # ------------------------------------------------------------------
    # query execution with trigger processing
    # ------------------------------------------------------------------

    def run(self, query: str, parameters: Mapping[str, Any] | None = None) -> QueryResult:
        """Execute a statement in auto-commit mode, firing APOC triggers."""
        tx = self.manager.begin()
        try:
            executor = QueryExecutor(
                self.graph,
                transaction=tx,
                parameters=parameters,
                clock=self.clock,
                procedures=self.procedures(),
            )
            result = executor.execute(query)
            tx.end_statement()
            # 'before' phase: right before commit, inside the same transaction,
            # all triggers once, in alphabetical order (the APOC limitation the
            # paper points out).
            delta = tx.transaction_delta
            if not delta.is_empty():
                self._run_phase(("before",), delta, tx, alphabetical=True)
            committed = self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
                self._run_rollback_phase(tx)
            raise
        if not committed.is_empty():
            self._run_after_phases(committed)
        return result

    # ------------------------------------------------------------------
    # phase execution
    # ------------------------------------------------------------------

    def _active_triggers(self, phases: tuple[str, ...], alphabetical: bool) -> list[ApocTrigger]:
        selected = [
            t for t in self._triggers.values() if not t.paused and t.phase in phases
        ]
        if alphabetical:
            return sorted(selected, key=lambda t: t.name)
        return sorted(selected, key=lambda t: t.installed_at)

    def _run_phase(
        self,
        phases: tuple[str, ...],
        delta: GraphDelta,
        tx: Transaction,
        alphabetical: bool,
    ) -> None:
        parameters = transition_parameters(delta)
        for trigger in self._active_triggers(phases, alphabetical):
            executor = QueryExecutor(
                self.graph,
                transaction=tx,
                parameters=parameters,
                clock=self.clock,
                procedures=self.procedures(),
            )
            executor.execute(trigger.statement)
            trigger.executions += 1
            self.execution_log.append((trigger.name, trigger.phase))
            # APOC triggers do not cascade: whatever the trigger changed is
            # deliberately not re-examined.
            tx.end_statement()

    def _run_after_phases(self, committed: GraphDelta) -> None:
        triggers = self._active_triggers(("after", "afterAsync"), alphabetical=False)
        if not triggers:
            return
        # All after/afterAsync triggers run within a single new transaction.
        tx = self.manager.begin(metadata={"source": "apoc-trigger"})
        try:
            self._run_phase(("after", "afterAsync"), committed, tx, alphabetical=False)
            self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise

    def _run_rollback_phase(self, failed_tx: Transaction) -> None:
        triggers = self._active_triggers(("rollback",), alphabetical=False)
        if not triggers:
            return
        tx = self.manager.begin(metadata={"source": "apoc-trigger-rollback"})
        try:
            self._run_phase(("rollback",), GraphDelta(), tx, alphabetical=False)
            self.manager.commit(tx)
        except Exception:  # pragma: no cover - defensive
            if tx.is_active:
                self.manager.rollback(tx)
            raise


# ---------------------------------------------------------------------------
# Table 2: transition metadata
# ---------------------------------------------------------------------------


def transition_parameters(delta: GraphDelta) -> dict[str, Any]:
    """Build the APOC transition metadata of Table 2 from a graph delta.

    Shapes follow the APOC documentation: created/deleted items are plain
    lists; label changes are maps ``label -> [nodes]``; property changes are
    maps ``property -> [{node|relationship, key, old, new}]``.
    """
    assigned_labels: dict[str, list] = {}
    for assignment in delta.assigned_labels:
        assigned_labels.setdefault(assignment.label, []).append(assignment.node)
    removed_labels: dict[str, list] = {}
    for removal in delta.removed_labels:
        removed_labels.setdefault(removal.label, []).append(removal.node)

    assigned_node_properties: dict[str, list] = {}
    assigned_rel_properties: dict[str, list] = {}
    for change in delta.assigned_properties:
        record = {"node": change.item, "key": change.key, "old": change.old, "new": change.new}
        if change.is_node:
            assigned_node_properties.setdefault(change.key, []).append(record)
        else:
            record["relationship"] = record.pop("node")
            assigned_rel_properties.setdefault(change.key, []).append(record)

    removed_node_properties: dict[str, list] = {}
    removed_rel_properties: dict[str, list] = {}
    for change in delta.removed_properties:
        record = {"node": change.item, "key": change.key, "old": change.old}
        if change.is_node:
            removed_node_properties.setdefault(change.key, []).append(record)
        else:
            record["relationship"] = record.pop("node")
            removed_rel_properties.setdefault(change.key, []).append(record)

    return {
        "createdNodes": list(delta.created_nodes),
        "createdRelationships": list(delta.created_relationships),
        "deletedNodes": list(delta.deleted_nodes),
        "deletedRelationships": list(delta.deleted_relationships),
        "assignedLabels": assigned_labels,
        "removedLabels": removed_labels,
        "assignedNodeProperties": assigned_node_properties,
        "assignedRelProperties": assigned_rel_properties,
        "removedNodeProperties": removed_node_properties,
        "removedRelProperties": removed_rel_properties,
    }


#: The rows of the paper's Table 2 (name and description of each utility).
TABLE2_ROWS: tuple[tuple[str, str], ...] = (
    ("createdNodes", "list of created nodes"),
    ("createdRels", "list of created relationships"),
    ("deletedNodes", "list of deleted nodes"),
    ("deletedRels", "list of deleted relationships"),
    ("assignedLabels", "set of new labels for an item"),
    ("removedLabels", "set of removed labels from an item"),
    ("assignedNodeProperties",
     "quadruple representing <target node, property name, old value, new value>"),
    ("assignedRelProperties",
     "quadruple representing <target rel, property name, old value, new value>"),
    ("removedNodeProperties", "triple representing <target node, property name, old value>"),
    ("removedRelProperties", "triple representing <target rel, property name, old value>"),
)
