"""Exception hierarchy for the compatibility (APOC / Memgraph) layers."""

from __future__ import annotations


class CompatError(Exception):
    """Base class for compatibility-layer errors."""


class ApocTriggerError(CompatError):
    """Raised by the APOC trigger emulation (unknown trigger, bad phase, …)."""


class MemgraphTriggerError(CompatError):
    """Raised by the Memgraph trigger emulation."""


class TranslationError(CompatError):
    """Raised when a PG-Trigger cannot be translated to the target dialect."""
