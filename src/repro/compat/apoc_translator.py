"""Syntax-directed translation of PG-Triggers into Neo4j APOC triggers.

This module reproduces the translation scheme of the paper's Figure 2 and
Table 3.  Given a :class:`~repro.triggers.ast.TriggerDefinition`, it emits
the corresponding ``CALL apoc.trigger.install(...)`` statement:

* the monitored event picks the UNWIND-able transition metadata parameter
  (Table 2 / Table 3): ``$createdNodes`` for node creation,
  ``$assignedNodeProperties`` for property setting, and so on;
* the condition becomes the first argument of ``apoc.do.when`` — a label
  check on the unwound item conjoined with the trigger's own WHEN
  predicate;
* condition *queries* (MATCH/WITH pipelines) are emitted before the
  ``do.when`` call, exactly as the paper describes for the
  ``IcuPatientIncrease`` example;
* the action statement becomes the second ``do.when`` argument (a quoted
  sub-query receiving the unwound item through the parameter map);
* the phase defaults to ``afterAsync``, the option the paper adopts after
  discussing the blocking problems of ``before``/``after``.

The emitted text is executable against
:class:`~repro.compat.apoc.ApocEmulator`, which is how the benchmark
harness shows that the translated triggers reproduce the PG-Trigger
behaviour (up to APOC's documented limitations).
"""

from __future__ import annotations

import functools as _functools
from dataclasses import dataclass

from ..cypher.lexer import TokenType
from ..cypher.planner import PLAN_CACHE
from ..triggers.ast import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    TransitionVariable,
    TriggerDefinition,
)
from .errors import TranslationError

#: Mapping (event, item kind) -> the UNWIND parameter of Tables 2/3 for
#: events that affect whole items.
_ITEM_EVENT_PARAMETERS = {
    (EventType.CREATE, ItemKind.NODE): "createdNodes",
    (EventType.DELETE, ItemKind.NODE): "deletedNodes",
    (EventType.CREATE, ItemKind.RELATIONSHIP): "createdRelationships",
    (EventType.DELETE, ItemKind.RELATIONSHIP): "deletedRelationships",
}

#: Mapping (event, item kind) -> the property-change parameter.
_PROPERTY_EVENT_PARAMETERS = {
    (EventType.SET, ItemKind.NODE): "assignedNodeProperties",
    (EventType.REMOVE, ItemKind.NODE): "removedNodeProperties",
    (EventType.SET, ItemKind.RELATIONSHIP): "assignedRelProperties",
    (EventType.REMOVE, ItemKind.RELATIONSHIP): "removedRelProperties",
}

#: Phase used for every translation (Section 5.1's recommendation).
DEFAULT_PHASE = "afterAsync"

#: Variable name used for the unwound items, as in Figure 2.
UNWIND_VARIABLE = "cNodes"
#: Variable name used for unwound property-change records.
PROPERTY_VARIABLE = "aProp"


@dataclass(frozen=True)
class ApocTranslation:
    """The result of translating one PG-Trigger."""

    trigger: TriggerDefinition
    database: str
    parameter: str
    unwind_clause: str
    condition_query: str
    do_when_condition: str
    inner_statement: str
    phase: str
    call_text: str

    def __str__(self) -> str:
        return self.call_text


@_functools.lru_cache(maxsize=256)
def translate_to_apoc(
    definition: TriggerDefinition, database: str = "databaseName"
) -> ApocTranslation:
    """Translate ``definition`` into an executable APOC trigger installation.

    Definitions and translations are immutable, so repeated translations of
    the same trigger (benchmark rounds, emulator reinstalls) are memoised.
    """
    if definition.time == ActionTime.BEFORE:
        # The paper notes APOC's before/after phases are discouraged; BEFORE
        # semantics cannot be reproduced faithfully after the fact.
        raise TranslationError(
            f"trigger {definition.name!r}: BEFORE action time has no faithful APOC phase; "
            "only ONCOMMIT ('before'), AFTER and DETACHED ('afterAsync') can be mapped"
        )
    phase = "before" if definition.time == ActionTime.ONCOMMIT else DEFAULT_PHASE

    if definition.property is None and (definition.event, definition.item) in _ITEM_EVENT_PARAMETERS:
        parameter = _ITEM_EVENT_PARAMETERS[(definition.event, definition.item)]
        unwind_clause = f"UNWIND ${parameter} AS {UNWIND_VARIABLE}"
        item_variable = UNWIND_VARIABLE
        label_check = f"{UNWIND_VARIABLE}:{definition.label}"
        old_expr = UNWIND_VARIABLE
        new_expr = UNWIND_VARIABLE
    elif definition.event in (EventType.SET, EventType.REMOVE) and (
        definition.property is not None or definition.item == ItemKind.RELATIONSHIP
    ):
        parameter = _PROPERTY_EVENT_PARAMETERS[(definition.event, definition.item)]
        unwind_clause = (
            f"UNWIND keys(${parameter}) AS k\n"
            f"UNWIND ${parameter}[k] AS {PROPERTY_VARIABLE}\n"
            f"WITH {PROPERTY_VARIABLE}.node AS {UNWIND_VARIABLE}, "
            f"{PROPERTY_VARIABLE}.key AS changedKey, "
            f"{PROPERTY_VARIABLE}.old AS oldValue, {PROPERTY_VARIABLE}.new AS newValue"
        )
        if definition.item == ItemKind.RELATIONSHIP:
            unwind_clause = unwind_clause.replace(
                f"{PROPERTY_VARIABLE}.node", f"{PROPERTY_VARIABLE}.relationship"
            )
        item_variable = UNWIND_VARIABLE
        label_check = f"{UNWIND_VARIABLE}:{definition.label}"
        if definition.property is not None:
            label_check += f" AND changedKey = '{definition.property}'"
        old_expr = UNWIND_VARIABLE
        new_expr = UNWIND_VARIABLE
    else:
        # SET/REMOVE without a property on an item kind not covered above
        # falls back to label metadata; the paper lists these among the ten
        # supported event kinds.
        parameter = "assignedLabels" if definition.event == EventType.SET else "removedLabels"
        unwind_clause = (
            f"UNWIND keys(${parameter}) AS changedLabel\n"
            f"UNWIND ${parameter}[changedLabel] AS {UNWIND_VARIABLE}"
        )
        item_variable = UNWIND_VARIABLE
        label_check = f"{UNWIND_VARIABLE}:{definition.label}"
        old_expr = UNWIND_VARIABLE
        new_expr = UNWIND_VARIABLE

    substitutions = _transition_substitutions(definition, old_expr, new_expr)
    property_substitutions = _property_substitutions(definition)
    condition_query, condition_predicate = _split_condition(
        definition, substitutions, property_substitutions
    )
    statement = _substitute_identifiers(
        definition.statement, substitutions, property_substitutions
    )

    do_when_condition = label_check
    if condition_predicate:
        do_when_condition += f" AND {condition_predicate}"

    inner_statement = statement
    if definition.property is not None or (
        definition.event in (EventType.SET, EventType.REMOVE)
        and (definition.event, definition.item) in _PROPERTY_EVENT_PARAMETERS
    ):
        parameter_map = (
            f"{{{item_variable}: {item_variable}, changedKey: changedKey, "
            "oldValue: oldValue, newValue: newValue}"
        )
    else:
        parameter_map = f"{{{item_variable}: {item_variable}}}"
    call_text = _render_call(
        database=database,
        name=definition.name,
        unwind_clause=unwind_clause,
        condition_query=condition_query,
        do_when_condition=do_when_condition,
        inner_statement=inner_statement,
        parameter_map=parameter_map,
        phase=phase,
    )
    return ApocTranslation(
        trigger=definition,
        database=database,
        parameter=parameter,
        unwind_clause=unwind_clause,
        condition_query=condition_query,
        do_when_condition=do_when_condition,
        inner_statement=inner_statement,
        phase=phase,
        call_text=call_text,
    )


def translate_all(
    definitions, database: str = "databaseName"
) -> list[ApocTranslation]:
    """Translate a collection of PG-Triggers, skipping untranslatable ones."""
    translations = []
    for definition in definitions:
        translations.append(translate_to_apoc(definition, database=database))
    return translations


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _transition_substitutions(
    definition: TriggerDefinition, old_expr: str, new_expr: str
) -> dict[str, str]:
    """Identifier substitutions mapping transition variables to APOC terms."""
    substitutions: dict[str, str] = {}
    plural_old = (
        TransitionVariable.OLDNODES
        if definition.item == ItemKind.NODE
        else TransitionVariable.OLDRELS
    )
    plural_new = (
        TransitionVariable.NEWNODES
        if definition.item == ItemKind.NODE
        else TransitionVariable.NEWRELS
    )
    if definition.granularity == Granularity.EACH:
        for variable, replacement in (
            (TransitionVariable.OLD, old_expr),
            (TransitionVariable.NEW, new_expr),
        ):
            substitutions[variable.value] = replacement
            substitutions[definition.alias_for(variable)] = replacement
    else:
        # The UNWIND clause flattens the set; set-oriented conditions refer to
        # the same unwound variable (the paper notes that APOC cannot separate
        # the two granularities).
        for variable in (plural_old, plural_new):
            substitutions[variable.value] = UNWIND_VARIABLE
            substitutions[definition.alias_for(variable)] = UNWIND_VARIABLE
    return substitutions


def _property_substitutions(definition: TriggerDefinition) -> dict[tuple[str, str], str]:
    """``OLD.<prop>`` / ``NEW.<prop>`` rewrites for property-targeted triggers.

    The paper's WhoDesignationChange translation replaces accesses to the
    monitored property with the ``old``/``new`` values carried by the
    unwound ``$assignedNodeProperties`` record.
    """
    if definition.property is None or definition.event not in (EventType.SET, EventType.REMOVE):
        return {}
    result: dict[tuple[str, str], str] = {}
    for variable, replacement in (
        (TransitionVariable.OLD, "oldValue"),
        (TransitionVariable.NEW, "newValue"),
    ):
        result[(variable.value, definition.property)] = replacement
        result[(definition.alias_for(variable), definition.property)] = replacement
    return result


def _substitute_identifiers(
    text: str,
    substitutions: dict[str, str],
    property_substitutions: dict[tuple[str, str], str] | None = None,
) -> str:
    """Replace transition-variable references in ``text`` (string-literal safe).

    ``VAR.property`` sequences listed in ``property_substitutions`` are
    rewritten first; remaining ``VAR`` identifier tokens are rewritten via
    ``substitutions``, except when they appear in label position (directly
    after a ``:``), where the reference is to a virtual label rather than a
    variable.
    """
    if not text:
        return text
    property_substitutions = property_substitutions or {}
    tokens = [t for t in PLAN_CACHE.tokenize(text) if t.type != TokenType.EOF]
    pieces: list[str] = []
    cursor = 0
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.type == TokenType.IDENTIFIER:
            in_label_position = _is_label_position(tokens, index)
            # VAR.property rewrite (three-token window).
            if (
                not in_label_position
                and index + 2 < len(tokens)
                and tokens[index + 1].value == "."
                and tokens[index + 2].type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
                and (token.value, tokens[index + 2].value) in property_substitutions
            ):
                replacement = property_substitutions[(token.value, tokens[index + 2].value)]
                pieces.append(text[cursor:token.position])
                pieces.append(replacement)
                last = tokens[index + 2]
                cursor = last.position + len(last.value)
                index += 3
                continue
            if not in_label_position and token.value in substitutions:
                pieces.append(text[cursor:token.position])
                pieces.append(substitutions[token.value])
                cursor = token.position + len(token.value)
        index += 1
    pieces.append(text[cursor:])
    return "".join(pieces)


def _is_label_position(tokens, index: int) -> bool:
    """True when ``tokens[index]`` is used as a label (``:Name``), not a value.

    A colon also separates map keys from values (``{mutation: NEW.name}``);
    those occurrences must still be substituted.  The colon is treated as a
    map separator when the token before it is a map key whose own
    predecessor is ``{`` or ``,``.
    """
    if index == 0:
        return False
    previous = tokens[index - 1]
    if not (previous.type in (TokenType.PUNCTUATION, TokenType.OPERATOR) and previous.value == ":"):
        return False
    if index < 2:
        return True
    key_candidate = tokens[index - 2]
    if key_candidate.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.STRING):
        if index >= 3:
            opener = tokens[index - 3]
            if opener.type in (TokenType.PUNCTUATION, TokenType.OPERATOR) and opener.value in ("{", ","):
                return False
        else:
            return False
    return True


def _split_condition(
    definition: TriggerDefinition,
    substitutions: dict[str, str],
    property_substitutions: dict[tuple[str, str], str] | None = None,
) -> tuple[str, str]:
    """Split the WHEN body into (condition query, boolean predicate).

    Plain predicates translate into the ``do.when`` condition directly; a
    condition query (MATCH/UNWIND/WITH pipeline) is emitted before the
    ``do.when`` call and its final WHERE (if any) stays inside the query, so
    the do.when condition only keeps the label check (Figure 2's
    ``condition_query(nodes)`` placement).
    """
    condition = (definition.condition or "").strip()
    if not condition:
        return "", ""
    substituted = _substitute_identifiers(condition, substitutions, property_substitutions)
    first_word = substituted.split(None, 1)[0].upper() if substituted.split() else ""
    if first_word in {"MATCH", "UNWIND", "WITH", "OPTIONAL"}:
        return _carry_through_withs(substituted, UNWIND_VARIABLE), ""
    return "", substituted


def _carry_through_withs(text: str, variable: str) -> str:
    """Append ``variable`` to every top-level WITH projection in ``text``.

    Condition queries written for PG-Triggers do not know about the unwound
    APOC variable; Figure 2's translation keeps that variable in scope so
    the ``do.when`` condition and inner statement can still refer to it (the
    paper's IcuPatientIncrease translation carries ``cNodes`` through its
    WITH explicitly).  Note that adding a grouping key turns a set-level
    aggregate into a per-item one — the paper addresses the resulting
    duplicate actions by using MERGE in the translated statement.
    """
    tokens = [t for t in PLAN_CACHE.tokenize(text) if t.type != TokenType.EOF]
    insert_positions: list[int] = []
    for index, token in enumerate(tokens):
        if not (token.type == TokenType.KEYWORD and token.value == "WITH"):
            continue
        # Find where this WITH's projection list ends.
        end_offset = len(text)
        for later in tokens[index + 1:]:
            if later.type == TokenType.KEYWORD and later.value in {
                "WHERE", "ORDER", "SKIP", "LIMIT", "MATCH", "UNWIND", "WITH",
                "RETURN", "CREATE", "MERGE", "DELETE", "DETACH", "SET", "REMOVE",
                "FOREACH", "CALL",
            }:
                end_offset = later.position
                break
        projection = text[token.position:end_offset]
        if variable not in projection.split():
            insert_positions.append(end_offset)
    result = text
    for offset in sorted(insert_positions, reverse=True):
        prefix = result[:offset].rstrip()
        suffix = result[offset:]
        result = f"{prefix}, {variable} {suffix}" if suffix.strip() else f"{prefix}, {variable}"
    return result


def _escape_inner(text: str) -> str:
    """Escape a sub-query for embedding in a single-quoted APOC argument."""
    return text.replace("\\", "\\\\").replace("'", "\\'")


def _escape_outer(text: str) -> str:
    """Escape the trigger body for embedding in the double-quoted argument.

    Backslashes are escaped as well so that the inner statement's own
    escaping survives the outer string's un-escaping when the install call
    is parsed back.
    """
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _render_call(
    database: str,
    name: str,
    unwind_clause: str,
    condition_query: str,
    do_when_condition: str,
    inner_statement: str,
    parameter_map: str,
    phase: str,
) -> str:
    body_lines = [unwind_clause]
    if condition_query:
        body_lines.append(condition_query)
    body_lines.append(
        "CALL apoc.do.when(\n"
        f"  {do_when_condition},\n"
        f"  '{_escape_inner(inner_statement)}',\n"
        "  '',\n"
        f"  {parameter_map})\n"
        "YIELD value RETURN *"
    )
    body = _escape_outer("\n".join(body_lines))
    return (
        f"CALL apoc.trigger.install('{database}', '{name}',\n"
        f'"{body}",\n'
        f"{{phase: '{phase}'}});"
    )
