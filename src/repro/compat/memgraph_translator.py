"""Syntax-directed translation of PG-Triggers into Memgraph triggers.

Reproduces the scheme of the paper's Figure 3: the translated trigger
unwinds the matching Table 4 predefined variable, evaluates the PG-Trigger
condition inside a ``CASE`` expression that yields a ``flag``, guards the
statement with ``WHERE flag IS NOT NULL`` and then runs the (rewritten)
action statement.  The emitted DDL is executable against
:class:`~repro.compat.memgraph.MemgraphEmulator`.
"""

from __future__ import annotations

import functools as _functools
from dataclasses import dataclass

from ..triggers.ast import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    TransitionVariable,
    TriggerDefinition,
)
from .apoc_translator import (  # shared token-level rewriting helpers
    _carry_through_withs,
    _substitute_identifiers,
)
from .errors import TranslationError

#: Variable bound to the unwound item, as in Figure 3.
UNWIND_VARIABLE = "newNode"

#: (event, item) -> (predefined variable, item expression inside the record)
_EVENT_SOURCES = {
    (EventType.CREATE, ItemKind.NODE): ("createdVertices", None),
    (EventType.DELETE, ItemKind.NODE): ("deletedVertices", None),
    (EventType.CREATE, ItemKind.RELATIONSHIP): ("createdEdges", None),
    (EventType.DELETE, ItemKind.RELATIONSHIP): ("deletedEdges", None),
    (EventType.SET, ItemKind.NODE): ("setVertexProperties", "vertex"),
    (EventType.REMOVE, ItemKind.NODE): ("removedVertexProperties", "vertex"),
    (EventType.SET, ItemKind.RELATIONSHIP): ("setEdgeProperties", "edge"),
    (EventType.REMOVE, ItemKind.RELATIONSHIP): ("removedEdgeProperties", "edge"),
}

#: PG-Trigger event -> Memgraph ON event word.
_EVENT_WORDS = {
    EventType.CREATE: "CREATE",
    EventType.DELETE: "DELETE",
    EventType.SET: "UPDATE",
    EventType.REMOVE: "UPDATE",
}


@dataclass(frozen=True)
class MemgraphTranslation:
    """The result of translating one PG-Trigger to Memgraph."""

    trigger: TriggerDefinition
    source_variable: str
    on_clause: str
    phase: str
    body: str
    ddl: str

    def __str__(self) -> str:
        return self.ddl


@_functools.lru_cache(maxsize=256)
def translate_to_memgraph(definition: TriggerDefinition) -> MemgraphTranslation:
    """Translate ``definition`` into a Memgraph CREATE TRIGGER statement.

    Definitions and translations are immutable, so repeated translations of
    the same trigger are memoised (the token-level rewriting helpers shared
    with the APOC translator also reuse the global plan cache's tokenizer).
    """
    if definition.time == ActionTime.BEFORE:
        raise TranslationError(
            f"trigger {definition.name!r}: BEFORE action time has no Memgraph counterpart; "
            "only ONCOMMIT (BEFORE COMMIT), AFTER and DETACHED (AFTER COMMIT) can be mapped"
        )
    phase = "BEFORE COMMIT" if definition.time == ActionTime.ONCOMMIT else "AFTER COMMIT"
    source, record_field = _EVENT_SOURCES[(definition.event, definition.item)]
    item_filter = "()" if definition.item == ItemKind.NODE else "-->"
    on_clause = f"ON {item_filter} {_EVENT_WORDS[definition.event]}"

    if record_field is None:
        unwind = f"UNWIND {source} AS {UNWIND_VARIABLE}"
        extra_with = ""
    else:
        unwind = f"UNWIND {source} AS change"
        extra_with = (
            f"WITH change.{record_field} AS {UNWIND_VARIABLE}, change.key AS changedKey, "
            "change.old AS oldValue, change.new AS newValue"
        )

    substitutions = _variable_substitutions(definition)
    property_substitutions = _property_substitutions(definition)
    condition = (definition.condition or "").strip()
    condition = _substitute_identifiers(condition, substitutions, property_substitutions)
    statement = _substitute_identifiers(
        definition.statement, substitutions, property_substitutions
    )

    label_check = _label_check(definition)
    condition_query = ""
    predicate = ""
    if condition:
        first_word = condition.split(None, 1)[0].upper()
        if first_word in {"MATCH", "UNWIND", "WITH", "OPTIONAL"}:
            # Keep the unwound item in scope across the condition query's WITH
            # clauses (Section 5.2: condition-query variables must be carried
            # through the WITH into the statement).
            condition_query = _carry_through_withs(condition, UNWIND_VARIABLE)
        else:
            predicate = condition
    case_condition = label_check
    if definition.property is not None:
        case_condition += f" AND changedKey = '{definition.property}'"
    if predicate:
        case_condition += f" AND ({predicate})"

    lines = [unwind]
    if extra_with:
        lines.append(extra_with)
    if condition_query:
        lines.append(condition_query)
    lines.append(
        f"WITH CASE WHEN {case_condition} THEN {UNWIND_VARIABLE} END AS flag, "
        f"{UNWIND_VARIABLE} AS {UNWIND_VARIABLE}"
    )
    lines.append("WHERE flag IS NOT NULL")
    lines.append(statement)
    body = "\n".join(lines)
    ddl = (
        f"CREATE TRIGGER {definition.name}\n"
        f"{on_clause}\n"
        f"{phase}\n"
        f"EXECUTE\n{body};"
    )
    return MemgraphTranslation(
        trigger=definition,
        source_variable=source,
        on_clause=on_clause,
        phase=phase,
        body=body,
        ddl=ddl,
    )


def translate_all(definitions) -> list[MemgraphTranslation]:
    """Translate a collection of PG-Triggers."""
    return [translate_to_memgraph(definition) for definition in definitions]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _label_check(definition: TriggerDefinition) -> str:
    if definition.item == ItemKind.NODE:
        return f"'{definition.label}' IN labels({UNWIND_VARIABLE})"
    return f"type({UNWIND_VARIABLE}) = '{definition.label}'"


def _variable_substitutions(definition: TriggerDefinition) -> dict[str, str]:
    substitutions: dict[str, str] = {}
    if definition.granularity == Granularity.EACH:
        variables = (TransitionVariable.OLD, TransitionVariable.NEW)
    elif definition.item == ItemKind.NODE:
        variables = (TransitionVariable.OLDNODES, TransitionVariable.NEWNODES)
    else:
        variables = (TransitionVariable.OLDRELS, TransitionVariable.NEWRELS)
    for variable in variables:
        substitutions[variable.value] = UNWIND_VARIABLE
        substitutions[definition.alias_for(variable)] = UNWIND_VARIABLE
    return substitutions


def _property_substitutions(definition: TriggerDefinition) -> dict[tuple[str, str], str]:
    if definition.property is None or definition.event not in (EventType.SET, EventType.REMOVE):
        return {}
    result: dict[tuple[str, str], str] = {}
    for variable, replacement in (
        (TransitionVariable.OLD, "oldValue"),
        (TransitionVariable.NEW, "newValue"),
    ):
        result[(variable.value, definition.property)] = replacement
        result[(definition.alias_for(variable), definition.property)] = replacement
    return result
