"""Compatibility layers: APOC / Memgraph emulation, translators, Table 1."""

from .apoc import (
    TABLE2_ROWS,
    ApocEmulator,
    ApocTrigger,
    apoc_do_case,
    apoc_do_when,
    transition_parameters,
)
from .apoc_translator import ApocTranslation, translate_all as translate_all_to_apoc, translate_to_apoc
from .comparison import (
    SYSTEMS,
    SystemSupport,
    render_table1,
    systems_with_event_listeners,
    systems_with_graph_triggers,
    table1_rows,
)
from .errors import ApocTriggerError, CompatError, MemgraphTriggerError, TranslationError
from .memgraph import TABLE4_ROWS, MemgraphEmulator, MemgraphTrigger, predefined_variables
from .memgraph_translator import (
    MemgraphTranslation,
    translate_all as translate_all_to_memgraph,
    translate_to_memgraph,
)

__all__ = [
    "ApocEmulator",
    "ApocTranslation",
    "ApocTrigger",
    "ApocTriggerError",
    "CompatError",
    "MemgraphEmulator",
    "MemgraphTranslation",
    "MemgraphTrigger",
    "MemgraphTriggerError",
    "SYSTEMS",
    "SystemSupport",
    "TABLE2_ROWS",
    "TABLE4_ROWS",
    "TranslationError",
    "apoc_do_case",
    "apoc_do_when",
    "predefined_variables",
    "render_table1",
    "systems_with_event_listeners",
    "systems_with_graph_triggers",
    "table1_rows",
    "transition_parameters",
    "translate_all_to_apoc",
    "translate_all_to_memgraph",
    "translate_to_apoc",
    "translate_to_memgraph",
]
