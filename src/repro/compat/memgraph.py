"""Emulation of Memgraph triggers (Section 5.2 of the paper).

Memgraph supports triggers natively with the syntax::

    CREATE TRIGGER <name>
    [ ON [ () | --> ] CREATE | UPDATE | DELETE ]
    [ BEFORE | AFTER ] COMMIT
    EXECUTE <openCypher statements>

The emulator reproduces:

* the trigger DDL (plus ``DROP TRIGGER`` and ``SHOW TRIGGERS``);
* the event filter — ``()`` restricts to vertex (node) events, ``-->`` to
  edge (relationship) events, and the bare event word covers both;
* the ``BEFORE COMMIT`` / ``AFTER COMMIT`` execution times (before commit
  runs inside the committing transaction; after commit runs in a new one);
* the predefined variables of Table 4 (``createdVertices``,
  ``setVertexProperties``, …), exposed to the trigger statement as bound
  variables rather than parameters, matching Memgraph's behaviour;
* the same no-cascade limitation as APOC, which the paper points out is
  identical in Memgraph.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..cypher.executor import QueryExecutor
from ..cypher.result import QueryResult
from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .errors import MemgraphTriggerError

_TRIGGER_DDL = re.compile(
    r"^\s*CREATE\s+TRIGGER\s+(?P<name>\w+)"
    r"(?:\s+ON\s+(?P<filter>\(\)|-->)?\s*(?P<event>CREATE|UPDATE|DELETE))?"
    r"\s+(?P<phase>BEFORE|AFTER)\s+COMMIT"
    r"\s+EXECUTE\s+(?P<statement>.+)$",
    re.IGNORECASE | re.DOTALL,
)
_DROP_DDL = re.compile(r"^\s*DROP\s+TRIGGER\s+(?P<name>\w+)\s*;?\s*$", re.IGNORECASE)
_SHOW_DDL = re.compile(r"^\s*SHOW\s+TRIGGERS\s*;?\s*$", re.IGNORECASE)


@dataclass
class MemgraphTrigger:
    """One installed Memgraph trigger."""

    name: str
    statement: str
    event: Optional[str] = None  # CREATE / UPDATE / DELETE / None = any
    item_filter: Optional[str] = None  # "()" vertices, "-->" edges, None = any
    phase: str = "AFTER"  # BEFORE | AFTER (commit)
    installed_at: int = 0
    executions: int = 0

    def as_row(self) -> dict[str, Any]:
        """Row shape returned by SHOW TRIGGERS."""
        event_text = self.event or "ANY"
        if self.item_filter == "()":
            event_text = f"{event_text} (vertices)"
        elif self.item_filter == "-->":
            event_text = f"{event_text} (edges)"
        return {
            "trigger name": self.name,
            "statement": self.statement,
            "event type": event_text,
            "phase": f"{self.phase} COMMIT",
        }


class MemgraphEmulator:
    """A Memgraph stand-in: openCypher execution plus native trigger semantics."""

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        clock: Callable[[], _dt.datetime] | None = None,
    ) -> None:
        self.graph = graph or PropertyGraph()
        self.clock = clock or _dt.datetime.now
        self.manager = TransactionManager(self.graph)
        self._triggers: dict[str, MemgraphTrigger] = {}
        self._sequence = 0
        #: Audit log of (trigger name, phase) executions.
        self.execution_log: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # trigger management
    # ------------------------------------------------------------------

    def create_trigger(self, ddl: str) -> MemgraphTrigger:
        """Install a trigger from its CREATE TRIGGER DDL text."""
        match = _TRIGGER_DDL.match(ddl.strip().rstrip(";"))
        if match is None:
            raise MemgraphTriggerError(f"malformed CREATE TRIGGER statement: {ddl.strip()[:80]!r}")
        name = match.group("name")
        if name in self._triggers:
            raise MemgraphTriggerError(f"trigger {name!r} already exists")
        self._sequence += 1
        trigger = MemgraphTrigger(
            name=name,
            statement=match.group("statement").strip(),
            event=(match.group("event") or "").upper() or None,
            item_filter=match.group("filter"),
            phase=match.group("phase").upper(),
            installed_at=self._sequence,
        )
        self._triggers[name] = trigger
        return trigger

    def drop_trigger(self, name: str) -> MemgraphTrigger:
        """Remove a trigger by name."""
        if name not in self._triggers:
            raise MemgraphTriggerError(f"no trigger named {name!r}")
        return self._triggers.pop(name)

    def show_triggers(self) -> list[dict[str, Any]]:
        """SHOW TRIGGERS."""
        ordered = sorted(self._triggers.values(), key=lambda t: t.installed_at)
        return [trigger.as_row() for trigger in ordered]

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(self, query: str, parameters: Mapping[str, Any] | None = None) -> QueryResult:
        """Execute one statement (DDL or openCypher) in auto-commit mode."""
        stripped = query.strip()
        if _TRIGGER_DDL.match(stripped.rstrip(";")):
            self.create_trigger(stripped)
            return QueryResult()
        drop = _DROP_DDL.match(stripped)
        if drop:
            self.drop_trigger(drop.group("name"))
            return QueryResult()
        if _SHOW_DDL.match(stripped):
            rows = self.show_triggers()
            columns = list(rows[0].keys()) if rows else []
            return QueryResult(columns=columns, rows=rows)
        return self._run_data_statement(stripped, parameters)

    def _run_data_statement(
        self, query: str, parameters: Mapping[str, Any] | None
    ) -> QueryResult:
        tx = self.manager.begin()
        try:
            executor = QueryExecutor(
                self.graph, transaction=tx, parameters=parameters, clock=self.clock
            )
            result = executor.execute(query)
            tx.end_statement()
            delta = tx.transaction_delta
            if not delta.is_empty():
                self._run_phase("BEFORE", delta, tx)
            committed = self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise
        if not committed.is_empty():
            self._run_after_commit(committed)
        return result

    # ------------------------------------------------------------------
    # trigger execution
    # ------------------------------------------------------------------

    def _relevant(self, trigger: MemgraphTrigger, delta: GraphDelta) -> bool:
        """Does ``delta`` contain changes matching the trigger's event filter?"""
        vertex_changes = {
            "CREATE": bool(delta.created_nodes),
            "DELETE": bool(delta.deleted_nodes),
            "UPDATE": bool(
                delta.assigned_labels
                or delta.removed_labels
                or delta.node_property_assignments()
                or delta.node_property_removals()
            ),
        }
        edge_changes = {
            "CREATE": bool(delta.created_relationships),
            "DELETE": bool(delta.deleted_relationships),
            "UPDATE": bool(
                delta.relationship_property_assignments()
                or delta.relationship_property_removals()
            ),
        }
        events = [trigger.event] if trigger.event else ["CREATE", "UPDATE", "DELETE"]
        if trigger.item_filter == "()":
            return any(vertex_changes[e] for e in events)
        if trigger.item_filter == "-->":
            return any(edge_changes[e] for e in events)
        return any(vertex_changes[e] or edge_changes[e] for e in events)

    def _run_phase(self, phase: str, delta: GraphDelta, tx: Transaction) -> None:
        bindings = predefined_variables(delta)
        ordered = sorted(self._triggers.values(), key=lambda t: t.installed_at)
        for trigger in ordered:
            if trigger.phase != phase or not self._relevant(trigger, delta):
                continue
            executor = QueryExecutor(self.graph, transaction=tx, clock=self.clock)
            executor.execute(trigger.statement, bindings=bindings)
            trigger.executions += 1
            self.execution_log.append((trigger.name, trigger.phase))
            # Triggers do not cascade (same limitation as Neo4j APOC).
            tx.end_statement()

    def _run_after_commit(self, committed: GraphDelta) -> None:
        relevant = [
            t for t in sorted(self._triggers.values(), key=lambda t: t.installed_at)
            if t.phase == "AFTER" and self._relevant(t, committed)
        ]
        if not relevant:
            return
        tx = self.manager.begin(metadata={"source": "memgraph-trigger"})
        try:
            self._run_phase("AFTER", committed, tx)
            self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise


# ---------------------------------------------------------------------------
# Table 4: predefined variables
# ---------------------------------------------------------------------------


def predefined_variables(delta: GraphDelta) -> dict[str, Any]:
    """Build the Memgraph predefined variables of Table 4 from a delta.

    Update records are maps carrying the affected item plus the change
    details, which is how Memgraph exposes them to openCypher.
    """
    set_vertex_labels = [
        {"label": a.label, "vertex": a.node} for a in delta.assigned_labels
    ]
    removed_vertex_labels = [
        {"label": r.label, "vertex": r.node} for r in delta.removed_labels
    ]
    set_vertex_properties = [
        {"vertex": c.item, "key": c.key, "old": c.old, "new": c.new}
        for c in delta.node_property_assignments()
    ]
    set_edge_properties = [
        {"edge": c.item, "key": c.key, "old": c.old, "new": c.new}
        for c in delta.relationship_property_assignments()
    ]
    removed_vertex_properties = [
        {"vertex": c.item, "key": c.key, "old": c.old}
        for c in delta.node_property_removals()
    ]
    removed_edge_properties = [
        {"edge": c.item, "key": c.key, "old": c.old}
        for c in delta.relationship_property_removals()
    ]
    updated_vertices = (
        [{"event_type": "set_vertex_label", **entry} for entry in set_vertex_labels]
        + [{"event_type": "removed_vertex_label", **entry} for entry in removed_vertex_labels]
        + [{"event_type": "set_vertex_property", **entry} for entry in set_vertex_properties]
        + [
            {"event_type": "removed_vertex_property", **entry}
            for entry in removed_vertex_properties
        ]
    )
    updated_edges = (
        [{"event_type": "set_edge_property", **entry} for entry in set_edge_properties]
        + [{"event_type": "removed_edge_property", **entry} for entry in removed_edge_properties]
    )
    created_objects = [{"event_type": "created_vertex", "vertex": n} for n in delta.created_nodes] + [
        {"event_type": "created_edge", "edge": r} for r in delta.created_relationships
    ]
    deleted_objects = [{"event_type": "deleted_vertex", "vertex": n} for n in delta.deleted_nodes] + [
        {"event_type": "deleted_edge", "edge": r} for r in delta.deleted_relationships
    ]
    return {
        "createdVertices": list(delta.created_nodes),
        "createdEdges": list(delta.created_relationships),
        "createdObjects": created_objects,
        "deletedVertices": list(delta.deleted_nodes),
        "deletedEdges": list(delta.deleted_relationships),
        "deletedObjects": deleted_objects,
        "updatedVertices": updated_vertices,
        "updatedEdges": updated_edges,
        "updatedObjects": updated_vertices + updated_edges,
        "setVertexLabels": set_vertex_labels,
        "removedVertexLabels": removed_vertex_labels,
        "setVertexProperties": set_vertex_properties,
        "setEdgeProperties": set_edge_properties,
        "removedVertexProperties": removed_vertex_properties,
        "removedEdgeProperties": removed_edge_properties,
    }


#: The rows of the paper's Table 4 (variable name and description).
TABLE4_ROWS: tuple[tuple[str, str], ...] = (
    ("createdVertices", "list of created nodes"),
    ("createdEdges", "list of created relationships"),
    ("createdObjects", "list of created objects (as maps)"),
    ("updatedVertices", "list of node updates (set/removed properties/labels)"),
    ("updatedEdges", "list of node updates (set/removed properties)"),
    ("updatedObjects", "list of node/rels updates (set/removed properties/labels)"),
    ("deletedVertices", "list of deleted nodes"),
    ("deletedEdges", "list of deleted relationships"),
    ("deletedObjects", "list of deleted objects (as maps)"),
    ("setVertexLabels", "list of set node labels"),
    ("removedVertexLabels", "list of removed node labels"),
    ("setVertexProperties", "list of set node properties"),
    ("setEdgeProperties", "list of set relationship properties"),
    ("removedVertexProperties", "list of removed node properties"),
    ("removedEdgeProperties", "list of removed relationship prop."),
)
