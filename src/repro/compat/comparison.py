"""The paper's Table 1: reactive support across graph database systems.

The survey of Section 3 is static knowledge; encoding it as data lets the
benchmark harness re-print the table and lets tests assert its contents
(which systems have graph-trigger support, which only expose event
listeners, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SystemSupport:
    """One row of Table 1.

    Attributes:
        name: system name.
        category: the subsection of Section 3 the system belongs to.
        triggers_on_graph: native triggers over graph data (Tr-G).
        triggers_on_relational: triggers on the relational component of a
            mixed system (Tr-R).
        event_listener: the event-listener mechanism, if any (Ev-L).
    """

    name: str
    category: str
    triggers_on_graph: bool = False
    triggers_on_relational: bool = False
    event_listener: Optional[str] = None

    def row(self) -> dict[str, str]:
        """Render the row with the paper's ✓ / - / (mechanism) notation."""
        return {
            "System": self.name,
            "Tr-G": "✓" if self.triggers_on_graph else "-",
            "Tr-R": "✓" if self.triggers_on_relational else "-",
            "Ev-L": f"✓({self.event_listener})" if self.event_listener else "-",
        }


GRAPH_DATABASES = "graph databases"
MIXED_RELATIONAL = "mixed graph-relational systems"
MIXED_DOCUMENT = "mixed graph-document databases"

#: The fifteen systems of Table 1, in the paper's order.
SYSTEMS: tuple[SystemSupport, ...] = (
    SystemSupport("Neo4j", GRAPH_DATABASES, triggers_on_graph=True),
    SystemSupport("Memgraph", GRAPH_DATABASES, triggers_on_graph=True),
    SystemSupport("JanusGraph", GRAPH_DATABASES, event_listener="JSBus"),
    SystemSupport("Dgraph", GRAPH_DATABASES, event_listener="Lambda"),
    SystemSupport("Amazon Neptune", GRAPH_DATABASES, event_listener="SNS"),
    SystemSupport("Stardog", GRAPH_DATABASES, event_listener="Java"),
    SystemSupport("Nebula Graph", GRAPH_DATABASES),
    SystemSupport("TigerGraph", GRAPH_DATABASES),
    SystemSupport("GraphDB", GRAPH_DATABASES),
    SystemSupport("Oracle Graph Database", MIXED_RELATIONAL, triggers_on_relational=True),
    SystemSupport("Virtuoso", MIXED_RELATIONAL, triggers_on_relational=True),
    SystemSupport("AgensGraph", MIXED_RELATIONAL, triggers_on_relational=True),
    SystemSupport("Microsoft Azure Cosmos DB", MIXED_DOCUMENT, event_listener="JS"),
    SystemSupport("OrientDB", MIXED_DOCUMENT, event_listener="Hooks"),
    SystemSupport("ArangoDB", MIXED_DOCUMENT, event_listener="✓"),
)


def table1_rows() -> list[dict[str, str]]:
    """All Table 1 rows, in the paper's order."""
    return [system.row() for system in SYSTEMS]


def systems_with_graph_triggers() -> list[str]:
    """Systems offering native triggers on graph data (the paper: Neo4j, Memgraph)."""
    return [s.name for s in SYSTEMS if s.triggers_on_graph]


def systems_with_event_listeners() -> list[str]:
    """Systems offering only event-listener mechanisms."""
    return [s.name for s in SYSTEMS if s.event_listener and not s.triggers_on_graph]


def render_table1() -> str:
    """Render Table 1 as fixed-width text (used by the benchmark harness)."""
    rows = table1_rows()
    headers = ["System", "Tr-G", "Tr-R", "Ev-L"]
    widths = {h: max(len(h), *(len(r[h]) for r in rows)) for h in headers}
    lines = [
        " | ".join(h.ljust(widths[h]) for h in headers),
        "-+-".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append(" | ".join(row[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines)
