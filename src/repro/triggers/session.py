"""GraphSession: the user-facing façade tying everything together.

A :class:`GraphSession` owns a property graph, a transaction manager, a
trigger registry and a trigger engine, and exposes the workflow the paper
describes: run openCypher statements, have PG-Triggers react at the right
action times, optionally validate the graph against a PG-Schema.

Typical usage::

    from repro.triggers import GraphSession

    session = GraphSession()
    session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
    session.create_trigger('''
        CREATE TRIGGER NewCriticalMutation
        AFTER CREATE ON 'Mutation'
        FOR EACH NODE
        WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
        BEGIN
          CREATE (:Alert {time: datetime(), desc: 'New critical mutation',
                          mutation: NEW.name})
        END
    ''')
"""

from __future__ import annotations

import contextlib
import datetime as _dt
from typing import Any, Callable, Iterator, Mapping, Optional

from ..cypher.executor import QueryExecutor
from ..cypher.result import QueryResult
from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from ..schema.schema import PGSchema
from ..schema.validation import Violation, validate_graph
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .ast import InstalledTrigger, TriggerDefinition
from .engine import TriggerEngine
from .registry import TriggerRegistry
from .termination import TerminationReport, analyse_termination


class GraphSession:
    """A property graph with transactions, Cypher execution and PG-Triggers."""

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        schema: PGSchema | None = None,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = 16,
    ) -> None:
        self.graph = graph or PropertyGraph()
        self.schema = schema
        self.clock = clock or _dt.datetime.now
        self.manager = TransactionManager(self.graph)
        self.registry = TriggerRegistry()
        self.engine = TriggerEngine(
            self.graph,
            self.registry,
            self.manager,
            clock=self.clock,
            max_cascade_depth=max_cascade_depth,
        )
        self._open_transaction: Optional[Transaction] = None
        self.manager.add_before_commit_hook(self._on_before_commit)
        self.manager.add_after_commit_hook(self._on_after_commit)

    # ------------------------------------------------------------------
    # trigger management
    # ------------------------------------------------------------------

    def create_trigger(self, trigger: str | TriggerDefinition) -> InstalledTrigger:
        """Install a PG-Trigger (CREATE TRIGGER text or definition object)."""
        return self.registry.install(trigger)

    def drop_trigger(self, name: str) -> TriggerDefinition:
        """Remove a trigger by name."""
        return self.registry.drop(name)

    def stop_trigger(self, name: str) -> None:
        """Pause a trigger without dropping it."""
        self.registry.stop(name)

    def start_trigger(self, name: str) -> None:
        """Resume a paused trigger."""
        self.registry.start(name)

    def triggers(self) -> list[TriggerDefinition]:
        """All installed trigger definitions (creation order)."""
        return self.registry.definitions()

    def analyse_termination(self) -> TerminationReport:
        """Run the static termination analysis on the installed trigger set."""
        return analyse_termination(self.registry.definitions())

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
    ) -> QueryResult:
        """Execute one openCypher statement.

        Outside an explicit transaction the statement runs in auto-commit
        mode: statement-time triggers (BEFORE/AFTER) fire at the statement
        boundary, ONCOMMIT triggers at the commit point, DETACHED triggers
        right after the commit.  Inside a :meth:`transaction` block only the
        statement-time triggers fire per statement; commit-time processing
        happens when the block exits.
        """
        if self._open_transaction is not None:
            return self._run_in_transaction(self._open_transaction, query, parameters)
        tx = self.manager.begin()
        try:
            result = self._run_in_transaction(tx, query, parameters)
            self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise
        return result

    def _run_in_transaction(
        self, tx: Transaction, query: str, parameters: Mapping[str, Any] | None
    ) -> QueryResult:
        executor = QueryExecutor(
            self.graph, transaction=tx, parameters=parameters, clock=self.clock
        )
        result = executor.execute(query)
        delta = tx.end_statement()
        if not delta.is_empty():
            self.engine.run_statement_triggers(tx, delta)
        return result

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Group several :meth:`run` calls into one transaction.

        ONCOMMIT triggers see the union of all statements' changes and run
        when the block exits successfully; DETACHED triggers run after the
        commit.  On exception the transaction is rolled back and no commit-
        time trigger fires.
        """
        if self._open_transaction is not None:
            raise RuntimeError("a session transaction is already open")
        tx = self.manager.begin()
        self._open_transaction = tx
        try:
            yield tx
        except Exception:
            self._open_transaction = None
            if tx.is_active:
                self.manager.rollback(tx)
            raise
        else:
            self._open_transaction = None
            self.manager.commit(tx)

    # ------------------------------------------------------------------
    # commit hooks (ONCOMMIT / DETACHED action times)
    # ------------------------------------------------------------------

    def _on_before_commit(self, tx: Transaction, delta: GraphDelta) -> None:
        if tx.metadata.get("source") == "detached-trigger":
            # The autonomous transaction's own commit processing is driven by
            # the engine itself (its cascade already covers ONCOMMIT-style
            # reactions); avoid re-entrant processing here.
            return
        if not delta.is_empty():
            self.engine.run_commit_triggers(tx, delta)

    def _on_after_commit(self, tx: Transaction, delta: GraphDelta) -> None:
        if tx.metadata.get("source") == "detached-trigger":
            return
        if not delta.is_empty():
            self.engine.run_detached_triggers(delta)

    # ------------------------------------------------------------------
    # schema integration and introspection
    # ------------------------------------------------------------------

    def validate(self) -> list[Violation]:
        """Validate the graph against the session's PG-Schema (if any)."""
        if self.schema is None:
            return []
        return validate_graph(self.graph, self.schema)

    def alerts(self) -> list[dict[str, Any]]:
        """Convenience accessor for the ``Alert`` nodes the paper's triggers produce."""
        return [dict(node.properties) for node in self.graph.nodes_with_label("Alert")]

    def firing_log(self) -> list[str]:
        """Human-readable audit log of trigger firings."""
        return [str(firing) for firing in self.engine.firings]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSession(nodes={self.graph.node_count()}, "
            f"relationships={self.graph.relationship_count()}, "
            f"triggers={len(self.registry)})"
        )
