"""GraphSession: the user-facing façade tying everything together.

A :class:`GraphSession` owns a property graph, a transaction manager, a
trigger registry and a trigger engine, and exposes the workflow the paper
describes: run openCypher statements, have PG-Triggers react at the right
action times, optionally validate the graph against a PG-Schema.

Typical usage::

    from repro.triggers import GraphSession

    session = GraphSession()
    session.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 20})")
    session.create_trigger('''
        CREATE TRIGGER NewCriticalMutation
        AFTER CREATE ON 'Mutation'
        FOR EACH NODE
        WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
        BEGIN
          CREATE (:Alert {time: datetime(), desc: 'New critical mutation',
                          mutation: NEW.name})
        END
    ''')
"""

from __future__ import annotations

import contextlib
import datetime as _dt
import threading
import time
from typing import Any, Callable, Iterator, Mapping, Optional

from ..cypher.executor import QueryExecutor, query_is_read_only
from ..cypher.planner import PLAN_CACHE
from ..cypher.result import Result
from ..graph.delta import GraphDelta
from ..graph.store import PropertyGraph
from ..schema.schema import PGSchema
from ..schema.validation import Violation, validate_graph
from ..storage import DurableStore, StorageIO, TriggerState
from ..tx.locks import LockManager
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .ast import InstalledTrigger, TriggerDefinition
from .engine import TriggerEngine
from .registry import TriggerRegistry
from .termination import TerminationReport, analyse_termination


class GraphSession:
    """A property graph with transactions, Cypher execution and PG-Triggers.

    A session is single-threaded by default (the streaming read path of
    PR 3 hands out lazily-consumed results, which only one consumer can
    own).  Constructed with ``thread_safe=True`` — or with the shared
    ``lock_manager`` a :class:`~repro.database.GraphDatabase` passes in —
    it becomes safe to use from many threads at once:

    * statements with side effects, explicit :meth:`transaction` blocks,
      trigger DDL and checkpoints run under the graph's exclusive write
      lock (reentrant per thread, so cascades never self-deadlock);
    * read-only auto-commit statements take the shared read lock and are
      drained *while holding it* — each returns a fully-buffered snapshot
      result: concurrent readers proceed in parallel, and no reader can
      observe a half-applied transaction (no torn reads);
    * lock waits bounded by ``lock_timeout`` raise the typed
      :class:`~repro.tx.errors.LockTimeoutError` without touching state.
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        schema: PGSchema | None = None,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = 16,
        batched_triggers: bool = True,
        incremental_triggers: bool = True,
        path: str | None = None,
        storage_io: StorageIO | None = None,
        group_commit_size: int = 1,
        checkpoint_every: int | None = None,
        thread_safe: bool = False,
        lock_manager: LockManager | None = None,
        lock_timeout: float | None = None,
        lock_name: str | None = None,
    ) -> None:
        if path is not None and graph is not None:
            raise ValueError(
                "pass either an in-memory graph or a durable path, not both: "
                "a durable session recovers its graph from the path"
            )
        self.store: DurableStore | None = None
        self.checkpoint_every = checkpoint_every
        recovered = None
        if path is not None:
            self.store = DurableStore(path, io=storage_io, group_commit_size=group_commit_size)
            recovered = self.store.open()
            graph = recovered.graph
        self.graph = graph or PropertyGraph()
        self.schema = schema
        self.clock = clock or _dt.datetime.now
        self.manager = TransactionManager(self.graph)
        self.registry = TriggerRegistry()
        self.engine = TriggerEngine(
            self.graph,
            self.registry,
            self.manager,
            clock=self.clock,
            max_cascade_depth=max_cascade_depth,
            batched_conditions=batched_triggers,
            incremental_conditions=incremental_triggers,
        )
        self._open_transaction: Optional[Transaction] = None
        self._active_result: Optional[Result] = None
        self._checkpointing = False
        if thread_safe or lock_manager is not None:
            self._locks: LockManager | None = lock_manager or LockManager(
                default_timeout=lock_timeout
            )
        else:
            self._locks = None
        self._lock_timeout = lock_timeout
        self._lock_name = lock_name or self.graph.name or "graph"
        self._tx_owner: int | None = None
        self.manager.add_before_commit_hook(self._on_before_commit)
        self.manager.add_after_commit_hook(self._on_after_commit)
        if self.store is not None:
            # Reinstall recovered triggers straight through the registry so
            # the restore itself is not re-logged to the WAL.
            for state in recovered.triggers:
                self.registry.install(state.source)
                if not state.enabled:
                    self.registry.stop(state.name)
            self.recovery = recovered
            self.manager.set_commit_log(self._log_commit)
            self.graph.ddl_listener = self.store.log_index
            if checkpoint_every is not None:
                self.manager.add_after_commit_hook(self._maybe_auto_checkpoint)

    # ------------------------------------------------------------------
    # concurrency guards
    # ------------------------------------------------------------------

    @property
    def thread_safe(self) -> bool:
        """True when this session serialises access through a lock manager."""
        return self._locks is not None

    def _write_guard(self):
        if self._locks is None:
            return contextlib.nullcontext()
        return self._locks.write(self._lock_name, timeout=self._lock_timeout)

    def _read_guard(self):
        if self._locks is None:
            return contextlib.nullcontext()
        return self._locks.read(self._lock_name, timeout=self._lock_timeout)

    # ------------------------------------------------------------------
    # trigger management
    # ------------------------------------------------------------------

    def create_trigger(self, trigger: str | TriggerDefinition) -> InstalledTrigger:
        """Install a PG-Trigger (CREATE TRIGGER text or definition object)."""
        with self._write_guard():
            installed = self.registry.install(trigger)
            if self.store is not None:
                self.store.log_trigger(
                    "install", installed.name, source=installed.definition.to_pg_trigger()
                )
            return installed

    def drop_trigger(self, name: str) -> TriggerDefinition:
        """Remove a trigger by name."""
        with self._write_guard():
            definition = self.registry.drop(name)
            if self.store is not None:
                self.store.log_trigger("drop", name)
            return definition

    def stop_trigger(self, name: str) -> None:
        """Pause a trigger without dropping it."""
        with self._write_guard():
            self.registry.stop(name)
            if self.store is not None:
                self.store.log_trigger("stop", name)

    def start_trigger(self, name: str) -> None:
        """Resume a paused trigger."""
        with self._write_guard():
            self.registry.start(name)
            if self.store is not None:
                self.store.log_trigger("start", name)

    def triggers(self) -> list[TriggerDefinition]:
        """All installed trigger definitions (creation order)."""
        return self.registry.definitions()

    def analyse_termination(self) -> TerminationReport:
        """Run the static termination analysis on the installed trigger set."""
        return analyse_termination(self.registry.definitions())

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def run(
        self,
        query: str,
        parameters: Mapping[str, Any] | None = None,
    ) -> Result:
        """Execute one openCypher statement and return its :class:`Result`.

        Outside an explicit transaction the statement runs in auto-commit
        mode: statement-time triggers (BEFORE/AFTER) fire at the statement
        boundary, ONCOMMIT triggers at the commit point, DETACHED triggers
        right after the commit.  Inside a :meth:`transaction` block only the
        statement-time triggers fire per statement; commit-time processing
        happens when the block exits.

        Read-only auto-commit statements are *streamed*: records are pulled
        lazily from the execution pipeline, and the backing transaction is
        committed when the stream is exhausted (or :meth:`Result.consume`
        is called) and rolled back if draining raises.  Statements with
        side effects — and every statement inside an explicit transaction —
        are executed to completion before ``run`` returns, so their writes
        and trigger firings are never deferred.  Running a new statement
        while a streamed result is still open first detaches that result
        (its remaining records are buffered), as in the Neo4j driver; if
        buffering the pending stream fails, its transaction is rolled
        back and the error surfaces here — before the new statement runs
        — rather than being swallowed.

        In thread-safe mode the same contract holds with one adjustment:
        read-only auto-commit statements are *snapshot reads* — executed
        and drained under the graph's shared read lock, then returned as
        an already-buffered :class:`Result` (concurrent readers run in
        parallel; writers wait).  Statements with side effects serialise
        on the exclusive write lock.
        """
        if self._locks is None:
            return self._run_single_threaded(query, parameters)
        if self._open_transaction is not None and self._tx_owner == threading.get_ident():
            # We are inside this thread's own transaction() block and
            # already hold the write lock.
            return self._run_in_transaction(self._open_transaction, query, parameters)
        if query_is_read_only(PLAN_CACHE.parse(query)):
            with self._locks.read(self._lock_name, timeout=self._lock_timeout):
                result = self._begin_streaming(query, parameters, register=False)
                # Drain while holding the shared lock: the caller gets a
                # consistent snapshot and never touches the engine again.
                result.rows
                return result
        with self._locks.write(self._lock_name, timeout=self._lock_timeout):
            return self._run_autocommit_write(query, parameters)

    def _run_single_threaded(
        self, query: str, parameters: Mapping[str, Any] | None
    ) -> Result:
        """The original (single-consumer) execution path, lazy reads included."""
        self._detach_active_result()
        if self._open_transaction is not None:
            return self._run_in_transaction(self._open_transaction, query, parameters)
        if not query_is_read_only(PLAN_CACHE.parse(query)):
            return self._run_autocommit_write(query, parameters)
        result = self._begin_streaming(query, parameters, register=True)
        return result

    def _run_autocommit_write(
        self, query: str, parameters: Mapping[str, Any] | None
    ) -> Result:
        """One write statement in its own transaction (commit included)."""
        tx = self.manager.begin()
        # Same code path as explicit transactions, plus the commit.
        try:
            result = self._run_in_transaction(tx, query, parameters)
            self.manager.commit(tx)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise
        return result

    def _begin_streaming(
        self, query: str, parameters: Mapping[str, Any] | None, register: bool
    ) -> Result:
        """Start a streamed read-only auto-commit statement.

        ``register`` keeps the session-level active-result bookkeeping of
        the single-threaded mode; snapshot reads pass False because they
        are drained before the lock is released and never stay pending.
        """
        started = time.perf_counter()
        tx = self.manager.begin()
        try:
            executor = QueryExecutor(
                self.graph, transaction=tx, parameters=parameters, clock=self.clock
            )
            columns, records = executor.stream(query)
        except Exception:
            if tx.is_active:
                self.manager.rollback(tx)
            raise
        result = Result(
            columns,
            records,
            executor.last_statistics,
            query=query,
            parameters=parameters,
            plan=self._plan_text(executor),
            on_success=lambda: self._finalize_streaming(tx),
            on_failure=lambda: self._abort_streaming(tx),
            started=started,
            available_after=(time.perf_counter() - started) * 1000,
        )
        if register:
            self._active_result = result
        return result

    def _run_in_transaction(
        self, tx: Transaction, query: str, parameters: Mapping[str, Any] | None
    ) -> Result:
        started = time.perf_counter()
        executor = QueryExecutor(
            self.graph, transaction=tx, parameters=parameters, clock=self.clock
        )
        columns, records = executor.stream(query)
        rows = list(records)
        self._finish_statement(tx)
        return self._wrap(columns, rows, executor, query, parameters, started)

    def _finish_statement(self, tx: Transaction) -> None:
        """Close the statement and fire its BEFORE/AFTER triggers."""
        delta = tx.end_statement()
        if not delta.is_empty():
            self.engine.run_statement_triggers(tx, delta)

    def _finalize_streaming(self, tx: Transaction) -> None:
        """Successful exhaustion of a streamed read: commit its transaction."""
        self._forget(tx)
        if tx.is_active:
            self._finish_statement(tx)
            self.manager.commit(tx)

    def _abort_streaming(self, tx: Transaction) -> None:
        """A streamed result failed mid-drain: roll its transaction back."""
        self._forget(tx)
        if tx.is_active:
            self.manager.rollback(tx)

    def _forget(self, tx: Transaction) -> None:
        del tx
        self._active_result = None

    def _detach_active_result(self) -> None:
        """Buffer and finalise the previous streamed result, if any.

        Keeps a pending stream from observing writes made by later
        statements (and from holding its auto-commit transaction open).
        """
        pending, self._active_result = self._active_result, None
        if pending is not None and not pending.consumed:
            pending.rows  # materialises the remainder and finalises

    def _wrap(
        self,
        columns: list[str],
        rows: list[dict[str, Any]],
        executor: QueryExecutor,
        query: str,
        parameters: Mapping[str, Any] | None,
        started: float,
    ) -> Result:
        elapsed = (time.perf_counter() - started) * 1000
        result = Result(
            columns,
            rows,
            executor.last_statistics,
            query=query,
            parameters=parameters,
            plan=self._plan_text(executor),
            started=started,
            available_after=elapsed,
            trigger_evaluation=(
                self.engine.evaluation_report() if len(self.registry) else None
            ),
        )
        result.summary().result_consumed_after = elapsed
        return result

    @staticmethod
    def _plan_text(executor: QueryExecutor) -> str | None:
        plan = executor.last_plan
        return plan.plan_description() if plan is not None else None

    def explain(self, query: str) -> str:
        """EXPLAIN: access paths and multi-pattern join order for ``query``.

        Same plan the next :meth:`run` of this text would use (shared
        global plan cache), without executing anything.
        """
        with self._read_guard():
            executor = QueryExecutor(self.graph, clock=self.clock)
            return executor.plan_description(query)

    def explain_triggers(self) -> dict[str, dict[str, Any]]:
        """Per-trigger evaluation observability (tiers, demotions, views).

        For every installed trigger: how many runs each evaluation tier
        handled (``incremental``/``batched``/``sequential``/``predicate``),
        every demotion down the ladder with its reason, and — for
        triggers with a compiled condition view — the view's current
        partial-match count and delta-maintenance counters, or the reason
        the condition was outside the compiled footprint.  The same
        report rides on every write statement's
        :attr:`~repro.cypher.result.ResultSummary.trigger_evaluation`.
        """
        with self._read_guard():
            return self.engine.evaluation_report()

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Group several :meth:`run` calls into one transaction.

        ONCOMMIT triggers see the union of all statements' changes and run
        when the block exits successfully; DETACHED triggers run after the
        commit.  On exception the transaction is rolled back and no commit-
        time trigger fires.

        In thread-safe mode the block holds the graph's exclusive write
        lock from entry to exit, so its statements — and its commit-time
        trigger cascade — form one isolated unit with respect to every
        other thread.
        """
        with self._write_guard():
            if self._open_transaction is not None:
                raise RuntimeError("a session transaction is already open")
            self._detach_active_result()
            tx = self.manager.begin()
            self._open_transaction = tx
            self._tx_owner = threading.get_ident()
            try:
                yield tx
            except Exception:
                self._open_transaction = None
                self._tx_owner = None
                if tx.is_active:
                    self.manager.rollback(tx)
                raise
            else:
                self._open_transaction = None
                self._tx_owner = None
                self.manager.commit(tx)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True when the session persists to disk (``path=`` was given)."""
        return self.store is not None

    def checkpoint(self) -> None:
        """Snapshot the current state and empty the write-ahead log.

        Requires a durable session and no open explicit transaction (the
        snapshot must describe a committed state).
        """
        store = self._require_store()
        with self._write_guard():
            if self._open_transaction is not None:
                raise RuntimeError("cannot checkpoint while a session transaction is open")
            self._detach_active_result()
            store.checkpoint(self.graph, self._trigger_states())

    def flush(self) -> None:
        """Force any group-commit-deferred WAL appends to stable storage."""
        store = self._require_store()
        with self._write_guard():
            store.sync()

    def close(self) -> None:
        """Flush and release the durable store (no-op for in-memory sessions).

        Any WAL records still sitting in the group-commit buffer are synced
        before the handles are released, so an acknowledged commit can never
        be lost by closing the session.
        """
        if self.store is None:
            return
        with self._write_guard():
            self._detach_active_result()
            self.store.close()

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_store(self) -> DurableStore:
        if self.store is None:
            raise RuntimeError("this session is in-memory; construct it with path=... ")
        return self.store

    def _trigger_states(self) -> list[TriggerState]:
        return [
            TriggerState(t.name, t.definition.to_pg_trigger(), enabled=t.enabled)
            for t in self.registry.ordered()
        ]

    def _log_commit(self, tx: Transaction, delta: GraphDelta) -> None:
        """Commit-log sink: write the committed delta's WAL record."""
        self.store.log_transaction(delta)

    def _maybe_auto_checkpoint(self, tx: Transaction, delta: GraphDelta) -> None:
        if self._checkpointing or self._open_transaction is not None:
            return
        if self.store.records_since_checkpoint < (self.checkpoint_every or 0):
            return
        self._checkpointing = True
        try:
            self.store.checkpoint(self.graph, self._trigger_states())
        finally:
            self._checkpointing = False

    # ------------------------------------------------------------------
    # commit hooks (ONCOMMIT / DETACHED action times)
    # ------------------------------------------------------------------

    def _on_before_commit(self, tx: Transaction, delta: GraphDelta) -> None:
        if tx.metadata.get("source") == "detached-trigger":
            # The autonomous transaction's own commit processing is driven by
            # the engine itself (its cascade already covers ONCOMMIT-style
            # reactions); avoid re-entrant processing here.
            return
        if not delta.is_empty():
            self.engine.run_commit_triggers(tx, delta)

    def _on_after_commit(self, tx: Transaction, delta: GraphDelta) -> None:
        if tx.metadata.get("source") == "detached-trigger":
            return
        if not delta.is_empty():
            self.engine.run_detached_triggers(delta)

    # ------------------------------------------------------------------
    # schema integration and introspection
    # ------------------------------------------------------------------

    def validate(self) -> list[Violation]:
        """Validate the graph against the session's PG-Schema (if any)."""
        if self.schema is None:
            return []
        with self._read_guard():
            return validate_graph(self.graph, self.schema)

    def alerts(self) -> list[dict[str, Any]]:
        """Convenience accessor for the ``Alert`` nodes the paper's triggers produce."""
        with self._read_guard():
            return [dict(node.properties) for node in self.graph.nodes_with_label("Alert")]

    def firing_log(self) -> list[str]:
        """Human-readable audit log of trigger firings."""
        return [str(firing) for firing in self.engine.firings]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphSession(nodes={self.graph.node_count()}, "
            f"relationships={self.graph.relationship_count()}, "
            f"triggers={len(self.registry)})"
        )
