"""PG-Triggers: the paper's primary contribution, as an executable engine.

Public surface:

* :class:`GraphSession` — graph + transactions + Cypher + triggers;
* :func:`parse_trigger` / :func:`parse_triggers` — the Figure 1 grammar;
* :class:`TriggerDefinition` and its enums — the trigger abstract syntax;
* :class:`TriggerRegistry`, :class:`TriggerEngine` — lower-level pieces for
  embedding the engine in other substrates (the APOC/Memgraph emulations
  reuse them);
* :func:`analyse_termination` — the triggering-graph termination analysis.
"""

from .ast import (
    ActionTime,
    EventType,
    Granularity,
    InstalledTrigger,
    ItemKind,
    ReferencingAlias,
    TransitionVariable,
    TriggerDefinition,
)
from .context import ExecutionContext, TriggerBindings, TriggerFiring, bindings_for
from .engine import TriggerEngine
from .errors import (
    TriggerDefinitionError,
    TriggerError,
    TriggerExecutionError,
    TriggerRecursionError,
    TriggerRegistrationError,
    TriggerSyntaxError,
)
from .events import Activation, compute_activations
from .parser import parse_trigger, parse_triggers
from .registry import TriggerRegistry, validate_definition
from .session import GraphSession
from .termination import (
    PotentialEvent,
    TerminationReport,
    TriggeringGraph,
    analyse_termination,
    build_triggering_graph,
    statement_events,
)

__all__ = [
    "Activation",
    "ActionTime",
    "EventType",
    "ExecutionContext",
    "GraphSession",
    "Granularity",
    "InstalledTrigger",
    "ItemKind",
    "PotentialEvent",
    "ReferencingAlias",
    "TerminationReport",
    "TransitionVariable",
    "TriggerBindings",
    "TriggerDefinition",
    "TriggerDefinitionError",
    "TriggerEngine",
    "TriggerError",
    "TriggerExecutionError",
    "TriggerFiring",
    "TriggerRecursionError",
    "TriggerRegistry",
    "TriggerRegistrationError",
    "TriggerSyntaxError",
    "TriggeringGraph",
    "analyse_termination",
    "bindings_for",
    "build_triggering_graph",
    "compute_activations",
    "parse_trigger",
    "parse_triggers",
    "statement_events",
    "validate_definition",
]
