"""Parser for the PG-Trigger syntax of the paper's Figure 1.

The grammar::

    CREATE TRIGGER <name> <time> <event>
    ON <label>[.<property>]
    [REFERENCING <alias for old or new>...]
    FOR <granularity> <item>
    [WHEN <condition>]
    BEGIN
    <statement>
    END

    <time>        ::= BEFORE | AFTER | ONCOMMIT | DETACHED
    <event>       ::= CREATE | DELETE | SET | REMOVE
    <granularity> ::= EACH | ALL
    <item>        ::= NODE | RELATIONSHIP        (plural forms accepted)
    <alias…>      ::= {OLD | NEW | OLDNODES | NEWNODES | OLDRELS | NEWRELS} AS <alias>

The ``<condition>`` and ``<statement>`` bodies are openCypher fragments;
the parser captures them as text (delimiting the statement by matching
nested BEGIN/END pairs) and leaves their interpretation to the trigger
engine, which is exactly the separation the paper's translation schemes
rely on.

The trigger text is tokenized with the Cypher lexer so that strings and
comments never confuse the keyword scan.
"""

from __future__ import annotations

import functools as _functools

from ..cypher.lexer import Token, TokenType, tokenize
from ..cypher.errors import CypherSyntaxError
from .ast import (
    ActionTime,
    EventType,
    Granularity,
    ItemKind,
    ReferencingAlias,
    TransitionVariable,
    TriggerDefinition,
)
from .errors import TriggerSyntaxError

_ITEM_WORDS = {
    "NODE": ItemKind.NODE,
    "NODES": ItemKind.NODE,
    "RELATIONSHIP": ItemKind.RELATIONSHIP,
    "RELATIONSHIPS": ItemKind.RELATIONSHIP,
    "REL": ItemKind.RELATIONSHIP,
    "RELS": ItemKind.RELATIONSHIP,
}


class _TriggerParser:
    """Token-level parser for one CREATE TRIGGER statement."""

    def __init__(self, text: str) -> None:
        self.text = text
        try:
            self.tokens = tokenize(text)
        except CypherSyntaxError as exc:
            raise TriggerSyntaxError(f"cannot tokenize trigger text: {exc}") from exc
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def at_end(self) -> bool:
        return self.current.type == TokenType.EOF

    def advance(self) -> Token:
        token = self.current
        if not self.at_end():
            self.pos += 1
        return token

    def word(self, token: Token) -> str:
        """Uppercase view of a keyword/identifier token (empty otherwise)."""
        if token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return token.value.upper()
        return ""

    def at_word(self, *words: str) -> bool:
        return self.word(self.current) in words

    def expect_word(self, *words: str) -> str:
        if not self.at_word(*words):
            raise TriggerSyntaxError(
                f"expected {' or '.join(words)}, found {self.current.value!r} "
                f"(line {self.current.line})"
            )
        return self.word(self.advance())

    def expect_name(self) -> str:
        token = self.current
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.STRING):
            self.advance()
            return token.value
        raise TriggerSyntaxError(
            f"expected a name, found {token.value!r} (line {token.line})"
        )

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type in (TokenType.PUNCTUATION, TokenType.OPERATOR) and token.value == value:
            self.advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------

    def parse(self) -> TriggerDefinition:
        self.expect_word("CREATE")
        self.expect_word("TRIGGER")
        name = self.expect_name()
        time = ActionTime(self.expect_word(*[t.value for t in ActionTime]))
        event = EventType(self.expect_word(*[e.value for e in EventType]))

        self.expect_word("ON")
        label = self.expect_name()
        prop = None
        if self.accept_punct("."):
            prop = self.expect_name()

        referencing: list[ReferencingAlias] = []
        if self.at_word("REFERENCING"):
            self.advance()
            referencing = self._parse_referencing()

        self.expect_word("FOR")
        granularity = Granularity(self.expect_word("EACH", "ALL"))
        item = _ITEM_WORDS[self.expect_word(*_ITEM_WORDS)]

        condition = None
        if self.at_word("WHEN"):
            when_token = self.advance()
            condition = self._capture_until_begin(when_token)

        begin_token = self.current
        self.expect_word("BEGIN")
        statement = self._capture_statement(begin_token)

        if not self.at_end():
            raise TriggerSyntaxError(
                f"unexpected trailing input after END: {self.current.value!r}"
            )
        if prop is not None and event in (EventType.CREATE, EventType.DELETE):
            raise TriggerSyntaxError(
                f"trigger {name!r}: a property target ({label}.{prop}) is only legal "
                "for SET and REMOVE events"
            )
        return TriggerDefinition(
            name=name,
            time=time,
            event=event,
            label=label,
            property=prop,
            referencing=tuple(referencing),
            granularity=granularity,
            item=item,
            condition=condition,
            statement=statement,
        )

    def _parse_referencing(self) -> list[ReferencingAlias]:
        aliases: list[ReferencingAlias] = []
        variable_words = {v.value for v in TransitionVariable}
        while self.at_word(*variable_words):
            variable = TransitionVariable(self.word(self.advance()))
            self.expect_word("AS")
            alias = self.expect_name()
            aliases.append(ReferencingAlias(variable=variable, alias=alias))
            self.accept_punct(",")
        if not aliases:
            raise TriggerSyntaxError("REFERENCING requires at least one '<variable> AS <alias>'")
        return aliases

    def _capture_until_begin(self, after: Token) -> str:
        """Capture raw text from after the WHEN keyword up to the top-level BEGIN."""
        start_offset = after.position + len(after.value)
        while not self.at_end() and not self.at_word("BEGIN"):
            self.advance()
        if self.at_end():
            raise TriggerSyntaxError("trigger is missing a BEGIN … END action block")
        end_offset = self.current.position
        return self.text[start_offset:end_offset].strip()

    def _capture_statement(self, begin_token: Token) -> str:
        """Capture the BEGIN…END body, honouring nested BEGIN/END pairs.

        ``END`` also terminates openCypher CASE expressions, so a CASE
        counter keeps those ENDs from closing the trigger block early.
        """
        start_offset = begin_token.position + len("BEGIN")
        depth = 1
        case_depth = 0
        while not self.at_end():
            word = self.word(self.current)
            if word == "CASE":
                case_depth += 1
            elif word == "BEGIN":
                depth += 1
            elif word == "END":
                if case_depth > 0:
                    case_depth -= 1
                else:
                    depth -= 1
                    if depth == 0:
                        end_offset = self.current.position
                        self.advance()
                        statement = self.text[start_offset:end_offset].strip()
                        if not statement:
                            raise TriggerSyntaxError("trigger action statement is empty")
                        return statement
            self.advance()
        raise TriggerSyntaxError("trigger action block is missing its closing END")


@_functools.lru_cache(maxsize=512)
def _parse_trigger_cached(text: str) -> TriggerDefinition:
    return _TriggerParser(text).parse()


def parse_trigger(text: str) -> TriggerDefinition:
    """Parse one CREATE TRIGGER statement into a :class:`TriggerDefinition`.

    Definitions are frozen dataclasses, so repeated parses of the same text
    (benchmark rounds, emulator reinstalls) share one cached object.
    """
    return _parse_trigger_cached(text)


def parse_triggers(text: str) -> list[TriggerDefinition]:
    """Parse several CREATE TRIGGER statements separated by semicolons or whitespace.

    Statement boundaries are found by scanning for top-level ``CREATE
    TRIGGER`` keywords outside BEGIN/END blocks, so trigger bodies may
    freely contain CREATE clauses.
    """
    tokens = tokenize(text)
    boundaries: list[int] = []
    depth = 0
    case_depth = 0
    for index, token in enumerate(tokens):
        if token.type not in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            continue
        word = token.value.upper()
        if word == "CASE":
            case_depth += 1
        elif word == "BEGIN":
            depth += 1
        elif word == "END":
            if case_depth > 0:
                case_depth -= 1
            else:
                depth = max(0, depth - 1)
        elif (
            word == "CREATE"
            and depth == 0
            and index + 1 < len(tokens)
            and tokens[index + 1].value.upper() == "TRIGGER"
        ):
            boundaries.append(token.position)
    if not boundaries:
        raise TriggerSyntaxError("no CREATE TRIGGER statement found")
    boundaries.append(len(text))
    definitions: list[TriggerDefinition] = []
    for start, end in zip(boundaries, boundaries[1:]):
        fragment = text[start:end].strip().rstrip(";").strip()
        if fragment:
            definitions.append(parse_trigger(fragment))
    return definitions
