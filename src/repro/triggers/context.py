"""Execution contexts and transition-variable binding.

Each trigger execution receives:

* *bindings* — variables visible to the WHEN condition and to the action
  statement.  For item granularity these are ``OLD``/``NEW`` (and their
  aliases); for set granularity they are ``OLDNODES``/``NEWNODES`` or
  ``OLDRELS``/``NEWRELS`` (and aliases) bound to lists;
* *virtual labels* — label-shaped views of the same sets, so that condition
  queries written as patterns (``MATCH (pn:NEWNODES)-[:TreatedAt]-(h)``)
  work exactly as in the paper's examples;
* an :class:`ExecutionContext` frame pushed on the engine's stack, which is
  how the SQL3-style cascading semantics (and its depth limit) are
  implemented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .ast import Granularity, TransitionVariable, TriggerDefinition
from .events import Activation


@dataclass(frozen=True)
class TriggerBindings:
    """Variables and virtual labels exposed to one trigger execution."""

    variables: dict[str, Any] = field(default_factory=dict)
    virtual_labels: dict[str, set[int]] = field(default_factory=dict)


def transition_names(trigger: TriggerDefinition) -> set[str]:
    """Every name an activation's bindings may use for OLD/NEW.

    Shared by the batched and incremental evaluators: a condition that
    uses one of these names as a label or pattern variable resolves
    per-activation state, which a shared evaluation pass cannot model.
    """
    names = {"OLD", "NEW"}
    for alias in trigger.referencing:
        names.add(alias.alias)
    return names


def item_bindings(trigger: TriggerDefinition, activation: Activation) -> TriggerBindings:
    """Bindings for one FOR EACH activation (OLD/NEW and aliases)."""
    if not trigger.referencing:
        # Hot path: without REFERENCING aliases the names are fixed.
        variables = {"OLD": activation.old, "NEW": activation.new}
        virtual_labels: dict[str, set[int]] = {}
        if activation.old is not None:
            virtual_labels["OLD"] = {activation.old.id}
        if activation.new is not None:
            virtual_labels["NEW"] = {activation.new.id}
        return TriggerBindings(variables=variables, virtual_labels=virtual_labels)
    variables = {}
    virtual_labels = {}
    names = {
        TransitionVariable.OLD: trigger.alias_for(TransitionVariable.OLD),
        TransitionVariable.NEW: trigger.alias_for(TransitionVariable.NEW),
    }
    variables[names[TransitionVariable.OLD]] = activation.old
    variables[names[TransitionVariable.NEW]] = activation.new
    # The default names stay visible even when aliases are declared, so a
    # condition can use either form.
    variables.setdefault("OLD", activation.old)
    variables.setdefault("NEW", activation.new)
    for name, value in list(variables.items()):
        if value is not None:
            virtual_labels[name] = {value.id}
    return TriggerBindings(variables=variables, virtual_labels=virtual_labels)


def set_bindings(trigger: TriggerDefinition, activations: list[Activation]) -> TriggerBindings:
    """Bindings for one FOR ALL execution (OLDNODES/NEWNODES/OLDRELS/NEWRELS)."""
    old_items = [a.old for a in activations if a.old is not None]
    new_items = [a.new for a in activations if a.new is not None]
    if trigger.item.value == "NODE":
        old_variable, new_variable = TransitionVariable.OLDNODES, TransitionVariable.NEWNODES
    else:
        old_variable, new_variable = TransitionVariable.OLDRELS, TransitionVariable.NEWRELS

    variables: dict[str, Any] = {}
    virtual_labels: dict[str, set[int]] = {}
    for variable, items in ((old_variable, old_items), (new_variable, new_items)):
        alias = trigger.alias_for(variable)
        variables[alias] = list(items)
        variables.setdefault(variable.value, list(items))
        ids = {item.id for item in items}
        virtual_labels[alias] = ids
        virtual_labels.setdefault(variable.value, ids)
    return TriggerBindings(variables=variables, virtual_labels=virtual_labels)


def bindings_for(
    trigger: TriggerDefinition, activations: list[Activation]
) -> list[TriggerBindings]:
    """One bindings object per execution of ``trigger`` over ``activations``.

    FOR EACH produces one entry per activation; FOR ALL produces a single
    entry covering the whole set.
    """
    if trigger.granularity == Granularity.EACH:
        return [item_bindings(trigger, activation) for activation in activations]
    return [set_bindings(trigger, activations)]


@dataclass
class ExecutionContext:
    """One frame of the trigger execution stack (SQL3-style contexts).

    The stack records which trigger is currently executing and at which
    cascade depth; it powers the recursion limit, error reporting and the
    execution traces surfaced by the benchmark harness.
    """

    trigger_name: str
    depth: int
    activation_count: int
    granularity: Granularity
    parent: Optional["ExecutionContext"] = None

    def chain(self) -> list[str]:
        """Trigger names from the outermost frame to this one."""
        names: list[str] = []
        frame: Optional[ExecutionContext] = self
        while frame is not None:
            names.append(frame.trigger_name)
            frame = frame.parent
        return list(reversed(names))


@dataclass(frozen=True, slots=True)
class TriggerFiring:
    """Audit record of one trigger statement execution (kept by the engine).

    ``slots=True``: one record is appended per activation, so construction
    cost is visible at firehose rates.
    """

    trigger_name: str
    depth: int
    activation_count: int
    condition_rows: int
    executed: bool
    action_time: str

    def __str__(self) -> str:
        status = "executed" if self.executed else "suppressed"
        return (
            f"{self.trigger_name} [{self.action_time}] depth={self.depth} "
            f"activations={self.activation_count} {status}"
        )
