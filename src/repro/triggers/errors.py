"""Exception hierarchy for the PG-Trigger engine."""

from __future__ import annotations


class TriggerError(Exception):
    """Base class for all trigger errors."""


class TriggerSyntaxError(TriggerError):
    """Raised when a CREATE TRIGGER statement cannot be parsed."""


class TriggerDefinitionError(TriggerError):
    """Raised when a trigger definition is illegal.

    Covers the legality constraints of Section 4.2: a trigger may not
    monitor the setting/removal of its own target label, its statement may
    not set or remove the target label, BEFORE triggers may only condition
    NEW states, and set-granularity transition variables must match the
    trigger's item kind.
    """


class TriggerRegistrationError(TriggerError):
    """Raised on duplicate names or operations on unknown triggers."""


class TriggerExecutionError(TriggerError):
    """Raised when a trigger's condition or statement fails at runtime."""

    def __init__(self, trigger_name: str, phase: str, cause: Exception) -> None:
        super().__init__(f"trigger {trigger_name!r} failed during {phase}: {cause}")
        self.trigger_name = trigger_name
        self.phase = phase
        self.cause = cause


class TriggerRecursionError(TriggerError):
    """Raised when cascading trigger executions exceed the configured depth.

    This is the runtime safety net backing the static termination analysis
    of :mod:`repro.triggers.termination` (cf. the paper's discussion of the
    potentially non-terminating ``MoveToNearHospital`` trigger).
    """

    def __init__(self, depth: int, chain: list[str]) -> None:
        trail = " -> ".join(chain[-8:])
        super().__init__(
            f"trigger cascade exceeded the maximum depth of {depth} (recent chain: {trail})"
        )
        self.depth = depth
        self.chain = chain
