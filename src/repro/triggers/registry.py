"""Trigger registry: installation, ordering, enable/disable.

Triggers with the same action time are executed in a total order given by
their creation time (the paper's Section 4.2 prioritisation rule); the
registry records an increasing *sequence number* at installation and hands
back triggers sorted by it.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable

from ..cypher.ast import (
    ForeachClause,
    Query,
    RemoveClause,
    RemoveLabelsItem,
    SetClause,
    SetLabelsItem,
)
from ..cypher.errors import CypherError
from ..cypher.planner import PLAN_CACHE
from .ast import (
    ActionTime,
    EventType,
    Granularity,
    InstalledTrigger,
    TriggerDefinition,
)
from .errors import TriggerDefinitionError, TriggerRegistrationError
from .parser import parse_trigger


class TriggerRegistry:
    """Holds installed triggers, totally ordered by creation time."""

    def __init__(self) -> None:
        self._triggers: dict[str, InstalledTrigger] = {}
        self._sequence = itertools.count(1)
        # ordered() is on the per-statement hot path of the trigger engine;
        # memoise the sorted, time-filtered sequences (as tuples, so no
        # caller can corrupt an entry) until the trigger set changes.  The
        # `enabled` flag is filtered live on every call — it is a public
        # field that callers may toggle directly, so it must never be baked
        # into a cached result.
        self._order_cache: dict[tuple, tuple[InstalledTrigger, ...]] = {}
        # DDL and the order-cache rebuild may race with trigger evaluation
        # on other graphs' threads that share this registry object; the
        # lock keeps install/drop atomic with respect to cache rebuilds.
        self._lock = threading.RLock()
        # Bumped on every install/drop so derived per-trigger state (the
        # incremental condition views) can prune entries for triggers that
        # were dropped or re-installed without scanning on every delta.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter of trigger-set changes (install/drop)."""
        return self._version

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def install(self, trigger: TriggerDefinition | str) -> InstalledTrigger:
        """Install a trigger (from a definition or CREATE TRIGGER text).

        Validates the legality constraints of Section 4.2 before accepting
        the trigger; raises :class:`TriggerDefinitionError` on violation and
        :class:`TriggerRegistrationError` on duplicate names.
        """
        definition = parse_trigger(trigger) if isinstance(trigger, str) else trigger
        validate_definition(definition)
        with self._lock:
            if definition.name in self._triggers:
                raise TriggerRegistrationError(
                    f"trigger {definition.name!r} is already installed"
                )
            installed = InstalledTrigger(definition=definition, sequence=next(self._sequence))
            self._triggers[definition.name] = installed
            self._order_cache.clear()
            self._version += 1
            return installed

    def drop(self, name: str) -> TriggerDefinition:
        """Remove a trigger by name, returning its definition."""
        with self._lock:
            installed = self._require(name)
            del self._triggers[name]
            self._order_cache.clear()
            self._version += 1
            return installed.definition

    def drop_all(self) -> int:
        """Remove every trigger, returning how many were removed."""
        with self._lock:
            count = len(self._triggers)
            self._triggers.clear()
            self._order_cache.clear()
            self._version += 1
            return count

    def stop(self, name: str) -> None:
        """Pause a trigger (it stays installed but no longer activates)."""
        self._require(name).enabled = False

    def start(self, name: str) -> None:
        """Resume a paused trigger."""
        self._require(name).enabled = True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> InstalledTrigger:
        """Fetch an installed trigger by name."""
        return self._require(name)

    def __contains__(self, name: str) -> bool:
        return name in self._triggers

    def __len__(self) -> int:
        return len(self._triggers)

    def names(self) -> list[str]:
        """Names of all installed triggers, in creation order."""
        return [t.name for t in self.ordered()]

    def ordered(
        self,
        times: Iterable[ActionTime] | None = None,
        enabled_only: bool = False,
    ) -> list[InstalledTrigger]:
        """Installed triggers sorted by creation sequence, optionally filtered."""
        times = tuple(times) if times is not None else None  # may be a one-shot iterator
        with self._lock:
            cached = self._order_cache.get(times)
            if cached is None:
                selected = sorted(self._triggers.values(), key=lambda t: t.sequence)
                if times is not None:
                    wanted = set(times)
                    selected = [t for t in selected if t.definition.time in wanted]
                cached = tuple(selected)
                self._order_cache[times] = cached
        if enabled_only:
            return [t for t in cached if t.enabled]
        return list(cached)

    def definitions(self) -> list[TriggerDefinition]:
        """All definitions in creation order."""
        return [t.definition for t in self.ordered()]

    def _require(self, name: str) -> InstalledTrigger:
        if name not in self._triggers:
            raise TriggerRegistrationError(f"no trigger named {name!r} is installed")
        return self._triggers[name]


# ---------------------------------------------------------------------------
# definition-level validation (Section 4.2 legality constraints)
# ---------------------------------------------------------------------------


def validate_definition(definition: TriggerDefinition) -> None:
    """Check a trigger definition against the paper's legality constraints."""
    _check_property_target(definition)
    _check_referencing(definition)
    _check_statement(definition)


def _check_property_target(definition: TriggerDefinition) -> None:
    if definition.property is not None and definition.event in (
        EventType.CREATE,
        EventType.DELETE,
    ):
        raise TriggerDefinitionError(
            f"trigger {definition.name!r}: property targets are only legal for SET/REMOVE events"
        )


def _check_referencing(definition: TriggerDefinition) -> None:
    for alias in definition.referencing:
        variable = alias.variable
        if definition.granularity == Granularity.EACH and variable.is_set_level:
            raise TriggerDefinitionError(
                f"trigger {definition.name!r}: {variable.value} is a set-level transition "
                "variable and requires FOR ALL granularity"
            )
        if definition.granularity == Granularity.ALL and not variable.is_set_level:
            raise TriggerDefinitionError(
                f"trigger {definition.name!r}: {variable.value} is an item-level transition "
                "variable and requires FOR EACH granularity"
            )
        expected_kind = variable.item_kind
        if expected_kind is not None and expected_kind != definition.item:
            raise TriggerDefinitionError(
                f"trigger {definition.name!r}: {variable.value} refers to "
                f"{expected_kind.value.lower()}s but the trigger is FOR "
                f"{definition.granularity.value} {definition.item.value}"
            )
        if variable.is_old and definition.event == EventType.CREATE:
            raise TriggerDefinitionError(
                f"trigger {definition.name!r}: {variable.value} is undefined for CREATE events"
            )
        if not variable.is_old and definition.event in (EventType.DELETE, EventType.REMOVE):
            raise TriggerDefinitionError(
                f"trigger {definition.name!r}: {variable.value} is undefined for "
                f"{definition.event.value} events"
            )


def _check_statement(definition: TriggerDefinition) -> None:
    """The statement may not set/remove the target label; BEFORE may only SET/REMOVE."""
    try:
        parsed = PLAN_CACHE.parse(definition.statement)
    except CypherError as exc:
        raise TriggerDefinitionError(
            f"trigger {definition.name!r}: cannot parse action statement: {exc}"
        ) from exc
    touched = _labels_written(parsed)
    if definition.label in touched:
        raise TriggerDefinitionError(
            f"trigger {definition.name!r}: the action statement sets or removes the trigger's "
            f"target label {definition.label!r}, which Section 4.2 disallows"
        )
    if definition.time == ActionTime.BEFORE and not parsed.is_read_only:
        for clause in parsed.clauses:
            if not isinstance(clause, (SetClause, RemoveClause)):
                from ..cypher.ast import MatchClause, UnwindClause, WithClause

                if isinstance(clause, (MatchClause, UnwindClause, WithClause)):
                    continue
                raise TriggerDefinitionError(
                    f"trigger {definition.name!r}: BEFORE triggers may only condition NEW "
                    "states (SET/REMOVE); other updates require AFTER, ONCOMMIT or DETACHED"
                )


def _labels_written(parsed: Query) -> set[str]:
    """Labels that a statement adds or removes via SET/REMOVE clauses."""
    written: set[str] = set()

    def visit(clauses) -> None:
        for clause in clauses:
            if isinstance(clause, SetClause):
                for item in clause.items:
                    if isinstance(item, SetLabelsItem):
                        written.update(item.labels)
            elif isinstance(clause, RemoveClause):
                for item in clause.items:
                    if isinstance(item, RemoveLabelsItem):
                        written.update(item.labels)
            elif isinstance(clause, ForeachClause):
                visit(clause.body)

    visit(parsed.clauses)
    return written
