"""Event model: deriving trigger activations from graph deltas.

Given the :class:`~repro.graph.delta.GraphDelta` produced by a statement or
transaction, this module computes, for each installed trigger, the list of
:class:`Activation` records (the affected items with their OLD and NEW
states) following the scheme of the paper's Table 3:

============================  ==========================  =====================
event                          OLD                         NEW
============================  ==========================  =====================
CREATE node/relationship       —                           the created item
DELETE node/relationship       the deleted item            —
SET label                      —                           item after assignment
REMOVE label                   item before removal         —
SET property                   item with the old value     item with the new value
REMOVE property                item with the old value     —
============================  ==========================  =====================

Targeting: a trigger ``ON label`` selects changes whose item carries
``label`` (for relationships, whose type equals ``label``); ``ON
label.property`` additionally restricts SET/REMOVE to that property.  Per
the legality rule of Section 4.2, assignments/removals of the target label
itself never activate the trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graph.delta import GraphDelta
from ..graph.model import Node, Relationship
from .ast import EventType, ItemKind, TriggerDefinition

#: ``Activation`` has a field named ``property`` (the property involved in a
#: SET/REMOVE event), which shadows the builtin inside the class body.
_builtin_property = property


@dataclass(frozen=True)
class Activation:
    """One (item, OLD, NEW) change that activates a trigger."""

    item: Node | Relationship
    old: Optional[Node | Relationship]
    new: Optional[Node | Relationship]
    #: The property involved, for SET/REMOVE property events.
    property: Optional[str] = None

    @_builtin_property
    def item_id(self) -> int:
        """Id of the affected item."""
        return self.item.id


def compute_activations(trigger: TriggerDefinition, delta: GraphDelta) -> list[Activation]:
    """All activations of ``trigger`` caused by the changes in ``delta``."""
    if trigger.item == ItemKind.NODE:
        return _node_activations(trigger, delta)
    return _relationship_activations(trigger, delta)


# ---------------------------------------------------------------------------
# nodes
# ---------------------------------------------------------------------------


def _node_activations(trigger: TriggerDefinition, delta: GraphDelta) -> list[Activation]:
    label = trigger.label
    activations: list[Activation] = []

    if trigger.event == EventType.CREATE:
        for node in delta.created_nodes:
            if label in node.labels:
                activations.append(Activation(item=node, old=None, new=node))
        return activations

    if trigger.event == EventType.DELETE:
        for node in delta.deleted_nodes:
            if label in node.labels:
                activations.append(Activation(item=node, old=node, new=None))
        return activations

    if trigger.event == EventType.SET:
        if trigger.property is None:
            # Any label (other than the target label) assigned to a target
            # node, plus any property assigned on a target node.
            for assignment in delta.assigned_labels:
                if assignment.label == label:
                    continue
                if label in assignment.node.labels:
                    activations.append(
                        Activation(item=assignment.node, old=None, new=assignment.node)
                    )
            for change in delta.node_property_assignments():
                if label in change.item.labels:
                    activations.append(_property_set_activation(change))
        else:
            for change in delta.node_property_assignments():
                if change.key == trigger.property and label in change.item.labels:
                    activations.append(_property_set_activation(change))
        return activations

    # EventType.REMOVE
    if trigger.property is None:
        for removal in delta.removed_labels:
            if removal.label == label:
                continue
            if label in removal.node.labels:
                activations.append(Activation(item=removal.node, old=removal.node, new=None))
        for change in delta.node_property_removals():
            if label in change.item.labels:
                activations.append(_property_remove_activation(change))
    else:
        for change in delta.node_property_removals():
            if change.key == trigger.property and label in change.item.labels:
                activations.append(_property_remove_activation(change))
    return activations


# ---------------------------------------------------------------------------
# relationships
# ---------------------------------------------------------------------------


def _relationship_activations(trigger: TriggerDefinition, delta: GraphDelta) -> list[Activation]:
    label = trigger.label
    activations: list[Activation] = []

    if trigger.event == EventType.CREATE:
        for rel in delta.created_relationships:
            if rel.type == label:
                activations.append(Activation(item=rel, old=None, new=rel))
        return activations

    if trigger.event == EventType.DELETE:
        for rel in delta.deleted_relationships:
            if rel.type == label:
                activations.append(Activation(item=rel, old=rel, new=None))
        return activations

    if trigger.event == EventType.SET:
        for change in delta.relationship_property_assignments():
            if change.item.type != label:
                continue
            if trigger.property is None or change.key == trigger.property:
                activations.append(_property_set_activation(change))
        return activations

    # EventType.REMOVE
    for change in delta.relationship_property_removals():
        if change.item.type != label:
            continue
        if trigger.property is None or change.key == trigger.property:
            activations.append(_property_remove_activation(change))
    return activations


# ---------------------------------------------------------------------------
# helpers building OLD snapshots for property changes
# ---------------------------------------------------------------------------


def _with_property(item: Node | Relationship, key: str, value) -> Node | Relationship:
    """Return a snapshot of ``item`` with ``key`` set to ``value`` (or absent)."""
    properties = dict(item.properties)
    if value is None:
        properties.pop(key, None)
    else:
        properties[key] = value
    if isinstance(item, Node):
        return item.with_updates(properties=properties)
    return item.with_updates(properties=properties)


def _property_set_activation(change) -> Activation:
    old_item = _with_property(change.item, change.key, change.old)
    new_item = _with_property(change.item, change.key, change.new)
    return Activation(item=change.item, old=old_item, new=new_item, property=change.key)


def _property_remove_activation(change) -> Activation:
    old_item = _with_property(change.item, change.key, change.old)
    return Activation(item=change.item, old=old_item, new=None, property=change.key)
