"""PG-Trigger definitions: the abstract syntax of Figure 1.

A :class:`TriggerDefinition` captures everything the CREATE TRIGGER
statement declares — name, action time, event, target label (and optional
property), transition-variable aliases, granularity, item kind, condition
and action statement.  The condition and statement bodies are kept as
openCypher text (plus their parsed form) because that is how the paper
defines them and how the APOC/Memgraph translators consume them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: The :class:`TriggerDefinition` dataclass has a field named ``property``
#: (matching the paper's ``ON <label>.<property>`` clause), which shadows the
#: ``property`` builtin inside the class body; keep an alias for decorators.
_builtin_property = property


class ActionTime(enum.Enum):
    """When the trigger's condition is considered and its action executed."""

    BEFORE = "BEFORE"
    AFTER = "AFTER"
    ONCOMMIT = "ONCOMMIT"
    DETACHED = "DETACHED"


class EventType(enum.Enum):
    """The kinds of data changes a trigger can monitor."""

    CREATE = "CREATE"
    DELETE = "DELETE"
    SET = "SET"
    REMOVE = "REMOVE"


class Granularity(enum.Enum):
    """FOR EACH (item-level) vs FOR ALL (set-level) execution."""

    EACH = "EACH"
    ALL = "ALL"


class ItemKind(enum.Enum):
    """Whether the trigger targets nodes or relationships."""

    NODE = "NODE"
    RELATIONSHIP = "RELATIONSHIP"


class TransitionVariable(enum.Enum):
    """The transition variables of Section 4.2 that can be renamed with AS."""

    OLD = "OLD"
    NEW = "NEW"
    OLDNODES = "OLDNODES"
    NEWNODES = "NEWNODES"
    OLDRELS = "OLDRELS"
    NEWRELS = "NEWRELS"

    @property
    def is_set_level(self) -> bool:
        """True for the plural (FOR ALL) variables."""
        return self in (
            TransitionVariable.OLDNODES,
            TransitionVariable.NEWNODES,
            TransitionVariable.OLDRELS,
            TransitionVariable.NEWRELS,
        )

    @property
    def is_old(self) -> bool:
        """True for variables referring to the pre-event state."""
        return self in (
            TransitionVariable.OLD,
            TransitionVariable.OLDNODES,
            TransitionVariable.OLDRELS,
        )

    @property
    def item_kind(self) -> Optional[ItemKind]:
        """The item kind a plural variable refers to (None for OLD/NEW)."""
        if self in (TransitionVariable.OLDNODES, TransitionVariable.NEWNODES):
            return ItemKind.NODE
        if self in (TransitionVariable.OLDRELS, TransitionVariable.NEWRELS):
            return ItemKind.RELATIONSHIP
        return None


@dataclass(frozen=True)
class ReferencingAlias:
    """One ``REFERENCING <variable> AS <alias>`` entry."""

    variable: TransitionVariable
    alias: str

    def __str__(self) -> str:
        return f"{self.variable.value} AS {self.alias}"


@dataclass(frozen=True)
class TriggerDefinition:
    """A complete PG-Trigger declaration.

    Attributes:
        name: trigger name (unique within a registry).
        time: the action time.
        event: the monitored event type.
        label: the target label (node label or relationship type).
        property: the target property for SET/REMOVE events on
            ``<label>.<property>``; None otherwise.
        referencing: transition-variable aliases.
        granularity: EACH or ALL.
        item: NODE or RELATIONSHIP.
        condition: WHEN body as openCypher text (None when absent).
        statement: the BEGIN…END action body as openCypher text.
    """

    name: str
    time: ActionTime
    event: EventType
    label: str
    property: Optional[str] = None
    referencing: tuple[ReferencingAlias, ...] = ()
    granularity: Granularity = Granularity.EACH
    item: ItemKind = ItemKind.NODE
    condition: Optional[str] = None
    statement: str = ""

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @_builtin_property
    def target(self) -> str:
        """The textual target of the ON clause (``label`` or ``label.property``)."""
        if self.property:
            return f"{self.label}.{self.property}"
        return self.label

    def alias_for(self, variable: TransitionVariable) -> str:
        """The (possibly renamed) name under which a transition variable is visible."""
        for entry in self.referencing:
            if entry.variable == variable:
                return entry.alias
        return variable.value

    def transition_names(self) -> dict[str, TransitionVariable]:
        """All names (default and aliases) mapping to their transition variables."""
        names: dict[str, TransitionVariable] = {v.value: v for v in TransitionVariable}
        for entry in self.referencing:
            names[entry.alias] = entry.variable
        return names

    # ------------------------------------------------------------------
    # rendering (unparse back to the Figure 1 syntax)
    # ------------------------------------------------------------------

    def to_pg_trigger(self) -> str:
        """Render the definition back into CREATE TRIGGER syntax."""
        lines = [f"CREATE TRIGGER {self.name} {self.time.value} {self.event.value}"]
        lines.append(f"ON '{self.label}'" + (f".'{self.property}'" if self.property else ""))
        if self.referencing:
            refs = " ".join(str(alias) for alias in self.referencing)
            lines.append(f"REFERENCING {refs}")
        item_word = self.item.value
        if self.granularity == Granularity.ALL:
            item_word += "S" if not item_word.endswith("S") else ""
        lines.append(f"FOR {self.granularity.value} {item_word}")
        if self.condition:
            lines.append(f"WHEN {self.condition.strip()}")
        lines.append("BEGIN")
        lines.append(self.statement.strip())
        lines.append("END")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_pg_trigger()


@dataclass
class InstalledTrigger:
    """A trigger as stored in a registry: definition plus runtime bookkeeping."""

    definition: TriggerDefinition
    sequence: int
    enabled: bool = True
    #: Number of times the trigger's statement has been executed.
    executions: int = 0
    #: Number of activations whose condition evaluated to false.
    suppressed: int = 0

    @property
    def name(self) -> str:
        """The trigger's name."""
        return self.definition.name
