"""The PG-Trigger execution engine.

The engine implements the semantics of Section 4.2 of the paper:

* **Action times** — BEFORE and AFTER triggers run at each statement
  boundary (BEFORE first, restricted to conditioning NEW states), ONCOMMIT
  triggers run when the surrounding transaction reaches its commit point
  (their side effects are included in the same transaction, and they may
  abort it), DETACHED triggers run after a successful commit inside an
  autonomous transaction.
* **Granularity** — FOR EACH executes the trigger once per affected item
  with ``OLD``/``NEW`` bound; FOR ALL executes it once per statement with
  the plural transition variables bound to the whole affected set.
* **Ordering** — triggers sharing an action time execute in creation-time
  order (the registry's sequence numbers).
* **Cascading** — changes produced by trigger statements are collected and
  recursively processed as new events, using a stack of execution contexts
  and a configurable depth limit (the runtime counterpart of the
  termination analysis in :mod:`repro.triggers.termination`).

Conditions may be plain boolean expressions over the transition variables
(``OLD.x <> NEW.x``), EXISTS patterns, or *condition queries* — a pipeline
of MATCH/UNWIND/WITH clauses as in the paper's examples.  The rows that
survive the condition are handed to the action statement, so variables
bound in the condition (e.g. the overloaded hospital ``h``) are usable in
the action.

**Batched condition evaluation.**  A delta touching *n* items of a FOR
EACH trigger's target produces *n* activations; evaluating the condition
query once per activation pays the executor/pipeline setup cost *n*
times.  When a condition is *batchable* — a read-only MATCH/UNWIND
pipeline whose rows flow independently (no aggregation, DISTINCT, ORDER
BY or SKIP/LIMIT) and whose patterns do not use a transition variable as
a label — the engine instead runs **one** UNWIND-style pipeline pass
over all activations (each initial row carries that activation's
``OLD``/``NEW`` plus a correlation tag) and buckets the surviving rows
per activation.  Statement execution, firing order and the audit log are
untouched: the buckets are replayed activation by activation in order.

The batch is advisory in the same sense as the query planner's access
paths: verdicts taken from it are only trusted while they provably match
what sequential evaluation would have seen.  Until the first activation
fires, the graph is unchanged, so every verdict is exact; after a firing,
verdicts are re-verified per activation unless a static independence
check proved the trigger's action (CREATE-only, disjoint from every
condition pattern) cannot change its own condition's rows.  Results can
therefore never change — only speed.
"""

from __future__ import annotations

import datetime as _dt
from itertools import chain as _chain
from typing import Any, Callable, Iterator, Mapping, NamedTuple, Optional, Union

from ..cypher.ast import (
    CreateClause,
    ExistsPattern,
    Expression,
    FunctionCall,
    LabelPredicate,
    MatchClause,
    NodePattern,
    PathPattern,
    PropertyAccess,
    Query,
    RemoveClause,
    RemovePropertyItem,
    ReturnClause,
    SetClause,
    SetLabelsItem,
    SetPropertyItem,
    UnwindClause,
    Variable,
    WithClause,
    walk_expression,
)
from ..cypher.errors import CypherError
from ..cypher.executor import QueryExecutor, contains_aggregate
from ..cypher.expressions import EvaluationContext, evaluate
from ..cypher.planner import PLAN_CACHE
from ..graph.delta import GraphDelta
from ..graph.model import Node
from ..graph.store import PropertyGraph
from ..tx.errors import TransactionAborted
from ..tx.manager import TransactionManager
from ..tx.transaction import Transaction
from .ast import (
    ActionTime,
    EventType,
    Granularity,
    InstalledTrigger,
    ItemKind,
    TriggerDefinition,
)
from .context import (
    ExecutionContext,
    TriggerBindings,
    TriggerFiring,
    bindings_for,
    item_bindings,
    transition_names,
)
from .errors import TriggerExecutionError, TriggerRecursionError
from .events import Activation, compute_activations
from .incremental import IncrementalTriggerViews
from .registry import TriggerRegistry

#: Maximum cascade depth before the engine assumes non-termination.
DEFAULT_MAX_CASCADE_DEPTH = 16
#: Maximum nesting of autonomous (DETACHED) transactions.
DEFAULT_MAX_DETACHED_DEPTH = 4


def _abort_procedure(args, invocation):
    """``CALL db.abort('reason')`` — abort the surrounding transaction.

    Registered in every trigger-statement executor so that ONCOMMIT
    triggers can reject the transaction, as the paper's semantics allow.
    """
    reason = str(args[0]) if args else "aborted by trigger"
    raise TransactionAborted(reason)


class TriggerEngine:
    """Evaluates installed triggers against the deltas of a transaction."""

    def __init__(
        self,
        graph: PropertyGraph,
        registry: TriggerRegistry,
        manager: TransactionManager,
        clock: Callable[[], _dt.datetime] | None = None,
        max_cascade_depth: int = DEFAULT_MAX_CASCADE_DEPTH,
        max_detached_depth: int = DEFAULT_MAX_DETACHED_DEPTH,
        batched_conditions: bool = True,
        incremental_conditions: bool = True,
    ) -> None:
        self.graph = graph
        self.registry = registry
        self.manager = manager
        self.clock = clock or _dt.datetime.now
        self.max_cascade_depth = max_cascade_depth
        self.max_detached_depth = max_detached_depth
        #: Evaluate batchable FOR EACH condition queries in one pipeline
        #: pass per delta (see the module docstring).  Off, every
        #: activation runs its own executor — the reference behaviour the
        #: differential tests compare against.
        self.batched_conditions = batched_conditions
        #: Evaluate view-compilable FOR EACH condition queries against
        #: delta-maintained materialized views (the top tier of the
        #: incremental → batched → sequential demotion ladder; see
        #: :mod:`repro.triggers.incremental`).
        self.incremental_conditions = incremental_conditions
        self.views: Optional[IncrementalTriggerViews] = (
            IncrementalTriggerViews(graph, registry) if incremental_conditions else None
        )
        #: Counters observing the batched evaluator (tests and benchmarks).
        self.batch_stats = {
            "batched_runs": 0,
            "batched_activations": 0,
            "reverified_activations": 0,
        }
        #: Counters observing the incremental evaluator.
        self.incremental_stats = {
            "incremental_runs": 0,
            "incremental_activations": 0,
            "view_rebuilds": 0,
        }
        #: Per-trigger evaluation trace: which tier ran, how often, and
        #: why demotions happened (see :meth:`evaluation_report`).
        self.tier_trace: dict[str, dict[str, dict[str, int]]] = {}
        self._batch_profiles: dict[tuple, tuple[bool, bool]] = {}
        #: Audit log of trigger firings (cleared with :meth:`clear_firings`).
        self.firings: list[TriggerFiring] = []
        # Condition and statement texts are compiled through the global
        # parse+plan cache (repro.cypher.planner.PLAN_CACHE), shared with
        # the executor and the compatibility emulators.
        self._detached_depth = 0
        #: Extra procedures made available inside trigger statements.
        self.procedures = {"db.abort": _abort_procedure, "abort": _abort_procedure}

    # ------------------------------------------------------------------
    # public entry points (driven by GraphSession / TransactionManager hooks)
    # ------------------------------------------------------------------

    def run_statement_triggers(self, tx: Transaction, delta: GraphDelta) -> GraphDelta:
        """Process BEFORE and AFTER triggers for one statement's delta."""
        # Both rounds see the same delta, so they can share one label summary
        # (built lazily by whichever round first has triggers to filter).
        shared: list[_DeltaLabelSummary] = []
        before = self._process(
            tx, delta, (ActionTime.BEFORE,), depth=0, parent=None, shared_summary=shared
        )
        after = self._process(
            tx, delta, (ActionTime.AFTER,), depth=0, parent=None, shared_summary=shared
        )
        if before.is_empty():
            return after
        if after.is_empty():
            return before
        return before.merge(after)

    def run_commit_triggers(self, tx: Transaction, delta: GraphDelta) -> GraphDelta:
        """Process ONCOMMIT triggers for the whole transaction delta."""
        return self._process(tx, delta, (ActionTime.ONCOMMIT,), depth=0, parent=None)

    def run_detached_triggers(self, delta: GraphDelta) -> Optional[GraphDelta]:
        """Process DETACHED triggers in an autonomous transaction.

        Returns the delta committed by the autonomous transaction, or None
        when no DETACHED trigger had activations (no transaction is opened
        in that case).
        """
        triggers = self.registry.ordered((ActionTime.DETACHED,), enabled_only=True)
        if not triggers:
            return None
        if not any(compute_activations(t.definition, delta) for t in triggers):
            return None
        if self._detached_depth >= self.max_detached_depth:
            raise TriggerRecursionError(
                self.max_detached_depth, [t.name for t in triggers]
            )
        self._detached_depth += 1
        try:
            tx = self.manager.begin(metadata={"source": "detached-trigger"})
            try:
                self._process(tx, delta, (ActionTime.DETACHED,), depth=0, parent=None)
                committed = self.manager.commit(tx)
            except Exception:
                if tx.is_active:
                    self.manager.rollback(tx)
                raise
            return committed
        finally:
            self._detached_depth -= 1

    def clear_firings(self) -> None:
        """Reset the audit log of trigger firings."""
        self.firings.clear()

    # ------------------------------------------------------------------
    # core processing loop
    # ------------------------------------------------------------------

    def _process(
        self,
        tx: Transaction,
        delta: GraphDelta,
        times: tuple[ActionTime, ...],
        depth: int,
        parent: Optional[ExecutionContext],
        shared_summary: Optional[list["_DeltaLabelSummary"]] = None,
    ) -> GraphDelta:
        """Run all triggers of ``times`` over ``delta``; cascade recursively.

        ``shared_summary`` is a one-element memo cell letting sibling calls
        over the *same* delta (the BEFORE and AFTER rounds of one statement)
        share the label summary; cascades operate on new deltas and pass
        nothing.
        """
        if delta.is_empty():
            return GraphDelta()
        if depth > self.max_cascade_depth:
            chain = parent.chain() if parent else []
            raise TriggerRecursionError(self.max_cascade_depth, chain)

        produced_total = GraphDelta()
        triggers = self.registry.ordered(times, enabled_only=True)
        if triggers:
            if shared_summary is None:
                touched = _DeltaLabelSummary(delta)
            else:
                if not shared_summary:
                    shared_summary.append(_DeltaLabelSummary(delta))
                touched = shared_summary[0]
            # Activations depend only on the trigger's event selector, not
            # on its condition or action — triggers sharing a selector
            # (every ``AFTER CREATE ON 'X' FOR EACH NODE`` gate in a
            # firehose suite, say) share one scan of the delta.  The
            # refresh of the NEW side stays per trigger in _run_trigger,
            # so later triggers still see earlier triggers' writes.
            activation_memo: dict[tuple, list] = {}
            for installed in triggers:
                if not _may_activate(installed.definition, touched):
                    continue
                produced = self._run_trigger(
                    installed, tx, delta, depth, parent, activation_memo
                )
                if not produced.is_empty():
                    produced_total = produced_total.merge(produced)

        if not produced_total.is_empty():
            cascade_times = self._cascade_times(times)
            nested = self._process(
                tx, produced_total, cascade_times, depth + 1,
                parent or ExecutionContext("(statement)", depth, 0, Granularity.ALL),
            )
            produced_total = produced_total.merge(nested)
        return produced_total

    def _cascade_times(self, times: tuple[ActionTime, ...]) -> tuple[ActionTime, ...]:
        """Which action times participate in cascading rounds.

        Changes produced by ONCOMMIT (or DETACHED) triggers are still inside
        the same transaction (autonomous one for DETACHED), so statement-time
        triggers react to them as well; the converse does not hold.
        """
        if ActionTime.ONCOMMIT in times:
            return (ActionTime.BEFORE, ActionTime.AFTER, ActionTime.ONCOMMIT)
        if ActionTime.DETACHED in times:
            return (ActionTime.BEFORE, ActionTime.AFTER, ActionTime.DETACHED)
        return (ActionTime.BEFORE, ActionTime.AFTER)

    def _run_trigger(
        self,
        installed: InstalledTrigger,
        tx: Transaction,
        delta: GraphDelta,
        depth: int,
        parent: Optional[ExecutionContext],
        activation_memo: Optional[dict[tuple, list]] = None,
    ) -> GraphDelta:
        trigger = installed.definition
        if activation_memo is None:
            activations = compute_activations(trigger, delta)
        else:
            selector = (trigger.item, trigger.event, trigger.label, trigger.property)
            activations = activation_memo.get(selector)
            if activations is None:
                activations = compute_activations(trigger, delta)
                activation_memo[selector] = activations
        if not activations:
            return GraphDelta()
        activations = [self._refresh_new_side(a) for a in activations]
        run = _TriggerRun(self, installed, tx, depth, parent, len(activations))

        # Fast suppress path: a FOR EACH trigger whose WHEN body is a plain
        # predicate (no condition query, no EXISTS, no REFERENCING aliases)
        # only needs OLD/NEW and the bare expression evaluator to decide
        # whether it fires; suppressed activations skip the bindings
        # machinery entirely.  Statement execution and firing accounting go
        # through the same _TriggerRun.fire as the full path below.
        if (
            trigger.condition is not None
            and trigger.granularity == Granularity.EACH
            and not trigger.referencing
        ):
            compiled = self._compiled_condition(trigger)
            if not compiled.is_query and not compiled.has_exists:
                eval_context = EvaluationContext(graph=self.graph, clock=self.clock)
                parsed = compiled.parsed
                for activation in activations:
                    row = {"OLD": activation.old, "NEW": activation.new}
                    try:
                        value = evaluate(parsed, row, eval_context)
                    except CypherError as exc:
                        raise TriggerExecutionError(trigger.name, "condition", exc) from exc
                    if value is True:
                        binding = item_bindings(trigger, activation)
                        run.fire(binding, [dict(binding.variables)])
                    else:
                        run.fire(None, _NO_ROWS)
                self._note_tier(trigger.name, "predicate")
                return run.produced

        # Incremental path (top of the demotion ladder): evaluate each
        # activation against the trigger's delta-maintained condition view.
        # The view is live — the store's mutation listeners fold every
        # firing's writes into it before the next activation evaluates —
        # so lazy per-activation evaluation is sequential-equal by
        # construction, at any activation count.  Conditions outside the
        # compiled footprint demote to the batched tier below.
        if (
            self.views is not None
            and trigger.condition is not None
            and trigger.granularity == Granularity.EACH
        ):
            compiled = self._compiled_condition(trigger)
            if compiled.is_query:
                view = self.views.view_for(installed, compiled.parsed)
                if view is not None:
                    self._note_tier(trigger.name, "incremental")
                    return self._run_incremental(run, view, trigger, activations)
                reason = self.views.rejection_reason(trigger.name)
                self._note_demotion(trigger.name, reason or "ineligible")

        # Batched path: evaluate a batchable FOR EACH condition (query or
        # EXISTS predicate) once over all activations, then replay the
        # per-activation buckets in order.  Verdicts are trusted only
        # while they provably equal what sequential evaluation would see
        # (see the module docstring).
        if (
            self.batched_conditions
            and trigger.condition is not None
            and trigger.granularity == Granularity.EACH
            and len(activations) > 1
        ):
            compiled = self._compiled_condition(trigger)
            profile = self._batch_profile(trigger, compiled)
            independent = profile.independent
            if not profile.eligible:
                self._note_demotion(trigger.name, "not batchable")
            else:
                buckets = self._batched_condition_rows(
                    trigger, compiled, profile, activations, tx
                )
                if buckets is None:
                    # The condition errored somewhere in the batch.
                    # No firing has happened yet, so falling through
                    # to the sequential loop reproduces the reference
                    # behaviour exactly: earlier activations fire,
                    # then the erroring one raises.
                    self._note_demotion(trigger.name, "condition error")
                else:
                    self.batch_stats["batched_runs"] += 1
                    self.batch_stats["batched_activations"] += len(activations)
                    fired = False
                    for activation, rows in zip(activations, buckets):
                        if fired and not independent:
                            # An earlier firing may have changed what
                            # this condition sees: fall back to the
                            # sequential evaluation for the remaining
                            # activations.
                            binding = item_bindings(trigger, activation)
                            rows = self._condition_rows(trigger, binding, tx)
                            self.batch_stats["reverified_activations"] += 1
                        elif rows:
                            # Full bindings (with virtual-label sets)
                            # are only needed when the action runs.
                            binding = item_bindings(trigger, activation)
                        else:
                            run.fire(None, _NO_ROWS)
                            continue
                        if rows:
                            fired = True
                        run.fire(binding, rows)
                    self._note_tier(trigger.name, "batched")
                    return run.produced

        self._note_tier(trigger.name, "sequential")
        for binding in bindings_for(trigger, activations):
            run.fire(binding, self._condition_rows(trigger, binding, tx))
        return run.produced

    def _run_incremental(
        self,
        run: "_TriggerRun",
        view,
        trigger: TriggerDefinition,
        activations: list[Activation],
    ) -> GraphDelta:
        """Replay activations against the trigger's live condition view.

        Each activation is evaluated lazily, *after* every earlier
        activation's firings have flowed into the view through the store's
        mutation listeners — exactly what sequential evaluation sees.  A
        condition error therefore surfaces at the same activation position
        (with the same earlier firings on the audit log) as the reference,
        so it is raised directly rather than demoted.
        """
        stats = self.incremental_stats
        stats["incremental_runs"] += 1
        stats["incremental_activations"] += len(activations)
        context = EvaluationContext(graph=self.graph, clock=self.clock)
        # The epoch/bulk rail only needs re-checking after something could
        # have mutated mid-replay — i.e. after a firing ran an action.  The
        # replay itself is single-threaded, so between non-firing
        # activations the view provably cannot have been invalidated.
        check_view = True
        referencing = trigger.referencing
        rows_for = view.rows_for
        fire = run.fire
        for activation in activations:
            if check_view:
                if view.ensure_current(self.graph):
                    stats["view_rebuilds"] += 1
                check_view = False
            if referencing:
                base = dict(item_bindings(trigger, activation).variables)
            else:
                base = {"OLD": activation.old, "NEW": activation.new}
            try:
                rows = rows_for(base, context)
            except TransactionAborted:
                raise
            except CypherError as exc:
                raise TriggerExecutionError(trigger.name, "condition", exc) from exc
            if rows:
                fire(item_bindings(trigger, activation), rows)
                check_view = True
            else:
                fire(None, _NO_ROWS)
        return run.produced

    def _refresh_new_side(self, activation):
        """Re-read the NEW side from the store so earlier triggers' writes are visible.

        The OLD side stays frozen at its pre-event snapshot, as required by
        the transition-variable semantics.
        """
        new = activation.new
        if new is None:
            return activation
        if isinstance(new, Node):
            refreshed = self.graph.node_or_none(new.id)
        else:
            refreshed = self.graph.relationship_or_none(new.id)
        if refreshed is new or refreshed is None:
            return activation
        return Activation(
            item=activation.item, old=activation.old, new=refreshed, property=activation.property
        )

    # ------------------------------------------------------------------
    # condition handling
    # ------------------------------------------------------------------

    def _condition_rows(
        self, trigger: TriggerDefinition, binding: TriggerBindings, tx: Transaction
    ) -> list[dict[str, Any]]:
        """Rows surviving the WHEN condition (one empty row when it is absent)."""
        if trigger.condition is None:
            return [{}]
        parsed = self._parse_condition(trigger)
        try:
            if isinstance(parsed, Query):
                # Condition queries end in a wildcard RETURN, a pipeline
                # breaker, so the stream is already materialised; consuming
                # it directly skips the eager QueryResult wrapper and the
                # per-row copy it would force.
                executor = self._executor(tx, binding)
                _, records = executor.stream(parsed, bindings=dict(binding.variables))
                return list(records)
            # Plain expression: a WHERE filter over the single bindings row.
            # (Running it through a wildcard-RETURN query would project the
            # very same row back, so evaluate it directly, and only build a
            # full executor if an EXISTS pattern actually needs one.  EXISTS
            # itself now early-exits: the executor's pattern pipeline stops
            # at the first witness row.)
            value = self._evaluate_condition_expression(
                parsed, binding.variables, tx, binding
            )
            return [dict(binding.variables)] if value is True else []
        except TransactionAborted:
            raise
        except CypherError as exc:
            raise TriggerExecutionError(trigger.name, "condition", exc) from exc

    def _evaluate_condition_expression(
        self,
        parsed: Expression,
        row: dict[str, Any],
        tx: Transaction,
        binding: TriggerBindings,
    ) -> Any:
        executor: list[QueryExecutor] = []  # built lazily, shared across EXISTS evaluations

        def match_exists(exists: ExistsPattern, exists_row: dict[str, Any]) -> bool:
            if not executor:
                executor.append(self._executor(tx, binding))
            return executor[0]._exists_matcher(exists, exists_row)

        context = EvaluationContext(
            graph=self.graph,
            clock=self.clock,
            pattern_matcher=match_exists,
        )
        return evaluate(parsed, row, context)

    # ------------------------------------------------------------------
    # batched condition evaluation
    # ------------------------------------------------------------------

    def _batch_profile(self, trigger: TriggerDefinition, compiled) -> "_BatchProfile":
        """The memoised batch-evaluation shape of one trigger's condition.

        *eligible* — the condition (query or EXISTS predicate) can run as
        one multi-row pass without changing any activation's rows;
        *independent* — additionally, the trigger's own action can never
        change what the condition sees, so batch verdicts stay valid even
        after earlier activations fire; *prefix*/*suffix* — for query
        conditions, the streamable stage shared by all activations and
        the per-activation replay stage (aggregating WITH pipelines and
        non-streamable RETURNs go in the suffix; ``suffix is None`` means
        the whole condition streams).  The prefix/suffix query objects
        are built once and pinned here so the parsed-plan cache (keyed on
        object identity) keeps working.
        """
        key = (trigger.name, trigger.condition, trigger.statement, trigger.referencing)
        cached = self._batch_profiles.get(key)
        if cached is not None:
            return cached
        transition_names = _transition_names(trigger)
        condition = compiled.parsed
        prefix: Optional[Query] = None
        suffix: Optional[Query] = None
        if compiled.is_query:
            split = None
            if _patterns_transition_free(_condition_patterns(condition), transition_names):
                split = _condition_split(condition)
            eligible = split is not None
            if eligible:
                if split >= len(condition.clauses):
                    prefix = condition  # pure streamable: the original object
                else:
                    prefix = Query(
                        clauses=condition.clauses[:split]
                        + (ReturnClause(items=(), include_wildcard=True),)
                    )
                    suffix = Query(clauses=condition.clauses[split:])
        else:
            eligible = _patterns_transition_free(
                _exists_patterns(condition), transition_names
            ) and not contains_aggregate(condition)
        independent = False
        if eligible:
            try:
                statement = PLAN_CACHE.parse(trigger.statement)
            except CypherError:
                statement = None
            if statement is not None:
                independent = _action_independent(statement, condition, transition_names)
        profile = _BatchProfile(eligible, independent, prefix, suffix)
        self._batch_profiles[key] = profile
        return profile

    def _batched_condition_rows(
        self,
        trigger: TriggerDefinition,
        compiled,
        profile: "_BatchProfile",
        activations: list[Activation],
        tx: Transaction,
    ) -> Optional[list[list[dict[str, Any]]]]:
        """One evaluation pass over every activation, bucketed per activation.

        Query conditions: each initial row carries one activation's
        transition variables plus a correlation tag, and the streamable
        *prefix* maps input rows independently and in order, so bucket
        *i* holds exactly the rows a per-activation execution would have
        produced for activation *i*, in the same order.  When the
        condition has a non-streamable *suffix* (aggregating WITH
        pipeline, DISTINCT/ORDER BY/aggregate RETURN), the suffix then
        replays over each bucket separately — per-activation grouping and
        the one-row-on-empty-input semantics of global aggregates are
        preserved because each replay sees only its own activation's
        rows.  Activations whose prefix produced nothing share a single
        empty-input suffix execution: with no input rows the suffix's
        result cannot depend on the activation.

        EXISTS predicates: a witness pass evaluates the expression once
        per activation against one shared pattern-memoizing executor;
        bucket *i* is the activation's bindings row when the predicate
        held, empty otherwise — exactly the sequential rows.

        Returns ``None`` when the condition raises anywhere in the batch:
        sequential evaluation would have fired the activations *before*
        the erroring one first (and their firings stay on the audit log),
        so the caller must rerun the trigger sequentially rather than
        fail the whole batch up front.
        """
        rows: list[dict[str, Any]] = []
        if trigger.referencing:
            for index, activation in enumerate(activations):
                row = dict(item_bindings(trigger, activation).variables)
                row[_BATCH_TAG] = index
                rows.append(row)
        else:
            # Hot path: the variables are fixed, and the virtual-label sets
            # of the full bindings are only needed by actually-firing
            # activations (built lazily by the caller).
            for index, activation in enumerate(activations):
                rows.append(
                    {"OLD": activation.old, "NEW": activation.new, _BATCH_TAG: index}
                )
        # memoize_match is sound here: the condition is a read-only
        # pipeline (eligibility) and the pass drains before any statement
        # runs, so the graph cannot change under this executor.  Patterns
        # depending on the per-activation variables can never repeat a
        # memo key, so they are excluded from memoization.
        executor = QueryExecutor(
            self.graph,
            transaction=tx,
            clock=self.clock,
            procedures=self.procedures,
            memoize_match=True,
            memoize_skip_variables=_transition_names(trigger) | {_BATCH_TAG},
        )
        try:
            if not compiled.is_query:
                return self._witness_pass(compiled.parsed, executor, rows)
            buckets: list[list[dict[str, Any]]] = [[] for _ in activations]
            _, records = executor.stream_batch(profile.prefix, rows)
            for record in records:
                buckets[record.pop(_BATCH_TAG)].append(record)
            if profile.suffix is not None:
                shared_empty: Optional[list[dict[str, Any]]] = None
                replayed: list[list[dict[str, Any]]] = []
                for bucket in buckets:
                    if bucket:
                        _, records = executor.stream_batch(profile.suffix, bucket)
                        replayed.append(list(records))
                    else:
                        if shared_empty is None:
                            _, records = executor.stream_batch(profile.suffix, [])
                            shared_empty = list(records)
                        # Copy per activation: condition rows flow into
                        # statement execution, which must never see a row
                        # object shared with another activation.
                        replayed.append([dict(record) for record in shared_empty])
                buckets = replayed
        except TransactionAborted:
            raise
        except CypherError:
            # Rerun sequentially so pre-error firings match the reference.
            return None
        return buckets

    def _witness_pass(
        self,
        parsed: Expression,
        executor: QueryExecutor,
        rows: list[dict[str, Any]],
    ) -> list[list[dict[str, Any]]]:
        """Evaluate an (EXISTS-bearing) predicate once per tagged row.

        The rows are per-activation bindings, so there is nothing to mix
        across activations; the batch win is the shared executor, whose
        match memos let repeated EXISTS witnesses short-circuit across
        the whole batch instead of once per activation.
        """

        def match_exists(exists: ExistsPattern, exists_row: dict[str, Any]) -> bool:
            return executor._exists_matcher(exists, exists_row)

        context = EvaluationContext(
            graph=self.graph,
            clock=self.clock,
            pattern_matcher=match_exists,
        )
        buckets: list[list[dict[str, Any]]] = []
        for row in rows:
            row.pop(_BATCH_TAG, None)
            value = evaluate(parsed, row, context)
            buckets.append([row] if value is True else [])
        return buckets

    def _parse_condition(self, trigger: TriggerDefinition):
        return self._compiled_condition(trigger).parsed

    def _compiled_condition(self, trigger: TriggerDefinition):
        try:
            return PLAN_CACHE.condition_compiled(trigger.condition or "")
        except CypherError as exc:
            raise TriggerExecutionError(trigger.name, "condition", exc) from exc

    # ------------------------------------------------------------------
    # statement handling
    # ------------------------------------------------------------------

    def _execute_statement(
        self,
        trigger: TriggerDefinition,
        binding: TriggerBindings,
        condition_row: Mapping[str, Any],
        tx: Transaction,
        context: ExecutionContext,
    ) -> None:
        executor = self._executor(tx, binding)
        bindings = {**binding.variables, **condition_row}
        try:
            # Passing the text routes the statement through the global
            # parse+plan cache (shared with every other execution layer).
            executor.execute(trigger.statement, bindings=bindings)
        except TransactionAborted:
            raise
        except CypherError as exc:
            raise TriggerExecutionError(trigger.name, "statement", exc) from exc

    def _executor(self, tx: Transaction, binding: TriggerBindings) -> QueryExecutor:
        return QueryExecutor(
            self.graph,
            transaction=tx,
            clock=self.clock,
            virtual_labels=binding.virtual_labels,
            procedures=self.procedures,
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _note_tier(self, name: str, tier: str) -> None:
        entry = self.tier_trace.get(name)
        if entry is None:
            entry = self.tier_trace[name] = {"tiers": {}, "demotions": {}}
        tiers = entry["tiers"]
        tiers[tier] = tiers.get(tier, 0) + 1

    def _note_demotion(self, name: str, reason: str) -> None:
        entry = self.tier_trace.get(name)
        if entry is None:
            entry = self.tier_trace[name] = {"tiers": {}, "demotions": {}}
        demotions = entry["demotions"]
        demotions[reason] = demotions.get(reason, 0) + 1

    def evaluation_report(self) -> dict[str, dict[str, Any]]:
        """Per-trigger evaluation observability (tiers, demotions, views).

        For every installed trigger: which evaluation tier handled each
        run (``incremental``/``batched``/``sequential``/``predicate``),
        every demotion with its reason, and — when a condition view
        exists — the view's alpha-memory size and maintenance counters.
        Surfaced through :meth:`GraphSession.explain_triggers` and the
        per-statement :class:`~repro.cypher.result.ResultSummary`.
        """
        report: dict[str, dict[str, Any]] = {}
        for installed in self.registry.ordered():
            name = installed.name
            trace = self.tier_trace.get(name)
            entry: dict[str, Any] = {
                "tiers": dict(trace["tiers"]) if trace else {},
                "demotions": dict(trace["demotions"]) if trace else {},
            }
            if self.views is not None:
                view = self.views.view(name)
                if view is not None:
                    entry["view"] = {
                        "partial_matches": view.partial_matches(),
                        "invariant": view.invariant,
                        **view.stats,
                    }
                else:
                    reason = self.views.rejection_reason(name)
                    if reason is not None:
                        entry["ineligible"] = reason
            report[name] = entry
        return report

    def execution_counts(self) -> dict[str, int]:
        """Executions per trigger (from the registry's counters)."""
        return {t.name: t.executions for t in self.registry.ordered()}

    def firing_summary(self) -> dict[str, dict[str, int]]:
        """Per-trigger summary of the audit log."""
        summary: dict[str, dict[str, int]] = {}
        for firing in self.firings:
            entry = summary.setdefault(
                firing.trigger_name, {"executed": 0, "suppressed": 0, "max_depth": 0}
            )
            if firing.executed:
                entry["executed"] += 1
            else:
                entry["suppressed"] += 1
            entry["max_depth"] = max(entry["max_depth"], firing.depth)
        return summary


# ---------------------------------------------------------------------------
# per-trigger execution bookkeeping
# ---------------------------------------------------------------------------

#: Shared empty condition-row list for suppressed fast-path firings.
_NO_ROWS: list[dict[str, Any]] = []


class _TriggerRun:
    """Bookkeeping for one trigger's firings over one delta.

    Both condition-evaluation paths (the fast predicate path and the full
    executor path) funnel statement execution, the executed/suppressed
    counters and the :class:`TriggerFiring` audit records through
    :meth:`fire`, so their semantics cannot diverge.
    """

    __slots__ = (
        "engine", "installed", "trigger", "tx", "depth", "parent",
        "activation_count", "context", "produced", "_action_time",
    )

    def __init__(
        self,
        engine: "TriggerEngine",
        installed: InstalledTrigger,
        tx: Transaction,
        depth: int,
        parent: Optional[ExecutionContext],
        activation_count: int,
    ) -> None:
        self.engine = engine
        self.installed = installed
        self.trigger = installed.definition
        self.tx = tx
        self.depth = depth
        self.parent = parent
        self.activation_count = activation_count
        # The context frame is only needed when a condition actually passes;
        # most firings on the hot path are suppressed, so build it lazily.
        self.context: Optional[ExecutionContext] = None
        self.produced = GraphDelta()
        # Hoisted out of fire(): the enum attribute access is measurable
        # at firehose activation counts.
        self._action_time = installed.definition.time.value

    def fire(
        self,
        binding: Optional[TriggerBindings],
        condition_rows: list[dict[str, Any]],
    ) -> None:
        """Run the action for each surviving row and record one firing."""
        executed = bool(condition_rows)
        if executed:
            if self.context is None:
                self.context = ExecutionContext(
                    trigger_name=self.trigger.name,
                    depth=self.depth,
                    activation_count=self.activation_count,
                    granularity=self.trigger.granularity,
                    parent=self.parent,
                )
            self.tx.end_statement()  # isolate the trigger's own changes
            for row in condition_rows:
                self.engine._execute_statement(
                    self.trigger, binding, row, self.tx, self.context
                )
            self.produced = self.produced.merge(self.tx.end_statement())
            self.installed.executions += 1
        else:
            self.installed.suppressed += 1
        self.engine.firings.append(
            TriggerFiring(
                trigger_name=self.trigger.name,
                depth=self.depth,
                activation_count=self.activation_count,
                condition_rows=len(condition_rows),
                executed=executed,
                action_time=self._action_time,
            )
        )


# ---------------------------------------------------------------------------
# batched-evaluation static analysis
# ---------------------------------------------------------------------------

#: Correlation key carried through a batched condition pass; popped from
#: every surviving row before it reaches the action statement.
_BATCH_TAG = "__batch_activation__"


# Shared with the incremental view compiler (repro.triggers.context).
_transition_names = transition_names


class _BatchProfile(NamedTuple):
    """How (and whether) one trigger's condition batches; see _batch_profile."""

    eligible: bool
    independent: bool
    prefix: Optional[Query]
    suffix: Optional[Query]


def _condition_split(query: Query) -> Optional[int]:
    """Where the per-activation suffix of a batchable condition starts.

    ``clauses[:split]`` is the streamable prefix — MATCH/UNWIND stages
    that map input rows independently and in order, so one tagged pass
    buckets exactly.  ``clauses[split:]`` is the suffix that must replay
    per activation because it mixes rows *within* an activation:
    aggregating or row-reordering WITH pipelines, and RETURNs with
    DISTINCT/ORDER BY/SKIP/LIMIT/aggregates (or without the engine's
    wildcard normalisation).  ``split == len(clauses)`` means the whole
    condition streams; ``None`` means the condition cannot batch at all
    (an unsupported clause kind somewhere).
    """
    for position, clause in enumerate(query.clauses):
        if isinstance(clause, (MatchClause, UnwindClause)):
            continue
        if isinstance(clause, WithClause):
            return position if _suffix_supported(query.clauses[position:]) else None
        if isinstance(clause, ReturnClause):
            if position != len(query.clauses) - 1:
                return None
            if (
                clause.include_wildcard
                and not clause.distinct
                and not clause.order_by
                and clause.skip is None
                and clause.limit is None
                and not any(contains_aggregate(item.expression) for item in clause.items)
            ):
                return position + 1
            return position
        return None
    return None  # no RETURN: not an engine-normalised condition


def _suffix_supported(clauses) -> bool:
    """Suffix replay handles exactly what the stream pipeline handles."""
    return all(
        isinstance(clause, (MatchClause, UnwindClause, WithClause, ReturnClause))
        for clause in clauses
    )


def _patterns_transition_free(patterns, transition_names: set[str]) -> bool:
    """No pattern uses a transition name as a label or relationship type.

    Those resolve through per-activation virtual-label sets, which a
    shared pass cannot model (using them as pre-bound pattern
    *variables* is fine).
    """
    for pattern in patterns:
        for element in pattern.elements:
            if isinstance(element, NodePattern):
                if set(element.labels) & transition_names:
                    return False
            elif set(element.types) & transition_names:
                return False
    return True


def _action_independent(
    statement: Query, condition: Union[Query, Expression], transition_names: set[str]
) -> bool:
    """True when the action can never change its own condition's rows.

    Conservative static check built from two footprints.  The statement's
    *write footprint*: the label sets / relationship types it can CREATE,
    the property keys it SETs or REMOVEs, and the labels it SETs or
    REMOVEs.  The condition's *read footprint*: the labels/types its
    patterns require, the property keys its patterns test inline, and
    the property keys / labels its expressions read on anything other
    than a transition variable — transition snapshots are frozen at
    activation time, so action writes can never reach them (pattern
    elements that *re-bind* a transition variable are the exception: the
    matcher refreshes pre-bound variables from the live graph, so their
    inline keys and labels count as reads).

    The action stays independent iff nothing it creates can match a
    condition pattern element, no key it writes is read, and no label it
    writes is read.  MATCH/UNWIND/WITH/RETURN in the statement are pure
    reads; DELETE/MERGE/CALL/FOREACH and map-style SET (`n = {…}` /
    `n += {…}`) stay unanalysable and fail the check, sending the engine
    back to sequential re-verification after the first firing.
    """
    created_label_sets: list[frozenset] = []
    created_types: set[str] = set()
    creates_node = False
    creates_rel = False
    written_keys: set[str] = set()
    written_labels: set[str] = set()
    for clause in statement.clauses:
        if isinstance(clause, (MatchClause, UnwindClause, WithClause, ReturnClause)):
            continue
        if isinstance(clause, CreateClause):
            for pattern in clause.patterns:
                for element in pattern.elements:
                    if isinstance(element, NodePattern):
                        # A bound variable re-uses an existing node;
                        # boundness is not tracked here, so treating every
                        # node element as a potential creation is the
                        # conservative choice.
                        creates_node = True
                        created_label_sets.append(frozenset(element.labels))
                    else:
                        creates_rel = True
                        created_types.update(element.types)
        elif isinstance(clause, SetClause):
            for item in clause.items:
                if isinstance(item, SetPropertyItem):
                    written_keys.add(item.key)
                elif isinstance(item, SetLabelsItem):
                    written_labels.update(item.labels)
                else:  # SetFromMapItem: the written key set is dynamic
                    return False
        elif isinstance(clause, RemoveClause):
            for item in clause.items:
                if isinstance(item, RemovePropertyItem):
                    written_keys.add(item.key)
                else:
                    written_labels.update(item.labels)
        else:
            return False

    # UNWIND (or a WITH alias) in a query condition may shadow a
    # transition name; a shadowed variable is an ordinary row value, so
    # its reads are live again.  Expression conditions (EXISTS
    # predicates) bind nothing, so every transition stays frozen.
    shadowed: set[str] = set()
    if isinstance(condition, Query):
        for clause in condition.clauses:
            if isinstance(clause, UnwindClause):
                shadowed.add(clause.variable)
            elif isinstance(clause, WithClause):
                shadowed.update(item.alias for item in clause.items if item.alias)
        patterns = _condition_patterns(condition)
        expressions = _condition_expressions(condition)
    else:
        patterns = _exists_patterns(condition)
        expressions = iter((condition,))
    frozen = transition_names - shadowed

    read_keys: set[str] = set()
    read_labels: set[str] = set()
    reads_all_keys = False
    reads_all_labels = False
    inline_values: list[Expression] = []
    for pattern in patterns:
        for element in pattern.elements:
            # Inline property tests read the *live* graph even on
            # pre-bound transition variables (the matcher refreshes
            # candidates), so their keys always join the read footprint;
            # their value expressions are walked with the rest below.
            read_keys.update(key for key, _ in element.properties)
            inline_values.extend(expr for _, expr in element.properties)
            if isinstance(element, NodePattern):
                read_labels.update(element.labels)
            if element.variable is not None and element.variable in frozen:
                continue  # pre-bound: can never rebind to a created item
            if isinstance(element, NodePattern):
                if not element.labels:
                    if creates_node:
                        return False
                else:
                    required = set(element.labels)
                    if any(required.issubset(labels) for labels in created_label_sets):
                        return False
            else:
                read_labels.update(element.types)
                if not element.types:
                    if creates_rel:
                        return False
                elif set(element.types) & created_types:
                    return False
    for expression in _chain(inline_values, expressions):
        for sub in walk_expression(expression):
            if isinstance(sub, PropertyAccess):
                if isinstance(sub.subject, Variable) and sub.subject.name in frozen:
                    continue  # snapshot read: frozen at activation time
                read_keys.add(sub.key)
            elif isinstance(sub, LabelPredicate):
                if isinstance(sub.subject, Variable) and sub.subject.name in frozen:
                    continue
                read_labels.update(sub.labels)
            elif isinstance(sub, FunctionCall):
                # keys()/properties() and labels()/type() read an entity's
                # whole key set / label set dynamically — no static key to
                # intersect, so they widen the footprint to "everything"
                # unless they read a frozen transition snapshot.
                name = sub.name.lower()
                if name in ("keys", "properties", "labels", "type"):
                    args = sub.args
                    if (
                        len(args) == 1
                        and isinstance(args[0], Variable)
                        and args[0].name in frozen
                    ):
                        continue
                    if name in ("keys", "properties"):
                        reads_all_keys = True
                    else:
                        reads_all_labels = True

    if written_keys & read_keys:
        return False
    if written_labels & read_labels:
        return False
    if reads_all_keys and written_keys:
        return False
    if reads_all_labels and written_labels:
        return False
    return True


def _condition_expressions(query: Query) -> Iterator[Expression]:
    """Every clause-level expression tree a condition query evaluates.

    Covers clause WHEREs, UNWIND sources and projection items;
    ``walk_expression`` then descends into EXISTS sub-WHEREs.  Inline
    property-map values are *not* yielded here — the read-footprint
    analysis walks them off the pattern elements directly (via
    ``_condition_patterns``, which also surfaces EXISTS sub-patterns).
    """
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            if clause.where is not None:
                yield clause.where
        elif isinstance(clause, UnwindClause):
            yield clause.expression
        elif isinstance(clause, (WithClause, ReturnClause)):
            for item in clause.items:
                yield item.expression
            if isinstance(clause, WithClause) and clause.where is not None:
                yield clause.where


def _condition_patterns(query: Query) -> Iterator[PathPattern]:
    """Every path pattern a condition query can match (incl. EXISTS).

    EXISTS sub-patterns are reachable from three places: the WHERE tree,
    projection expressions, and — easy to miss — the inline property
    maps of pattern elements (``(c:Config {flag: EXISTS {(s:Spike)}})``).
    All three feed the batched-evaluation safety checks, so missing one
    would let a condition through that the batch pass evaluates
    differently.
    """
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            for pattern in clause.patterns:
                yield pattern
                for element in pattern.elements:
                    for _, expr in element.properties:
                        yield from _exists_patterns(expr)
            if clause.where is not None:
                yield from _exists_patterns(clause.where)
        elif isinstance(clause, UnwindClause):
            yield from _exists_patterns(clause.expression)
        elif isinstance(clause, ReturnClause):
            for item in clause.items:
                yield from _exists_patterns(item.expression)


def _exists_patterns(expression: Expression) -> Iterator[PathPattern]:
    # walk_expression descends into ExistsPattern.where, so nested EXISTS
    # sub-patterns there are reached through their own ExistsPattern node;
    # the explicit recursion covers EXISTS hiding inside an inline
    # property map of another EXISTS's pattern elements.
    for sub in walk_expression(expression):
        if isinstance(sub, ExistsPattern):
            for pattern in sub.patterns:
                yield pattern
                for element in pattern.elements:
                    for _, expr in element.properties:
                        yield from _exists_patterns(expr)


# ---------------------------------------------------------------------------
# cheap trigger/delta prefiltering
# ---------------------------------------------------------------------------


class _DeltaLabelSummary:
    """Label/type footprint of a delta, built once per processing round.

    :func:`_may_activate` checks a trigger's monitored label against these
    sets before the per-trigger activation computation runs; with many
    installed triggers targeting disjoint labels this avoids walking the
    delta once per trigger.  The check over-approximates
    :func:`~repro.triggers.events.compute_activations` (it may say yes when
    there are no activations, never the reverse).
    """

    __slots__ = (
        "created_node_labels", "deleted_node_labels",
        "assigned_label_node_labels", "removed_label_node_labels",
        "node_prop_set_labels", "node_prop_removed_labels",
        "created_rel_types", "deleted_rel_types",
        "rel_prop_set_types", "rel_prop_removed_types",
    )

    def __init__(self, delta: GraphDelta) -> None:
        self.created_node_labels: set[str] = set()
        for node in delta.created_nodes:
            self.created_node_labels.update(node.labels)
        self.deleted_node_labels: set[str] = set()
        for node in delta.deleted_nodes:
            self.deleted_node_labels.update(node.labels)
        self.assigned_label_node_labels: set[str] = set()
        for assignment in delta.assigned_labels:
            self.assigned_label_node_labels.update(assignment.node.labels)
        self.removed_label_node_labels: set[str] = set()
        for removal in delta.removed_labels:
            self.removed_label_node_labels.update(removal.node.labels)
        self.node_prop_set_labels: set[str] = set()
        self.rel_prop_set_types: set[str] = set()
        for change in delta.assigned_properties:
            if change.is_node:
                self.node_prop_set_labels.update(change.item.labels)
            else:
                self.rel_prop_set_types.add(change.item.type)
        self.node_prop_removed_labels: set[str] = set()
        self.rel_prop_removed_types: set[str] = set()
        for change in delta.removed_properties:
            if change.is_node:
                self.node_prop_removed_labels.update(change.item.labels)
            else:
                self.rel_prop_removed_types.add(change.item.type)
        self.created_rel_types = {rel.type for rel in delta.created_relationships}
        self.deleted_rel_types = {rel.type for rel in delta.deleted_relationships}


def _may_activate(trigger: TriggerDefinition, touched: _DeltaLabelSummary) -> bool:
    """Can ``trigger`` possibly have activations in the summarised delta?"""
    label = trigger.label
    if trigger.item == ItemKind.NODE:
        if trigger.event == EventType.CREATE:
            return label in touched.created_node_labels
        if trigger.event == EventType.DELETE:
            return label in touched.deleted_node_labels
        if trigger.event == EventType.SET:
            if trigger.property is None:
                return (
                    label in touched.assigned_label_node_labels
                    or label in touched.node_prop_set_labels
                )
            return label in touched.node_prop_set_labels
        if trigger.property is None:
            return (
                label in touched.removed_label_node_labels
                or label in touched.node_prop_removed_labels
            )
        return label in touched.node_prop_removed_labels
    if trigger.event == EventType.CREATE:
        return label in touched.created_rel_types
    if trigger.event == EventType.DELETE:
        return label in touched.deleted_rel_types
    if trigger.event == EventType.SET:
        return label in touched.rel_prop_set_types
    return label in touched.rel_prop_removed_types
